#include "core/privacy_loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "common/math_util.h"

namespace tcdp {

double LogLinearInExpAlpha(double c, double alpha) {
  assert(c >= 0.0 && c <= 1.0 + 1e-12 && alpha >= 0.0);
  if (c <= 0.0 || alpha == 0.0) return 0.0;
  if (alpha < 30.0) {
    return std::log1p(c * std::expm1(alpha));
  }
  // c(e^a - 1) + 1 = c e^a (1 + (1-c) e^-a / c):
  //   log = a + log(c) + log1p((1-c) e^-a / c).
  return alpha + std::log(c) + std::log1p((1.0 - c) * std::exp(-alpha) / c);
}

namespace {

/// log-ratio of the objective for aggregates (q_sum, d_sum) at alpha.
double PairLogRatio(double q_sum, double d_sum, double alpha) {
  return LogLinearInExpAlpha(q_sum, alpha) - LogLinearInExpAlpha(d_sum, alpha);
}

}  // namespace

StatusOr<PairLossResult> ComputePairLoss(const std::vector<double>& q,
                                         const std::vector<double>& d,
                                         double alpha) {
  if (q.size() != d.size()) {
    return Status::InvalidArgument("ComputePairLoss: |q| != |d|");
  }
  if (q.empty()) {
    return Status::InvalidArgument("ComputePairLoss: empty rows");
  }
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument(
        "ComputePairLoss: alpha must be finite and >= 0, got " +
        std::to_string(alpha));
  }
  const std::size_t n = q.size();

  PairLossResult result;
  // Corollary 2 seed: candidates are exactly the coordinates with
  // q_j > d_j.
  result.subset.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (q[j] > d[j]) result.subset.push_back(j);
  }

  // Theorem 4 refinement (Algorithm 1 Lines 6–11): drop every candidate
  // whose individual ratio fails Inequality (21) against the aggregate
  // ratio; repeat until a full pass removes nothing. All comparisons in
  // log space.
  while (!result.subset.empty()) {
    ++result.update_rounds;
    double q_sum = 0.0, d_sum = 0.0;
    for (std::size_t j : result.subset) {
      q_sum += q[j];
      d_sum += d[j];
    }
    const double log_ratio = PairLogRatio(q_sum, d_sum, alpha);
    std::vector<std::size_t> kept;
    kept.reserve(result.subset.size());
    for (std::size_t j : result.subset) {
      // Keep j iff log(q_j) - log(d_j) > log_ratio; d_j = 0 keeps
      // (ratio +inf) since q_j > d_j = 0 in the seed set.
      const bool keep = d[j] == 0.0
                            ? true
                            : std::log(q[j]) - std::log(d[j]) > log_ratio;
      if (keep) kept.push_back(j);
    }
    if (kept.size() == result.subset.size()) {
      result.q_sum = q_sum;
      result.d_sum = d_sum;
      result.loss = log_ratio;
      return result;
    }
    result.subset = std::move(kept);
  }
  // Empty subset: identical rows (or alpha-independent tie) -> loss 0.
  result.q_sum = 0.0;
  result.d_sum = 0.0;
  result.loss = 0.0;
  return result;
}

StatusOr<PairLossResult> ComputePairLossSorted(const std::vector<double>& q,
                                               const std::vector<double>& d,
                                               double alpha) {
  if (q.size() != d.size()) {
    return Status::InvalidArgument("ComputePairLossSorted: |q| != |d|");
  }
  if (q.empty()) {
    return Status::InvalidArgument("ComputePairLossSorted: empty rows");
  }
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument(
        "ComputePairLossSorted: alpha must be finite and >= 0");
  }
  const std::size_t n = q.size();
  // Candidates (Corollary 2) sorted by ratio q_j/d_j descending; d_j = 0
  // candidates (infinite ratio) first.
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (q[j] > d[j]) order.push_back(j);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const bool a_inf = d[a] == 0.0;
    const bool b_inf = d[b] == 0.0;
    if (a_inf != b_inf) return a_inf;
    if (a_inf) return q[a] > q[b];  // both infinite: any stable order
    return q[a] * d[b] > q[b] * d[a];
  });

  PairLossResult best;
  double q_acc = 0.0, d_acc = 0.0;
  double best_q = 0.0, best_d = 0.0;
  std::size_t best_len = 0;
  for (std::size_t len = 1; len <= order.size(); ++len) {
    q_acc += q[order[len - 1]];
    d_acc += d[order[len - 1]];
    const double value = LogLinearInExpAlpha(q_acc, alpha) -
                         LogLinearInExpAlpha(d_acc, alpha);
    if (value > best.loss) {
      best.loss = value;
      best_q = q_acc;
      best_d = d_acc;
      best_len = len;
    }
  }
  best.q_sum = best_q;
  best.d_sum = best_d;
  best.subset.assign(order.begin(),
                     order.begin() + static_cast<long>(best_len));
  std::sort(best.subset.begin(), best.subset.end());
  best.update_rounds = 1;  // single scan
  return best;
}

TemporalLossFunction::TemporalLossFunction(StochasticMatrix transition)
    : transition_(std::move(transition)) {
  assert(!transition_.empty());
}

double TemporalLossFunction::Evaluate(double alpha) const {
  return EvaluateDetailed(alpha).loss;
}

TemporalLossFunction::Detail TemporalLossFunction::EvaluateDetailed(
    double alpha, const EvalOptions& options) const {
  assert(alpha >= 0.0);
  if (alpha < 0.0) alpha = 0.0;
  const std::size_t n = transition_.size();
  Detail best;
  if (n < 2) return best;  // single state: rows identical, loss 0
  for (std::size_t a = 0; a < n; ++a) {
    const std::vector<double> q = transition_.Row(a);
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      ++best.pairs_examined;
      const std::vector<double> d = transition_.Row(b);
      auto pair = options.method == PairLossMethod::kSortedPrefix
                      ? ComputePairLossSorted(q, d, alpha)
                      : ComputePairLoss(q, d, alpha);
      assert(pair.ok());  // inputs are validated rows
      if (!pair.ok()) continue;
      if (pair->loss > best.loss ||
          (best.loss == 0.0 && best.q_sum == 0.0 && pair->q_sum > 0.0)) {
        best.loss = pair->loss;
        best.q_sum = pair->q_sum;
        best.d_sum = pair->d_sum;
        best.row_q = a;
        best.row_d = b;
      }
    }
  }
  return best;
}

}  // namespace tcdp
