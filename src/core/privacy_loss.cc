#include "core/privacy_loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>

#include "common/math_util.h"
#include "kernels/kernels.h"

namespace tcdp {

double LogLinearInExpAlpha(double c, double alpha) {
  assert(c >= 0.0 && c <= 1.0 + 1e-12 && alpha >= 0.0);
  if (c <= 0.0 || alpha == 0.0) return 0.0;
  if (alpha < 30.0) {
    return std::log1p(c * std::expm1(alpha));
  }
  // c(e^a - 1) + 1 = c e^a (1 + (1-c) e^-a / c):
  //   log = a + log(c) + log1p((1-c) e^-a / c).
  return alpha + std::log(c) + std::log1p((1.0 - c) * std::exp(-alpha) / c);
}

namespace {

/// log-ratio of the objective for aggregates (q_sum, d_sum) at alpha.
double PairLogRatio(double q_sum, double d_sum, double alpha) {
  return LogLinearInExpAlpha(q_sum, alpha) - LogLinearInExpAlpha(d_sum, alpha);
}

/// Reusable per-thread working set for the pair scans. One candidate
/// index buffer plus one parallel payload buffer (log-ratios for the
/// refinement filter, unused by the sorted scan) replace the per-call
/// `subset`/`kept`/`order` vectors: after the first few pairs of a
/// matrix sweep these never reallocate.
struct PairScanScratch {
  std::vector<std::uint32_t> idx;
  std::vector<double> logr;

  void Reserve(std::size_t n) {
    if (idx.size() < n) idx.resize(n);
    if (logr.size() < n) logr.resize(n);
  }
};

PairScanScratch& Scratch() {
  thread_local PairScanScratch scratch;
  return scratch;
}

/// Algorithm 1 refinement on raw rows. Fills loss/q_sum/d_sum/
/// update_rounds of *result; materializes result->subset only when
/// want_subset is set (the matrix sweep skips it).
void PairLossIterativeCore(const double* q, const double* d, std::size_t n,
                           double alpha, bool want_subset,
                           PairLossResult* result) {
  const auto& k = kernels::ActiveBackend();
  PairScanScratch& scratch = Scratch();
  scratch.Reserve(n);
  std::uint32_t* idx = scratch.idx.data();
  double* logr = scratch.logr.data();

  // Corollary 2 seed: candidates are exactly the coordinates with
  // q_j > d_j.
  std::size_t m = k.select_greater(q, d, n, idx);

  // The per-candidate log ratio log(q_j) - log(d_j) is loop-invariant
  // across refinement rounds; compute it once. d_j = 0 candidates have
  // infinite ratio and survive every filter (q_j > d_j = 0 in the
  // seed, so log(q_j) is finite).
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint32_t j = idx[i];
    logr[i] = d[j] == 0.0 ? std::numeric_limits<double>::infinity()
                          : std::log(q[j]) - std::log(d[j]);
  }

  // Theorem 4 refinement (Algorithm 1 Lines 6–11): drop every candidate
  // whose individual ratio fails Inequality (21) against the aggregate
  // ratio; repeat until a full pass removes nothing. All comparisons in
  // log space.
  while (m > 0) {
    ++result->update_rounds;
    double q_sum = 0.0, d_sum = 0.0;
    k.gather_pair_sums(q, d, idx, m, &q_sum, &d_sum);
    const double log_ratio = PairLogRatio(q_sum, d_sum, alpha);
    const std::size_t kept = k.filter_gt(logr, idx, m, log_ratio);
    if (kept == m) {
      result->q_sum = q_sum;
      result->d_sum = d_sum;
      result->loss = log_ratio;
      if (want_subset) result->subset.assign(idx, idx + m);
      return;
    }
    m = kept;
  }
  // Empty subset: identical rows (or alpha-independent tie) -> loss 0.
  result->q_sum = 0.0;
  result->d_sum = 0.0;
  result->loss = 0.0;
}

/// Threshold-set prefix scan on raw rows (see ComputePairLossSorted).
void PairLossSortedCore(const double* q, const double* d, std::size_t n,
                        double alpha, bool want_subset,
                        PairLossResult* result) {
  const auto& k = kernels::ActiveBackend();
  PairScanScratch& scratch = Scratch();
  scratch.Reserve(n);
  std::uint32_t* order = scratch.idx.data();

  // Candidates (Corollary 2) sorted by ratio q_j/d_j descending; d_j = 0
  // candidates (infinite ratio) first.
  const std::size_t m = k.select_greater(q, d, n, order);
  std::sort(order, order + m, [&](std::uint32_t a, std::uint32_t b) {
    const bool a_inf = d[a] == 0.0;
    const bool b_inf = d[b] == 0.0;
    if (a_inf != b_inf) return a_inf;
    if (a_inf) return q[a] > q[b];  // both infinite: any stable order
    return q[a] * d[b] > q[b] * d[a];
  });

  double q_acc = 0.0, d_acc = 0.0;
  double best_q = 0.0, best_d = 0.0;
  std::size_t best_len = 0;
  for (std::size_t len = 1; len <= m; ++len) {
    q_acc += q[order[len - 1]];
    d_acc += d[order[len - 1]];
    const double value = LogLinearInExpAlpha(q_acc, alpha) -
                         LogLinearInExpAlpha(d_acc, alpha);
    if (value > result->loss) {
      result->loss = value;
      best_q = q_acc;
      best_d = d_acc;
      best_len = len;
    }
  }
  result->q_sum = best_q;
  result->d_sum = best_d;
  result->update_rounds = 1;  // single scan
  if (want_subset) {
    result->subset.assign(order, order + best_len);
    std::sort(result->subset.begin(), result->subset.end());
  }
}

Status ValidatePairInputs(const char* fn, const std::vector<double>& q,
                          const std::vector<double>& d, double alpha) {
  if (q.size() != d.size()) {
    return Status::InvalidArgument(std::string(fn) + ": |q| != |d|");
  }
  if (q.empty()) {
    return Status::InvalidArgument(std::string(fn) + ": empty rows");
  }
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument(
        std::string(fn) + ": alpha must be finite and >= 0, got " +
        std::to_string(alpha));
  }
  return Status::OK();
}

}  // namespace

StatusOr<PairLossResult> ComputePairLoss(const std::vector<double>& q,
                                         const std::vector<double>& d,
                                         double alpha) {
  Status status = ValidatePairInputs("ComputePairLoss", q, d, alpha);
  if (!status.ok()) return status;
  PairLossResult result;
  PairLossIterativeCore(q.data(), d.data(), q.size(), alpha,
                        /*want_subset=*/true, &result);
  return result;
}

StatusOr<PairLossResult> ComputePairLossSorted(const std::vector<double>& q,
                                               const std::vector<double>& d,
                                               double alpha) {
  Status status = ValidatePairInputs("ComputePairLossSorted", q, d, alpha);
  if (!status.ok()) return status;
  PairLossResult result;
  PairLossSortedCore(q.data(), d.data(), q.size(), alpha,
                     /*want_subset=*/true, &result);
  return result;
}

TemporalLossFunction::TemporalLossFunction(StochasticMatrix transition)
    : transition_(std::move(transition)) {
  assert(!transition_.empty());
}

double TemporalLossFunction::Evaluate(double alpha) const {
  return EvaluateDetailed(alpha).loss;
}

TemporalLossFunction::Detail TemporalLossFunction::EvaluateDetailed(
    double alpha, const EvalOptions& options) const {
  assert(alpha >= 0.0);
  if (alpha < 0.0) alpha = 0.0;
  const std::size_t n = transition_.size();
  Detail best;
  if (n < 2) return best;  // single state: rows identical, loss 0
  // Rows are contiguous slices of the row-major storage; the pair cores
  // take raw pointers, so the sweep does no per-pair copies or
  // allocations (the scratch buffers warm up on the first pair).
  const double* base = transition_.matrix().data().data();
  for (std::size_t a = 0; a < n; ++a) {
    const double* q = base + a * n;
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      ++best.pairs_examined;
      const double* d = base + b * n;
      PairLossResult pair;
      if (options.method == PairLossMethod::kSortedPrefix) {
        PairLossSortedCore(q, d, n, alpha, /*want_subset=*/false, &pair);
      } else {
        PairLossIterativeCore(q, d, n, alpha, /*want_subset=*/false, &pair);
      }
      if (pair.loss > best.loss ||
          (best.loss == 0.0 && best.q_sum == 0.0 && pair.q_sum > 0.0)) {
        best.loss = pair.loss;
        best.q_sum = pair.q_sum;
        best.d_sum = pair.d_sum;
        best.row_q = a;
        best.row_d = b;
      }
    }
  }
  return best;
}

}  // namespace tcdp
