#ifndef TCDP_CORE_BUDGET_ALLOCATION_H_
#define TCDP_CORE_BUDGET_ALLOCATION_H_

/// \file
/// The paper's data-release algorithms: converting a traditional DP
/// mechanism into one satisfying alpha-DP_T.
///
/// Both algorithms reduce to one balance problem. Writing
/// epsB(aB) = aB - L^B(aB) (the Theorem 5 inverse: the per-step budget
/// whose BPL supremum is exactly aB) and symmetrically for FPL, find
/// aB in (0, alpha] such that
///
///   eps = epsB(aB) = epsF(aF),   where  aF = alpha - aB + eps
///
/// (the alpha split follows Equation 10: TPL = BPL + FPL - PL0). The
/// balance function h(aB) = epsB(aB) - epsF(alpha - aB + epsB(aB)) is
/// monotone with h(0+) <= 0 <= h(alpha), so bisection converges; this is
/// the constructive version of the papers' Lines 8-9 "initialize a
/// larger/smaller alpha^B".
///
/// * Algorithm 2 ("upper bound") then releases eps at *every* time
///   point: BPL_t increases toward aB and FPL_t toward aF but never
///   reaches them, so TPL_t < alpha for every t, for any (even unknown)
///   horizon T.
/// * Algorithm 3 ("quantification") releases [aB, eps, ..., eps, aF]:
///   BPL_t = aB exactly for t < T, FPL_t = aF exactly for t > 1, and
///   TPL_t = alpha exactly at every time point — no wasted budget for
///   finite known T.

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/temporal_correlations.h"

namespace tcdp {

/// \brief The balanced split both algorithms share.
struct BalancedBudget {
  double alpha = 0.0;        ///< target overall TPL bound
  double alpha_b = 0.0;      ///< BPL bound (supremum)
  double alpha_f = 0.0;      ///< FPL bound (supremum)
  double eps_steady = 0.0;   ///< per-step budget eps*
};

/// Options for the bisection solver.
struct AllocationOptions {
  double tol = 1e-10;
  std::size_t max_bisection_iters = 200;
};

/// \brief Computes per-time-point budgets achieving alpha-DP_T for a user
/// with the given correlations.
class BudgetAllocator {
 public:
  /// Returns InvalidArgument unless alpha > 0.
  static StatusOr<BudgetAllocator> Create(TemporalCorrelations correlations,
                                          double alpha,
                                          AllocationOptions options = {});

  double alpha() const { return alpha_; }
  const BalancedBudget& budget() const { return budget_; }

  /// Algorithm 2 schedule: eps* at every one of \p horizon time points.
  /// Valid for any horizon, including "unknown" (call again as T grows).
  std::vector<double> UpperBoundSchedule(std::size_t horizon) const;

  /// Algorithm 3 schedule: [alpha_b, eps*, ..., eps*, alpha_f].
  /// horizon = 1 -> [alpha]; horizon = 2 -> [alpha_b, alpha_f].
  /// Returns InvalidArgument for horizon == 0.
  StatusOr<std::vector<double>> QuantifiedSchedule(std::size_t horizon) const;

 private:
  BudgetAllocator(TemporalCorrelations correlations, double alpha,
                  BalancedBudget budget)
      : correlations_(std::move(correlations)),
        alpha_(alpha),
        budget_(budget) {}

  TemporalCorrelations correlations_;
  double alpha_;
  BalancedBudget budget_;
};

/// \brief Population combinator (Algorithms 2/3, Line 11): the released
/// schedule must satisfy every user, so take the per-time minimum of the
/// users' schedules. Returns InvalidArgument when schedules are empty or
/// of unequal length.
StatusOr<std::vector<double>> MinSchedule(
    const std::vector<std::vector<double>>& schedules);

/// \brief Baseline from the paper's introduction: the group-DP style
/// uniform split that ignores correlation probabilities. Protecting a
/// horizon-T sequence as a bundle means eps = alpha / T at every step.
std::vector<double> GroupDpSchedule(double alpha, std::size_t horizon);

}  // namespace tcdp

#endif  // TCDP_CORE_BUDGET_ALLOCATION_H_
