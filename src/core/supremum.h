#ifndef TCDP_CORE_SUPREMUM_H_
#define TCDP_CORE_SUPREMUM_H_

/// \file
/// The paper's Theorem 5: the supremum of BPL (or FPL) over an infinite
/// release horizon when every time point spends the same budget epsilon.
///
/// With (q, d) the aggregates of the maximizing row pair at the
/// supremum, the fixpoint alpha* of  alpha = L(alpha) + epsilon  solves
/// d x^2 + x (1 - d - q e^eps) - e^eps (1 - q) = 0  for x = e^alpha:
///
///   d != 0                      -> finite: the positive quadratic root
///   d = 0, q != 1, eps < ln(1/q) -> finite: x = (1-q) e^eps / (1 - q e^eps)
///   d = 0, q != 1, eps >= ln(1/q) -> does not exist (+inf)
///   d = 0, q  = 1                -> does not exist (+inf)
///
/// (The paper states the second case with "<="; at equality the closed
/// form divides by zero, so this implementation uses the strict
/// inequality — see DESIGN.md "Deviations".)
///
/// Two independent routes are provided: the closed form above and plain
/// fixpoint iteration of alpha <- L(alpha) + epsilon; they cross-check
/// each other in tests and in bench_ablation_supremum.

#include <cstddef>

#include "common/status.h"
#include "core/privacy_loss.h"

namespace tcdp {

/// \brief Supremum of the leakage recurrence for fixed aggregates (q, d).
struct SupremumResult {
  bool exists = false;   ///< finite supremum?
  double value = 0.0;    ///< the supremum; +inf when !exists
  double q_sum = 0.0;    ///< q aggregate used
  double d_sum = 0.0;    ///< d aggregate used
};

/// \brief Theorem 5 closed form for one (q, d) pair.
///
/// q = d = 0 (identical rows / no correlation) yields the supremum
/// epsilon itself. Returns InvalidArgument for epsilon <= 0 or aggregates
/// outside [0, 1].
StatusOr<SupremumResult> SupremumForPair(double q_sum, double d_sum,
                                         double epsilon);

/// \brief Supremum of the leakage under transition matrix \p loss with
/// per-step budget \p epsilon, solving for the maximizing pair
/// self-consistently (Algorithm 2's usage): iterate the recurrence; on
/// convergence, confirm with the closed form at the fixpoint's pair.
StatusOr<SupremumResult> ComputeSupremum(const TemporalLossFunction& loss,
                                         double epsilon,
                                         std::size_t max_iters = 100000,
                                         double tol = 1e-12);

/// \brief Plain fixpoint iteration alpha <- L(alpha) + epsilon from
/// alpha_0 = epsilon (the independent oracle).
struct FixpointResult {
  bool converged = false;
  double value = 0.0;      ///< limit, or last iterate when diverging
  std::size_t steps = 0;
};
FixpointResult IterateLeakageToFixpoint(const TemporalLossFunction& loss,
                                        double epsilon,
                                        std::size_t max_iters = 100000,
                                        double tol = 1e-12,
                                        double divergence_cap = 1e6);

/// \brief The budget inverse used by Algorithms 2 and 3: the per-step
/// epsilon whose supremum is exactly \p alpha, namely
/// epsilon = alpha - L(alpha).
///
/// Returns FailedPrecondition when L(alpha) >= alpha (strongest
/// correlation — no positive budget can bound the leakage at alpha).
StatusOr<double> EpsilonForSupremum(const TemporalLossFunction& loss,
                                    double alpha);

}  // namespace tcdp

#endif  // TCDP_CORE_SUPREMUM_H_
