#ifndef TCDP_CORE_TPL_ACCOUNTANT_H_
#define TCDP_CORE_TPL_ACCOUNTANT_H_

/// \file
/// Temporal-privacy-leakage accounting for a sequence of DP releases
/// (paper Section III-B/C):
///
///   BPL_t = L^B(BPL_{t-1}) + eps_t          (Equation 13, BPL_1 = eps_1)
///   FPL_t = L^F(FPL_{t+1}) + eps_t          (Equation 15, FPL_T = eps_T)
///   TPL_t = BPL_t + FPL_t - eps_t           (Equation 10)
///
/// BPL only ever grows as releases accumulate; FPL of *earlier* time
/// points retroactively increases whenever a new release happens — the
/// accountant recomputes the backward pass lazily.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/privacy_loss.h"
#include "core/temporal_correlations.h"

namespace tcdp {

/// \brief The parsed form of a serialized accountant: correlations, the
/// loss-cache quantization step, and the effective spend sequence
/// (0 entries are skips). Everything a restore path needs, with no
/// replay performed — `TplAccountant::Deserialize` replays an image,
/// while bulk consumers (snapshot restore in `src/server/`) inject the
/// fields directly and skip the per-release loss evaluations.
struct AccountantImage {
  TemporalCorrelations correlations = TemporalCorrelations::None();
  /// Negative = direct (uncached) evaluators.
  double cache_alpha_resolution = -1.0;
  std::vector<double> epsilons;
};

/// \brief Renders \p image in the "tcdp-accountant-v2" text format.
std::string SerializeAccountantImage(const AccountantImage& image);

/// \brief Parses a "tcdp-accountant-v1"/"-v2" blob. Hardened: any
/// truncated, corrupted, or semantically invalid input (bad header,
/// malformed matrices, element counts exceeding the input, non-finite
/// or negative budgets) returns InvalidArgument — never asserts,
/// allocates unboundedly, or reads past the text.
StatusOr<AccountantImage> ParseAccountantImage(const std::string& text);

/// \brief Tracks one user's BPL/FPL/TPL across an event-level release
/// sequence, given that user's temporal correlations.
class TplAccountant {
 public:
  /// \p correlations may lack either matrix; the missing direction's loss
  /// function is identically zero (classical DP adversary on that side).
  explicit TplAccountant(TemporalCorrelations correlations);

  /// Fleet construction: evaluate through externally supplied loss
  /// evaluators (e.g. a shared TemporalLossCache) instead of building
  /// per-user TemporalLossFunctions. A null evaluator means zero loss on
  /// that side; callers must pass evaluators consistent with
  /// \p correlations. When the evaluators come from a TemporalLossCache,
  /// pass that cache's alpha_resolution as \p cache_alpha_resolution so
  /// Serialize() can record it and Deserialize() can rebuild an
  /// identically quantized cache — the restored series is then bitwise
  /// equal to the live one, provided the cache used the default
  /// LossEvalOptions (the eval method is not serialized; a
  /// non-default method restores within solver parity, i.e. ULPs).
  /// Negative (the default) means "direct evaluators" and restores the
  /// uncached path.
  TplAccountant(TemporalCorrelations correlations,
                std::shared_ptr<const LossEvaluator> backward_loss,
                std::shared_ptr<const LossEvaluator> forward_loss,
                double cache_alpha_resolution = -1.0);

  /// Appends a release with budget eps > 0 at time horizon()+1.
  Status RecordRelease(double epsilon);

  /// Appends a time step in which this user released nothing (a sparse
  /// schedule's gap): eps_t = 0, but prior leakage still propagates
  /// through the backward loss — BPL_t = L^B(BPL_{t-1}) — and the FPL
  /// horizon advances so later releases back-propagate over the gap.
  Status RecordSkip();

  /// Convenience: record \p count releases of the same budget.
  Status RecordUniformReleases(double epsilon, std::size_t count);

  std::size_t horizon() const { return epsilons_.size(); }
  const std::vector<double>& epsilons() const { return epsilons_; }
  const TemporalCorrelations& correlations() const { return correlations_; }

  /// \name Per-time-point leakage (1-based t in [1, horizon()]).
  /// All return OutOfRange for t outside the recorded range.
  /// @{
  StatusOr<double> Bpl(std::size_t t) const;
  StatusOr<double> Fpl(std::size_t t) const;
  StatusOr<double> Tpl(std::size_t t) const;
  /// @}

  /// Full series (index 0 = t=1).
  std::vector<double> BplSeries() const;
  std::vector<double> FplSeries() const;
  std::vector<double> TplSeries() const;

  /// max_t TPL_t — the alpha for which the recorded sequence is
  /// alpha-DP_T (Definition 8). 0 for an empty sequence.
  double MaxTpl() const;

  /// Theorem 2: leakage of the sub-sequence {M_t, ..., M_{t+j}}:
  ///   j = 0: TPL_t
  ///   j = 1: BPL_t + FPL_{t+1}
  ///   j >= 2: BPL_t + FPL_{t+j} + sum_{k=1}^{j-1} eps_{t+k}
  /// Returns OutOfRange when [t, t+j] is not within the horizon.
  StatusOr<double> SequenceTpl(std::size_t t, std::size_t j) const;

  /// Corollary 1: user-level leakage of the whole sequence = sum eps_k
  /// (temporal correlations do not amplify user-level DP).
  double UserLevelTpl() const;

  /// The correlated analogue of w-event privacy (Table II middle row):
  /// max over start times of SequenceTpl over windows of \p w consecutive
  /// releases (truncated at the horizon). Returns InvalidArgument for
  /// w == 0 and 0.0 for an empty sequence.
  StatusOr<double> MaxWindowTpl(std::size_t w) const;

  /// \name State persistence.
  /// A release service must survive restarts without losing its leakage
  /// history (BPL depends on every past release). The text format embeds
  /// the correlation matrices, the spend sequence (0 entries are skips),
  /// and — header "tcdp-accountant-v2" — the loss-cache quantization
  /// step, so a restored cache-backed accountant replays through an
  /// identically quantized cache and reproduces the live series bitwise.
  /// "tcdp-accountant-v1" inputs (no quantization line) remain readable
  /// and restore direct evaluators, as v1 writers always did.
  /// @{
  std::string Serialize() const;
  static StatusOr<TplAccountant> Deserialize(const std::string& text);
  /// @}

  /// The cache grid this accountant evaluates on; negative for direct
  /// (uncached) evaluators.
  double cache_alpha_resolution() const { return cache_alpha_resolution_; }

 private:
  void EnsureFplCache() const;
  void AppendStep(double epsilon);

  TemporalCorrelations correlations_;
  // Loss evaluators, possibly shared across users (null when the matrix
  // is absent — zero loss on that side).
  std::shared_ptr<const LossEvaluator> backward_loss_;
  std::shared_ptr<const LossEvaluator> forward_loss_;
  double cache_alpha_resolution_ = -1.0;

  std::vector<double> epsilons_;
  std::vector<double> bpl_;              // incremental forward pass
  mutable std::vector<double> fpl_;      // lazy backward pass
  mutable bool fpl_dirty_ = true;
};

/// \brief Population view (Section III-D): per-user accountants, overall
/// leakage = max over users; also yields the personalized profile.
///
/// NOTE: for fleets beyond a handful of users prefer
/// service/fleet_engine.h, which offers the same surface batched over
/// the structure-of-arrays AccountantBank (core/accountant_bank.h).
/// This class remains the simple single-threaded reference
/// implementation the bank is property-tested against.
class PopulationAccountant {
 public:
  /// Adds a user; returns its index.
  std::size_t AddUser(std::string name, TemporalCorrelations correlations);

  /// Records one release (budget eps) for every user.
  Status RecordRelease(double epsilon);

  /// Heterogeneous-schedule release: users listed in \p participants
  /// (by index) accrue \p epsilon; every other user records a skip
  /// (see TplAccountant::RecordSkip). Rejects out-of-range indices.
  Status RecordRelease(double epsilon,
                       const std::vector<std::size_t>& participants);

  std::size_t num_users() const { return users_.size(); }
  std::size_t horizon() const;

  /// Accountant of user \p index.
  const TplAccountant& user(std::size_t index) const {
    return users_[index].accountant;
  }
  const std::string& user_name(std::size_t index) const {
    return users_[index].name;
  }

  /// Definition 5's outer max: max over users of TPL_t.
  StatusOr<double> MaxTplAt(std::size_t t) const;

  /// The overall alpha of the recorded sequence: max over users and t.
  double OverallAlpha() const;

 private:
  struct UserEntry {
    std::string name;
    TplAccountant accountant;
  };
  std::vector<UserEntry> users_;
};

}  // namespace tcdp

#endif  // TCDP_CORE_TPL_ACCOUNTANT_H_
