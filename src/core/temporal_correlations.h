#ifndef TCDP_CORE_TEMPORAL_CORRELATIONS_H_
#define TCDP_CORE_TEMPORAL_CORRELATIONS_H_

/// \file
/// The adversary model of the paper's Section III-A: adversary_T knows
/// all other users' data plus backward and/or forward temporal
/// correlations of the target user, given as transition matrices
/// (Definitions 3 and 4).

#include <cstddef>
#include <optional>
#include <string>

#include "common/status.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// \brief A user's temporal correlations: optional P^B and optional P^F.
///
/// The three adversary types of Definition 4 map to:
///  * adversary_T(P^B)        — has_backward() only   -> causes BPL only
///  * adversary_T(P^F)        — has_forward() only    -> causes FPL only
///  * adversary_T(P^B, P^F)   — both                  -> causes both
/// and TemporalCorrelations::None() is the classical DP adversary A_i.
class TemporalCorrelations {
 public:
  /// No correlation knowledge (classical DP adversary).
  static TemporalCorrelations None() { return TemporalCorrelations(); }

  /// Backward-only knowledge: P^B row r = distribution of l^{t-1} given
  /// l^t = r.
  static TemporalCorrelations BackwardOnly(StochasticMatrix backward);

  /// Forward-only knowledge: P^F row r = distribution of l^t given
  /// l^{t-1} = r.
  static TemporalCorrelations ForwardOnly(StochasticMatrix forward);

  /// Both matrices. Returns InvalidArgument if their dimensions differ.
  static StatusOr<TemporalCorrelations> Both(StochasticMatrix backward,
                                             StochasticMatrix forward);

  bool has_backward() const { return backward_.has_value(); }
  bool has_forward() const { return forward_.has_value(); }
  bool empty() const { return !has_backward() && !has_forward(); }

  /// `PRECONDITION: has_backward()`.
  const StochasticMatrix& backward() const { return *backward_; }
  /// `PRECONDITION: has_forward()`.
  const StochasticMatrix& forward() const { return *forward_; }

  /// Domain size n, or 0 when empty().
  std::size_t domain_size() const;

  std::string ToString() const;

 private:
  TemporalCorrelations() = default;
  std::optional<StochasticMatrix> backward_;
  std::optional<StochasticMatrix> forward_;
};

/// \brief Adversary_T targeting one user (Definition 4). The tuple
/// knowledge D^t_K is implicit: the adversary knows every other user's
/// value at every time point.
struct AdversaryT {
  std::size_t target_user = 0;
  TemporalCorrelations knowledge;
};

}  // namespace tcdp

#endif  // TCDP_CORE_TEMPORAL_CORRELATIONS_H_
