#include "core/loss_cache.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace tcdp {
namespace {

/// Process-global cache instruments (every TemporalLossCache instance
/// feeds the same totals, mirroring the per-instance atomics that back
/// `stats()`).
struct CacheObs {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* interned;
  obs::Gauge* entries;
  static const CacheObs& Get() {
    static const CacheObs instruments = [] {
      obs::Registry& registry = obs::Registry::Default();
      CacheObs o;
      o.hits = registry.GetCounter("tcdp_loss_cache_hits_total");
      o.misses = registry.GetCounter("tcdp_loss_cache_misses_total");
      o.interned = registry.GetCounter("tcdp_loss_cache_interned_total");
      o.entries = registry.GetGauge("tcdp_loss_cache_entries");
      return o;
    }();
    return instruments;
  }
};

}  // namespace

class TemporalLossCache::Impl {
 public:
  explicit Impl(const Options& options) : options_(options) {
    if (options_.num_shards == 0) options_.num_shards = 1;
  }

  /// One interned matrix: its loss function plus a sharded value table.
  struct Entry {
    explicit Entry(StochasticMatrix matrix, std::size_t num_shards)
        : loss(std::move(matrix)), shards(num_shards) {}
    TemporalLossFunction loss;
    struct Shard {
      std::mutex mu;
      std::unordered_map<std::int64_t, double> values;
    };
    std::vector<Shard> shards;
  };

  std::shared_ptr<Entry> InternEntry(const StochasticMatrix& matrix) {
    const std::uint64_t fp = FingerprintStochasticMatrix(matrix);
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto [it, inserted] = registry_.try_emplace(fp);
    for (const auto& existing : it->second) {
      if (ExactlyEquals(existing->loss.transition(), matrix)) return existing;
    }
    auto entry = std::make_shared<Entry>(matrix, options_.num_shards);
    it->second.push_back(entry);
    if (obs::MetricsEnabled()) CacheObs::Get().interned->Increment();
    return entry;
  }

  double Evaluate(Entry& entry, double alpha) {
    if (!(alpha > 0.0)) return 0.0;
    std::int64_t key;
    if (options_.alpha_resolution > 0.0) {
      const double scaled = alpha / options_.alpha_resolution;
      if (scaled >= 9.0e18) {  // llround would overflow int64
        // Leakage this deep is astronomically past any real budget;
        // evaluate directly rather than corrupt the key space.
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (obs::MetricsEnabled()) CacheObs::Get().misses->Increment();
        return entry.loss.EvaluateDetailed(alpha, options_.eval).loss;
      }
      // Snap to the grid point at or above alpha: L is nondecreasing, so
      // evaluating at a larger argument keeps the memoized value an
      // upper bound on the true loss — an accountant must never round a
      // privacy leakage down.
      key = static_cast<std::int64_t>(std::llround(scaled));
      double snapped = static_cast<double>(key) * options_.alpha_resolution;
      if (snapped < alpha) {
        ++key;
        snapped = static_cast<double>(key) * options_.alpha_resolution;
      }
      alpha = snapped;
    } else {
      std::memcpy(&key, &alpha, sizeof(key));
    }
    Entry::Shard& shard =
        entry.shards[static_cast<std::uint64_t>(key) % entry.shards.size()];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.values.find(key);
      if (it != shard.values.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (obs::MetricsEnabled()) CacheObs::Get().hits->Increment();
        return it->second;
      }
    }
    // Compute outside the lock: Algorithm 1 is the expensive part, and a
    // concurrent duplicate computes the identical value anyway. Only the
    // thread whose insert wins counts the miss, so hits + misses always
    // equals lookups even when a cold bucket is raced.
    const double value = entry.loss.EvaluateDetailed(alpha, options_.eval).loss;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto [it, inserted] = shard.values.emplace(key, value);
      if (inserted) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (obs::MetricsEnabled()) {
          CacheObs::Get().misses->Increment();
          CacheObs::Get().entries->Add(1);
        }
      } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (obs::MetricsEnabled()) CacheObs::Get().hits->Increment();
      }
      return it->second;
    }
  }

  Stats stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [fp, entries] : registry_) {
      s.distinct_matrices += entries.size();
      for (const auto& entry : entries) {
        for (auto& shard : entry->shards) {
          std::lock_guard<std::mutex> shard_lock(shard.mu);
          s.entries += shard.values.size();
        }
      }
    }
    return s;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(registry_mu_);
    std::int64_t cleared = 0;
    for (auto& [fp, entries] : registry_) {
      for (auto& entry : entries) {
        for (auto& shard : entry->shards) {
          std::lock_guard<std::mutex> shard_lock(shard.mu);
          cleared += static_cast<std::int64_t>(shard.values.size());
          shard.values.clear();
        }
      }
    }
    if (cleared > 0 && obs::MetricsEnabled()) {
      CacheObs::Get().entries->Sub(cleared);
    }
  }

 private:
  Options options_;
  mutable std::mutex registry_mu_;
  // fingerprint -> entries (a bucket list guards against hash collision).
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>>
      registry_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

namespace {

/// The evaluator handed to accountants: routes through the shared table.
class CachedLoss : public LossEvaluator {
 public:
  CachedLoss(std::shared_ptr<TemporalLossCache::Impl> impl,
             std::shared_ptr<TemporalLossCache::Impl::Entry> entry)
      : impl_(std::move(impl)), entry_(std::move(entry)) {}

  double Evaluate(double alpha) const override {
    return impl_->Evaluate(*entry_, alpha);
  }

 private:
  std::shared_ptr<TemporalLossCache::Impl> impl_;
  std::shared_ptr<TemporalLossCache::Impl::Entry> entry_;
};

}  // namespace

TemporalLossCache::TemporalLossCache() : TemporalLossCache(Options()) {}

TemporalLossCache::TemporalLossCache(const Options& options)
    : impl_(std::make_shared<Impl>(options)) {}

std::shared_ptr<const LossEvaluator> TemporalLossCache::Intern(
    const StochasticMatrix& matrix) {
  return std::make_shared<CachedLoss>(impl_, impl_->InternEntry(matrix));
}

TemporalLossCache::Stats TemporalLossCache::stats() const {
  return impl_->stats();
}

void TemporalLossCache::Clear() { impl_->Clear(); }

}  // namespace tcdp
