#include "core/accountant_bank.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "core/tpl_accountant.h"
#include "kernels/kernels.h"
#include "markov/stochastic_matrix.h"
#include "obs/metrics.h"

namespace {

/// Process-global bank instruments: step latency plus population
/// gauges. With several banks in one process (one per shard) the
/// gauges are maintained as deltas, so they track the fleet total.
struct BankObs {
  tcdp::obs::Histogram* step_seconds;
  tcdp::obs::Gauge* cohorts;
  tcdp::obs::Gauge* users;
  static const BankObs& Get() {
    static const BankObs instruments = [] {
      tcdp::obs::Registry& registry = tcdp::obs::Registry::Default();
      BankObs o;
      o.step_seconds = registry.GetHistogram("tcdp_bank_step_seconds");
      o.cohorts = registry.GetGauge("tcdp_bank_cohorts");
      o.users = registry.GetGauge("tcdp_bank_users");
      return o;
    }();
    return instruments;
  }
};

}  // namespace

namespace tcdp {
namespace {

/// Combined content fingerprint of an optional (P^B, P^F) pair.
/// Presence flags are mixed in so BackwardOnly(M) != ForwardOnly(M).
std::uint64_t FingerprintPair(const TemporalCorrelations& corr) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(corr.has_backward() ? 1u : 0u);
  if (corr.has_backward()) mix(FingerprintStochasticMatrix(corr.backward()));
  mix(corr.has_forward() ? 2u : 0u);
  if (corr.has_forward()) mix(FingerprintStochasticMatrix(corr.forward()));
  return h;
}

bool SamePair(const TemporalCorrelations& a, const TemporalCorrelations& b) {
  if (a.has_backward() != b.has_backward() ||
      a.has_forward() != b.has_forward()) {
    return false;
  }
  if (a.has_backward() && !ExactlyEquals(a.backward(), b.backward())) {
    return false;
  }
  if (a.has_forward() && !ExactlyEquals(a.forward(), b.forward())) {
    return false;
  }
  return true;
}

/// A small exact-bits memo for the per-slice update loop: cohort
/// members overwhelmingly carry bit-identical BPL state (identical
/// sub-schedules), so one evaluation serves the whole run without
/// touching the shared cache's locks. Falls through to the evaluator
/// (itself deterministic) when full — a perf valve, never a semantic
/// one.
class LocalLossMemo {
 public:
  double Evaluate(const LossEvaluator& loss, double alpha) {
    std::uint64_t bits;
    std::memcpy(&bits, &alpha, sizeof(bits));
    for (std::size_t i = 0; i < size_; ++i) {
      if (keys_[i] == bits) return values_[i];
    }
    const double value = loss.Evaluate(alpha);
    if (size_ < kCapacity) {
      keys_[size_] = bits;
      values_[size_] = value;
      ++size_;
    }
    return value;
  }

  void Reset() { size_ = 0; }

 private:
  static constexpr std::size_t kCapacity = 32;
  std::size_t size_ = 0;
  std::uint64_t keys_[kCapacity];
  double values_[kCapacity];
};

/// Per-thread working set for StepSlots: staging buffers for the
/// evaluated backward losses and the mask-expanded budget adds, plus a
/// LocalLossMemo that now survives across the chunks one release fans
/// out to a thread (keyed on (bank, release, evaluator); evaluators are
/// pure, so a warm memo changes timing only, never values).
struct StepScratch {
  std::vector<double> loss;
  std::vector<double> add;

  LocalLossMemo& MemoFor(const void* bank, std::size_t release,
                         const void* evaluator) {
    if (!memo_valid_ || bank != memo_bank_ || release != memo_release_ ||
        evaluator != memo_evaluator_) {
      memo_.Reset();
      memo_bank_ = bank;
      memo_release_ = release;
      memo_evaluator_ = evaluator;
      memo_valid_ = true;
    }
    return memo_;
  }

 private:
  LocalLossMemo memo_;
  const void* memo_bank_ = nullptr;
  const void* memo_evaluator_ = nullptr;
  std::size_t memo_release_ = 0;
  bool memo_valid_ = false;
};

StepScratch& StepScratchForThread() {
  thread_local StepScratch scratch;
  return scratch;
}

}  // namespace

AccountantBank::AccountantBank(AccountantBankOptions options)
    : options_(std::move(options)) {
  if (options_.share_loss_cache) {
    cache_ = std::make_unique<TemporalLossCache>(options_.cache);
  }
  cohort_offsets_.push_back(0);
}

std::size_t AccountantBank::FindOrCreateCohort(
    const TemporalCorrelations& correlations) {
  const std::uint64_t fp = FingerprintPair(correlations);
  auto [it, inserted] = cohort_index_.try_emplace(fp);
  for (std::uint32_t c : it->second) {
    if (SamePair(cohorts_[c].correlations, correlations)) return c;
  }
  Cohort cohort;
  cohort.correlations = correlations;
  if (correlations.has_backward()) {
    cohort.backward =
        cache_ != nullptr
            ? cache_->Intern(correlations.backward())
            : std::make_shared<TemporalLossFunction>(correlations.backward());
  }
  if (correlations.has_forward()) {
    cohort.forward =
        cache_ != nullptr
            ? cache_->Intern(correlations.forward())
            : std::make_shared<TemporalLossFunction>(correlations.forward());
  }
  cohorts_.push_back(std::move(cohort));
  const std::uint32_t index = static_cast<std::uint32_t>(cohorts_.size() - 1);
  it->second.push_back(index);
  offsets_dirty_ = true;
  return index;
}

void AccountantBank::EnsureOffsets() const {
  if (!offsets_dirty_) return;
  cohort_offsets_.resize(cohorts_.size() + 1);
  cohort_offsets_[0] = 0;
  for (std::size_t c = 0; c < cohorts_.size(); ++c) {
    cohort_offsets_[c + 1] = cohort_offsets_[c] + cohorts_[c].users.size();
  }
  offsets_dirty_ = false;
}

std::size_t AccountantBank::AddUser(TemporalCorrelations correlations) {
  const std::size_t cohorts_before = cohorts_.size();
  const std::size_t c = FindOrCreateCohort(correlations);
  if (obs::MetricsEnabled()) {
    BankObs::Get().users->Add(1);
    if (cohorts_.size() > cohorts_before) BankObs::Get().cohorts->Add(1);
  }
  Cohort& cohort = cohorts_[c];
  const std::size_t user = num_users();
  user_join_.push_back(static_cast<std::uint32_t>(horizon()));
  user_cohort_.push_back(static_cast<std::uint32_t>(c));
  user_slot_.push_back(static_cast<std::uint32_t>(cohort.users.size()));
  cohort.users.push_back(static_cast<std::uint32_t>(user));
  cohort.bpl_last.push_back(0.0);
  cohort.eps_sum.push_back(0.0);
  // O(1): the flat-slot prefix sums are rebuilt lazily (EnsureOffsets),
  // so bulk enrollment is linear in users, not users x cohorts.
  offsets_dirty_ = true;
  return user;
}

void AccountantBank::StepSlots(std::size_t lo, std::size_t hi, double epsilon,
                               const std::vector<std::uint64_t>& mask) {
  const kernels::Backend& kern = kernels::ActiveBackend();
  StepScratch& scratch = StepScratchForThread();
  // Locate the cohort owning `lo` (offsets are sorted, cohorts few).
  std::size_t c = static_cast<std::size_t>(
      std::upper_bound(cohort_offsets_.begin(), cohort_offsets_.end(), lo) -
      cohort_offsets_.begin() - 1);
  while (lo < hi) {
    const std::size_t end = std::min(hi, cohort_offsets_[c + 1]);
    Cohort& cohort = cohorts_[c];
    const LossEvaluator* backward = cohort.backward.get();
    const std::size_t s0 = lo - cohort_offsets_[c];
    const std::size_t n = end - lo;
    double* bpl = cohort.bpl_last.data() + s0;
    double* eps_sum = cohort.eps_sum.data() + s0;

    // An empty mask means "everyone enrolled participated"; otherwise
    // stage the per-slot budget adds (epsilon or 0) once, then let the
    // fused kernels stream the column update.
    const double* add = nullptr;
    if (!mask.empty()) {
      if (scratch.add.size() < n) scratch.add.resize(n);
      kernels::ExpandMaskEpsilon(mask.data(), mask.size(),
                                 cohort.users.data() + s0, n, epsilon,
                                 scratch.add.data());
      add = scratch.add.data();
    }

    if (backward == nullptr) {
      // Zero backward loss: 0.0 + x == x bitwise for the non-negative
      // adds here, so the fill variants match the reference loss + add.
      if (add == nullptr) {
        kern.fused_fill_uniform(epsilon, bpl, eps_sum, n);
      } else {
        kern.fused_fill_add(add, bpl, eps_sum, n);
      }
    } else {
      if (scratch.loss.size() < n) scratch.loss.resize(n);
      LocalLossMemo& memo = scratch.MemoFor(this, horizon(), backward);
      for (std::size_t i = 0; i < n; ++i) {
        const double alpha = bpl[i];
        scratch.loss[i] = alpha > 0.0 ? memo.Evaluate(*backward, alpha) : 0.0;
      }
      if (add == nullptr) {
        kern.fused_loss_add_uniform(scratch.loss.data(), epsilon, bpl,
                                    eps_sum, n);
      } else {
        kern.fused_loss_add(scratch.loss.data(), add, bpl, eps_sum, n);
      }
    }
    lo = end;
    ++c;
  }
}

Status AccountantBank::Record(double epsilon,
                              const std::vector<std::size_t>* participants) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "AccountantBank: epsilon must be finite and > 0");
  }
  obs::ScopedLatencyTimer step_timer(BankObs::Get().step_seconds);
  // mask_scratch_ is reusable staging: empty = every enrolled user.
  if (participants != nullptr) {
    // 0 users still gets one zero word: distinct from "all".
    mask_scratch_.assign(std::max<std::size_t>((num_users() + 63) / 64, 1), 0);
    for (std::size_t user : *participants) {
      if (user >= num_users()) {
        return Status::InvalidArgument(
            "AccountantBank: participant index " + std::to_string(user) +
            " out of range");
      }
      mask_scratch_[user >> 6] |= std::uint64_t{1} << (user & 63u);
    }
  } else {
    mask_scratch_.clear();
  }
  EnsureOffsets();
  const std::size_t total = cohort_offsets_.back();
  if (total > 0) {
    if (pool_ != nullptr && total > 1) {
      pool_->ParallelForRange(
          0, total, [this, epsilon](std::size_t lo, std::size_t hi) {
            StepSlots(lo, hi, epsilon, mask_scratch_);
          });
    } else {
      StepSlots(0, total, epsilon, mask_scratch_);
    }
  }
  schedule_.push_back(epsilon);
  participation_.push_back(
      participants != nullptr
          ? PackedMask::FromWordSpan(mask_scratch_.data(), mask_scratch_.size())
          : PackedMask::All());
  return Status::OK();
}

Status AccountantBank::RecordRelease(double epsilon) {
  return Record(epsilon, nullptr);
}

Status AccountantBank::RecordRelease(
    double epsilon, const std::vector<std::size_t>& participants) {
  return Record(epsilon, &participants);
}

bool AccountantBank::ParticipatedRaw(std::size_t user, std::size_t t) const {
  return participation_[t].bit(user);
}

bool AccountantBank::Participated(std::size_t user, std::size_t t) const {
  assert(user < num_users() && t < horizon());
  return t >= user_join_[user] && ParticipatedRaw(user, t);
}

double AccountantBank::UserEpsSum(std::size_t user) const {
  assert(user < num_users());
  const Cohort& cohort = cohorts_[user_cohort_[user]];
  return cohort.eps_sum[user_slot_[user]];
}

std::vector<double> AccountantBank::EpsilonsFor(std::size_t user) const {
  assert(user < num_users());
  const std::size_t join = user_join_[user];
  std::vector<double> out(horizon() - join);
  for (std::size_t idx = 0; idx < out.size(); ++idx) {
    const std::size_t t = join + idx;
    out[idx] = ParticipatedRaw(user, t) ? schedule_[t] : 0.0;
  }
  return out;
}

std::vector<double> AccountantBank::BplSeriesFor(std::size_t user) const {
  assert(user < num_users());
  const Cohort& cohort = cohorts_[user_cohort_[user]];
  const LossEvaluator* backward = cohort.backward.get();
  const std::size_t join = user_join_[user];
  std::vector<double> out(horizon() - join);
  double prev = 0.0;
  for (std::size_t idx = 0; idx < out.size(); ++idx) {
    const std::size_t t = join + idx;
    const double eps = ParticipatedRaw(user, t) ? schedule_[t] : 0.0;
    double loss = 0.0;
    if (backward != nullptr && prev > 0.0) loss = backward->Evaluate(prev);
    prev = loss + eps;
    out[idx] = prev;
  }
  // The recomputed tail must land exactly on the running column.
  assert(out.empty() ||
         out.back() == cohort.bpl_last[user_slot_[user]]);
  return out;
}

std::vector<double> AccountantBank::FplSeriesFor(std::size_t user) const {
  assert(user < num_users());
  const Cohort& cohort = cohorts_[user_cohort_[user]];
  const LossEvaluator* forward = cohort.forward.get();
  const std::size_t join = user_join_[user];
  const std::size_t len = horizon() - join;
  std::vector<double> out(len);
  for (std::size_t idx = len; idx-- > 0;) {
    const std::size_t t = join + idx;
    double fpl = ParticipatedRaw(user, t) ? schedule_[t] : 0.0;
    if (idx + 1 < len && forward != nullptr) {
      fpl += forward->Evaluate(out[idx + 1]);
    }
    out[idx] = fpl;
  }
  return out;
}

std::vector<double> AccountantBank::TplSeriesFor(std::size_t user) const {
  const std::vector<double> eps = EpsilonsFor(user);
  const std::vector<double> bpl = BplSeriesFor(user);
  const std::vector<double> fpl = FplSeriesFor(user);
  std::vector<double> out(bpl.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = bpl[i] + fpl[i] - eps[i];
  }
  return out;
}

double AccountantBank::MaxTplFor(std::size_t user) const {
  double best = 0.0;
  for (double v : TplSeriesFor(user)) best = std::max(best, v);
  return best;
}

StatusOr<double> AccountantBank::MaxTplAt(std::size_t t) const {
  if (num_users() == 0) {
    return Status::FailedPrecondition("MaxTplAt: no users registered");
  }
  if (t < 1 || t > horizon()) {
    return Status::OutOfRange("MaxTplAt: t outside [1, horizon]");
  }
  std::vector<double> per_user(num_users(), 0.0);
  auto body = [this, t, &per_user](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      if (user_join_[u] >= t) continue;  // joined after t: no series there
      const std::vector<double> tpl = TplSeriesFor(u);
      per_user[u] = tpl[t - 1 - user_join_[u]];
    }
  };
  if (pool_ != nullptr && num_users() > 1) {
    pool_->ParallelForRange(0, num_users(), body);
  } else {
    body(0, num_users());
  }
  // Deterministic serial reduction in user order.
  double best = 0.0;
  for (double v : per_user) best = std::max(best, v);
  return best;
}

std::vector<double> AccountantBank::PersonalizedAlphas() const {
  std::vector<double> alphas(num_users(), 0.0);
  auto body = [this, &alphas](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) alphas[u] = MaxTplFor(u);
  };
  if (pool_ != nullptr && num_users() > 1) {
    pool_->ParallelForRange(0, num_users(), body);
  } else {
    body(0, num_users());
  }
  return alphas;
}

double AccountantBank::OverallAlpha() const {
  double best = 0.0;
  for (double v : PersonalizedAlphas()) best = std::max(best, v);
  return best;
}

TemporalLossCache::Stats AccountantBank::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : TemporalLossCache::Stats{};
}

const TemporalCorrelations& AccountantBank::user_correlations(
    std::size_t user) const {
  assert(user < num_users());
  return cohorts_[user_cohort_[user]].correlations;
}

double AccountantBank::UserBplLast(std::size_t user) const {
  assert(user < num_users());
  return cohorts_[user_cohort_[user]].bpl_last[user_slot_[user]];
}

std::string AccountantBank::SerializeUser(std::size_t user) const {
  assert(user < num_users());
  AccountantImage image;
  image.correlations = user_correlations(user);
  image.cache_alpha_resolution = cache_alpha_resolution();
  image.epsilons = EpsilonsFor(user);
  return SerializeAccountantImage(image);
}

std::size_t AccountantBank::ParticipationBytes() const {
  std::size_t bytes = 0;
  for (const PackedMask& row : participation_) bytes += row.MemoryBytes();
  return bytes;
}

AccountantBank::Image AccountantBank::ExportImage() const {
  Image image;
  image.schedule = schedule_;
  image.participation = participation_;
  image.users.reserve(num_users());
  for (std::size_t u = 0; u < num_users(); ++u) {
    UserImage user;
    user.correlations = user_correlations(u);
    user.join = user_join_[u];
    user.bpl_last = UserBplLast(u);
    user.eps_sum = UserEpsSum(u);
    image.users.push_back(std::move(user));
  }
  return image;
}

StatusOr<AccountantBank> AccountantBank::Restore(
    Image image, AccountantBankOptions options) {
  if (image.participation.size() != image.schedule.size()) {
    return Status::InvalidArgument(
        "AccountantBank::Restore: " +
        std::to_string(image.participation.size()) +
        " participation rows for " + std::to_string(image.schedule.size()) +
        " releases");
  }
  for (double eps : image.schedule) {
    if (!(eps > 0.0) || !std::isfinite(eps)) {
      return Status::InvalidArgument(
          "AccountantBank::Restore: schedule entry not finite and > 0");
    }
  }
  const std::size_t max_words = (image.users.size() + 63) / 64;
  for (const PackedMask& row : image.participation) {
    if (!row.is_all() && row.num_words() > std::max<std::size_t>(max_words, 1)) {
      return Status::InvalidArgument(
          "AccountantBank::Restore: participation row wider than the fleet");
    }
  }
  AccountantBank bank(std::move(options));
  for (const UserImage& user : image.users) {
    if (user.join > image.schedule.size()) {
      return Status::InvalidArgument(
          "AccountantBank::Restore: user join " + std::to_string(user.join) +
          " past horizon " + std::to_string(image.schedule.size()));
    }
    if (!std::isfinite(user.bpl_last) || user.bpl_last < 0.0 ||
        !std::isfinite(user.eps_sum) || user.eps_sum < 0.0) {
      return Status::InvalidArgument(
          "AccountantBank::Restore: per-user state not finite and >= 0");
    }
    bank.AddUser(user.correlations);
  }
  bank.schedule_ = std::move(image.schedule);
  bank.participation_ = std::move(image.participation);
  for (std::size_t u = 0; u < image.users.size(); ++u) {
    const UserImage& user = image.users[u];
    // The accrued sum is a pure function of (mask, schedule) and must
    // match bitwise — the additions replay in the same release order
    // the live bank accumulated them in. A mismatch means the image's
    // columns, masks, and schedule disagree (silent corruption that a
    // per-field check cannot see).
    double eps_sum = 0.0;
    for (std::size_t t = user.join; t < bank.schedule_.size(); ++t) {
      eps_sum += bank.ParticipatedRaw(u, t) ? bank.schedule_[t] : 0.0;
    }
    if (eps_sum != user.eps_sum) {
      return Status::InvalidArgument(
          "AccountantBank::Restore: user " + std::to_string(u) +
          " eps_sum does not match its mask-selected schedule sum");
    }
    Cohort& cohort = bank.cohorts_[bank.user_cohort_[u]];
    bank.user_join_[u] = user.join;
    cohort.bpl_last[bank.user_slot_[u]] = user.bpl_last;
    cohort.eps_sum[bank.user_slot_[u]] = user.eps_sum;
  }
  return bank;
}

}  // namespace tcdp
