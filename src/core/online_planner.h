#ifndef TCDP_CORE_ONLINE_PLANNER_H_
#define TCDP_CORE_ONLINE_PLANNER_H_

/// \file
/// Online (streaming) budget planning under an alpha-DP_T contract — the
/// operational companion to the offline Algorithms 2/3: at each step the
/// planner tells the release pipeline the largest budget it may spend
/// *now* without ever breaking the contract, adapting to whatever was
/// actually spent before (skipped steps, operator overrides, partial
/// budgets). After quiet periods the affordable budget recovers toward
/// alpha_b, strictly improving on Algorithm 2's constant eps*.
///
/// The rule: with the balanced split (alpha_b, alpha_f, eps*) of
/// BudgetAllocator,
///
///     eps_t  <=  alpha_b - L^B(BPL_{t-1})                        (*)
///
/// Safety proof sketch (property-tested in online_planner_test and
/// property_test): (*) keeps BPL_t <= alpha_b for all t by construction.
/// For TPL, the invariant FPL_t <= alpha - L^B(BPL_{t-1}) + eps_t - eps_t
/// ... concretely: induct backward from the last release with the
/// hypothesis FPL_{t+1} <= alpha - L^B(BPL_t). Using that every loss
/// function L has slope <= 1 wherever the allocator admits a positive
/// steady budget (no q=1,d=0 pair), and that x - L^B(x) is increasing
/// with value eps* at x = alpha_b, one gets
///   L^F(alpha - L^B(BPL_t)) <= alpha - BPL_t,
/// hence TPL_t = L^B(BPL_{t-1}) + L^F(FPL_{t+1}) + eps_t <= alpha.
/// At the steady state BPL -> alpha_b the rule reproduces exactly
/// Algorithm 2's eps* = alpha_b - L^B(alpha_b).

#include <cstddef>
#include <optional>

#include "common/status.h"
#include "core/budget_allocation.h"
#include "core/privacy_loss.h"
#include "core/temporal_correlations.h"
#include "core/tpl_accountant.h"

namespace tcdp {

/// \brief Streaming budget planner maintaining an alpha-DP_T contract.
class OnlineTplPlanner {
 public:
  /// Solves the balanced split once. Fails like BudgetAllocator when the
  /// correlations admit no positive steady budget.
  static StatusOr<OnlineTplPlanner> Create(TemporalCorrelations correlations,
                                           double alpha,
                                           AllocationOptions options = {});

  double alpha() const { return alpha_; }
  const BalancedBudget& budget() const { return budget_; }
  const TplAccountant& accountant() const { return accountant_; }
  std::size_t steps_taken() const { return accountant_.horizon(); }

  /// The largest budget spendable at the next step under rule (*):
  /// alpha_b - L^B(BPL so far) (= alpha_b on the first step). Recovers
  /// after quiet periods; equals eps* at the steady state.
  double MaxAffordableEpsilon() const;

  /// True iff spending \p epsilon next satisfies rule (*).
  bool WouldRespectContract(double epsilon) const;

  /// Records an actual spend. InvalidArgument for non-positive epsilon;
  /// FailedPrecondition if it breaks rule (*).
  Status RecordRelease(double epsilon);

  /// Convenience: record MaxAffordableEpsilon() and return it.
  StatusOr<double> RecordMaxRelease();

  /// Post-hoc audit of everything recorded so far (uses the exact
  /// accountant, not the rule): max TPL of the realized sequence.
  double AuditedMaxTpl() const { return accountant_.MaxTpl(); }

 private:
  OnlineTplPlanner(TemporalCorrelations correlations, double alpha,
                   BalancedBudget budget);

  double alpha_;
  BalancedBudget budget_;
  std::optional<TemporalLossFunction> backward_loss_;
  TplAccountant accountant_;
  double current_bpl_ = 0.0;  ///< BPL after the last recorded release
};

}  // namespace tcdp

#endif  // TCDP_CORE_ONLINE_PLANNER_H_
