#include "core/adversary_sim.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "dp/laplace.h"

namespace tcdp {

BayesianAdversary::BayesianAdversary(StochasticMatrix backward)
    : backward_(std::move(backward)),
      log_likelihood_(backward_.size(), 0.0) {}

Status BayesianAdversary::Observe(
    const std::vector<double>& log_densities) {
  const std::size_t n = domain_size();
  if (log_densities.size() != n) {
    return Status::InvalidArgument(
        "Observe: log_densities size mismatches domain");
  }
  if (num_observations_ == 0) {
    // g_1(v) = p(r^1 | l^1 = v).
    log_likelihood_ = log_densities;
  } else {
    // g_t(v) = p(r^t | v) * sum_{v'} P^B(v, v') g_{t-1}(v')   (Eq. 12).
    std::vector<double> next(n, -kInf);
    std::vector<double> terms;
    terms.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      terms.clear();
      for (std::size_t prev = 0; prev < n; ++prev) {
        const double p = backward_.At(v, prev);
        if (p > 0.0) {
          terms.push_back(std::log(p) + log_likelihood_[prev]);
        }
      }
      next[v] = log_densities[v] + LogSumExp(terms);
    }
    log_likelihood_ = std::move(next);
  }
  ++num_observations_;
  return Status::OK();
}

double BayesianAdversary::RealizedLeakage() const {
  if (num_observations_ == 0) return 0.0;
  const auto [mn, mx] =
      std::minmax_element(log_likelihood_.begin(), log_likelihood_.end());
  if (!std::isfinite(*mn)) return kInf;
  return *mx - *mn;
}

std::vector<double> BayesianAdversary::Posterior() const {
  const double norm = LogSumExp(log_likelihood_);
  std::vector<double> post(log_likelihood_.size(), 0.0);
  for (std::size_t v = 0; v < post.size(); ++v) {
    post[v] = std::exp(log_likelihood_[v] - norm);
  }
  return post;
}

void BayesianAdversary::Reset() {
  log_likelihood_.assign(domain_size(), 0.0);
  num_observations_ = 0;
}

StatusOr<SmoothingAdversary> SmoothingAdversary::Create(
    StochasticMatrix backward, StochasticMatrix forward) {
  if (backward.size() != forward.size()) {
    return Status::InvalidArgument(
        "SmoothingAdversary: P^B and P^F dimensions differ");
  }
  return SmoothingAdversary(std::move(backward), std::move(forward));
}

StatusOr<std::vector<double>> SmoothingAdversary::RealizedTplSeries(
    const std::vector<std::vector<double>>& log_densities) const {
  const std::size_t n = domain_size();
  const std::size_t horizon = log_densities.size();
  if (horizon == 0) {
    return Status::InvalidArgument("RealizedTplSeries: empty sequence");
  }
  for (const auto& d : log_densities) {
    if (d.size() != n) {
      return Status::InvalidArgument(
          "RealizedTplSeries: density vector size mismatches domain");
    }
  }

  // Backward filter g_t (past and present releases).
  std::vector<std::vector<double>> g(horizon, std::vector<double>(n, 0.0));
  std::vector<double> terms;
  terms.reserve(n);
  for (std::size_t t = 0; t < horizon; ++t) {
    for (std::size_t v = 0; v < n; ++v) {
      if (t == 0) {
        g[t][v] = log_densities[t][v];
        continue;
      }
      terms.clear();
      for (std::size_t prev = 0; prev < n; ++prev) {
        const double p = backward_.At(v, prev);
        if (p > 0.0) terms.push_back(std::log(p) + g[t - 1][prev]);
      }
      g[t][v] = log_densities[t][v] + LogSumExp(terms);
    }
  }
  // Forward filter h_t (strictly future releases); h_{T-1} = 0 (log 1).
  std::vector<std::vector<double>> h(horizon, std::vector<double>(n, 0.0));
  for (std::size_t t = horizon - 1; t-- > 0;) {
    for (std::size_t v = 0; v < n; ++v) {
      terms.clear();
      for (std::size_t next = 0; next < n; ++next) {
        const double p = forward_.At(v, next);
        if (p > 0.0) {
          terms.push_back(std::log(p) + log_densities[t + 1][next] +
                          h[t + 1][next]);
        }
      }
      h[t][v] = LogSumExp(terms);
    }
  }

  std::vector<double> realized(horizon, 0.0);
  for (std::size_t t = 0; t < horizon; ++t) {
    double lo = kInf, hi = -kInf;
    for (std::size_t v = 0; v < n; ++v) {
      const double joint = g[t][v] + h[t][v];
      lo = std::min(lo, joint);
      hi = std::max(hi, joint);
    }
    realized[t] = std::isfinite(lo) ? hi - lo : kInf;
  }
  return realized;
}

StatusOr<std::vector<double>> HistogramLogDensities(
    const std::vector<double>& noisy_release,
    const std::vector<double>& others_histogram, double epsilon,
    double sensitivity) {
  if (noisy_release.size() != others_histogram.size()) {
    return Status::InvalidArgument(
        "HistogramLogDensities: size mismatch between release and "
        "histogram");
  }
  if (!(epsilon > 0.0) || !(sensitivity > 0.0)) {
    return Status::InvalidArgument(
        "HistogramLogDensities: epsilon and sensitivity must be > 0");
  }
  const std::size_t n = noisy_release.size();
  const double scale = sensitivity / epsilon;
  // Base: target absent everywhere. Adjust bin v for the target's +1.
  double base = 0.0;
  std::vector<double> residual(n);
  for (std::size_t b = 0; b < n; ++b) {
    residual[b] = noisy_release[b] - others_histogram[b];
    base += std::log(LaplaceMechanism::Pdf(residual[b], scale));
  }
  std::vector<double> out(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    out[v] = base -
             std::log(LaplaceMechanism::Pdf(residual[v], scale)) +
             std::log(LaplaceMechanism::Pdf(residual[v] - 1.0, scale));
  }
  return out;
}

}  // namespace tcdp
