#ifndef TCDP_CORE_ACCOUNTANT_BANK_H_
#define TCDP_CORE_ACCOUNTANT_BANK_H_

/// \file
/// Structure-of-arrays fleet accounting: the per-user recurrences
///
///   BPL_t = L^B(BPL_{t-1}) + eps_t          (Equation 13)
///   FPL_t = L^F(FPL_{t+1}) + eps_t          (Equation 15)
///
/// batched over contiguous per-user columns instead of one heap
/// accountant per user. Users are grouped into **cohorts** keyed by
/// their interned (P^B, P^F) transition-matrix pair; everyone in a
/// cohort shares one pair of loss evaluators, so each release costs one
/// Algorithm-1 solve per (cohort, distinct-alpha bucket) followed by a
/// tight update loop over the cohort's column slices — a parallel grain
/// that stays profitable even when the loss cache is warm (the open
/// item the per-user TplAccountant layout could not fix).
///
/// Heterogeneous schedules: `RecordRelease(epsilon, participants)`
/// charges eps only to the listed users; everyone else records a skip
/// (eps 0) whose backward loss still propagates and whose FPL horizon
/// still advances. A user added after releases started joins at the
/// current horizon and accrues only the sub-schedule from then on.
///
/// Equivalence contract (property-tested): every per-user series the
/// bank produces is **bitwise identical** to a standalone TplAccountant
/// driven with the same sub-schedule through equivalently configured
/// evaluators (same cache quantization, or both direct), at any thread
/// count. PopulationAccountant/TplAccountant remain the single-user
/// reference implementation.
///
/// Thread-compatible like FleetEngine: concurrent calls on one bank
/// must be externally serialized; internal fan-out is the bank's own.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/packed_mask.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/loss_cache.h"
#include "core/privacy_loss.h"
#include "core/temporal_correlations.h"

namespace tcdp {

struct AccountantBankOptions {
  /// When true, cohorts evaluate through a shared memoizing
  /// TemporalLossCache; when false each cohort owns a direct
  /// TemporalLossFunction (the uncached ablation baseline).
  bool share_loss_cache = true;
  TemporalLossCache::Options cache;
};

/// \brief Cohort-batched, SoA multi-user TPL accounting.
class AccountantBank {
 public:
  explicit AccountantBank(AccountantBankOptions options = {});

  /// Enrolls a user and returns its index. The user joins at the
  /// current horizon: earlier releases are not replayed, and the user's
  /// series covers only global releases [join_release, horizon).
  std::size_t AddUser(TemporalCorrelations correlations);

  /// Optional fan-out pool (not owned); null runs every loop inline.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Records one release of budget \p epsilon > 0 in which every
  /// enrolled user participates.
  Status RecordRelease(double epsilon);

  /// Heterogeneous-schedule release: only \p participants (global user
  /// indices) accrue \p epsilon; every other enrolled user records a
  /// skip. Rejects out-of-range indices.
  Status RecordRelease(double epsilon,
                       const std::vector<std::size_t>& participants);

  std::size_t num_users() const { return user_join_.size(); }
  std::size_t num_cohorts() const { return cohorts_.size(); }
  std::size_t horizon() const { return schedule_.size(); }
  const std::vector<double>& schedule() const { return schedule_; }

  /// \name Per-user accessors. \p user must be < num_users().
  /// @{
  /// Global release index (0-based) at which the user joined.
  std::size_t join_release(std::size_t user) const {
    return user_join_[user];
  }
  /// Length of the user's own series: horizon() - join_release(user).
  std::size_t user_horizon(std::size_t user) const {
    return horizon() - user_join_[user];
  }
  /// Whether the user accrued budget at global release \p t (0-based).
  bool Participated(std::size_t user, std::size_t t) const;
  /// Lifetime accrued budget — the user-level TPL (Corollary 1).
  double UserEpsSum(std::size_t user) const;
  /// The user's effective spend sequence (0 entries are skips), index 0
  /// = the user's join release.
  std::vector<double> EpsilonsFor(std::size_t user) const;
  /// Lazily recomputed full series over the user's sub-schedule,
  /// bitwise equal to the reference TplAccountant's.
  std::vector<double> BplSeriesFor(std::size_t user) const;
  std::vector<double> FplSeriesFor(std::size_t user) const;
  std::vector<double> TplSeriesFor(std::size_t user) const;
  /// max_t TPL_t over the user's series (0 when empty).
  double MaxTplFor(std::size_t user) const;
  /// @}

  /// Definition 5's outer max at global time \p t (1-based): max over
  /// users whose series covers t. OutOfRange for t outside
  /// [1, horizon]; FailedPrecondition with no users.
  StatusOr<double> MaxTplAt(std::size_t t) const;

  /// Per-user event-level alpha, fanned out over the pool.
  std::vector<double> PersonalizedAlphas() const;

  /// Max over users and t; 0 with no users or releases.
  double OverallAlpha() const;

  /// Zeroed when share_loss_cache is false.
  TemporalLossCache::Stats cache_stats() const;

  /// \name Durable-state hooks (the snapshot layer in src/server/ is
  /// built on these).
  /// @{
  /// The grid the bank's evaluators quantize to; negative when running
  /// direct (uncached) evaluators.
  double cache_alpha_resolution() const {
    return cache_ != nullptr ? options_.cache.alpha_resolution : -1.0;
  }
  /// The user's cohort exemplar correlations.
  const TemporalCorrelations& user_correlations(std::size_t user) const;
  /// Running Equation-13 state (the value the next release's backward
  /// loss is evaluated at).
  double UserBplLast(std::size_t user) const;
  /// Exports one user as a standalone "tcdp-accountant-v2" blob;
  /// TplAccountant::Deserialize on it reproduces the user's series
  /// bitwise (given the bank's quantization).
  std::string SerializeUser(std::size_t user) const;
  /// Stored participation row of global release \p t (0-based).
  const PackedMask& participation_row(std::size_t t) const {
    return participation_[t];
  }
  /// Heap bytes held by stored participation rows (the RLE metric).
  std::size_t ParticipationBytes() const;

  /// Everything needed to rebuild a bank without replaying releases.
  struct UserImage {
    TemporalCorrelations correlations = TemporalCorrelations::None();
    std::uint32_t join = 0;   ///< global release index at join
    double bpl_last = 0.0;    ///< Equation 13 running state
    double eps_sum = 0.0;     ///< lifetime accrued budget
  };
  struct Image {
    std::vector<double> schedule;
    std::vector<PackedMask> participation;  ///< aligned with schedule
    std::vector<UserImage> users;           ///< in user-index order
  };
  Image ExportImage() const;

  /// Rebuilds a bank from \p image in O(users + horizon) with **no**
  /// loss evaluations: cohorts are re-interned, columns injected
  /// directly. Hardened restore path: malformed images (non-finite or
  /// non-positive schedule entries, row/schedule length mismatch,
  /// out-of-range joins, mask rows wider than the fleet, or an eps_sum
  /// that does not equal the mask-selected schedule sum bitwise) return
  /// InvalidArgument. Series queried from the restored bank are bitwise
  /// identical to the originals.
  static StatusOr<AccountantBank> Restore(Image image,
                                          AccountantBankOptions options = {});
  /// @}

 private:
  /// One cohort: all users sharing a bit-identical (P^B, P^F) pair.
  struct Cohort {
    TemporalCorrelations correlations =
        TemporalCorrelations::None();  ///< exemplar matrices
    std::shared_ptr<const LossEvaluator> backward;  ///< null = zero loss
    std::shared_ptr<const LossEvaluator> forward;   ///< null = zero loss
    // SoA columns, one slot per member, in join order.
    std::vector<std::uint32_t> users;  ///< global user index per slot
    std::vector<double> bpl_last;      ///< Equation 13 running state
    std::vector<double> eps_sum;       ///< lifetime accrued budget
  };

  std::size_t FindOrCreateCohort(const TemporalCorrelations& correlations);
  /// Advances bpl_last/eps_sum for flat slots [lo, hi) (the
  /// cohort-slice update loop; deterministic for any chunking). Runs on
  /// the dispatched vector kernels (src/kernels/), staging losses and
  /// mask-selected budget adds in per-thread scratch buffers.
  void StepSlots(std::size_t lo, std::size_t hi, double epsilon,
                 const std::vector<std::uint64_t>& mask);
  Status Record(double epsilon, const std::vector<std::size_t>* participants);
  bool ParticipatedRaw(std::size_t user, std::size_t t) const;
  /// Rebuilds cohort_offsets_ from the cohort sizes when AddUser has
  /// invalidated it (prefix sum, O(cohorts) — enrollment itself is O(1)
  /// per user instead of O(cohorts)).
  void EnsureOffsets() const;

  AccountantBankOptions options_;
  std::unique_ptr<TemporalLossCache> cache_;  // null when not sharing
  ThreadPool* pool_ = nullptr;                // not owned

  std::vector<Cohort> cohorts_;
  /// fingerprint of the (P^B, P^F) pair -> cohort indices (bucket list
  /// guards against hash collision; membership is exact-bits).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
      cohort_index_;
  /// Flat slot space: cohort c owns [cohort_offsets_[c],
  /// cohort_offsets_[c+1]); rebuilt lazily (EnsureOffsets) after
  /// enrollment marks it dirty, so bulk AddUser stays linear.
  mutable std::vector<std::size_t> cohort_offsets_;
  mutable bool offsets_dirty_ = false;

  /// Reusable staging for Record's participation bitmask — rebuilt (not
  /// reallocated) per masked release, packed via PackedMask::FromWordSpan.
  std::vector<std::uint64_t> mask_scratch_;

  // Per-user global state (SoA).
  std::vector<std::uint32_t> user_join_;    ///< global release at join
  std::vector<std::uint32_t> user_cohort_;  ///< owning cohort
  std::vector<std::uint32_t> user_slot_;    ///< slot within the cohort

  std::vector<double> schedule_;  ///< global per-release budgets
  /// Participation row per release over global user indices; an All row
  /// means "every user enrolled at that time participated". Rows beyond
  /// a few words store word-level RLE (see common/packed_mask.h) so
  /// 10^5-release histories — and the snapshots/logs derived from them —
  /// stay small.
  std::vector<PackedMask> participation_;
};

}  // namespace tcdp

#endif  // TCDP_CORE_ACCOUNTANT_BANK_H_
