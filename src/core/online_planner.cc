#include "core/online_planner.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace tcdp {

StatusOr<OnlineTplPlanner> OnlineTplPlanner::Create(
    TemporalCorrelations correlations, double alpha,
    AllocationOptions options) {
  TCDP_ASSIGN_OR_RETURN(
      BudgetAllocator alloc,
      BudgetAllocator::Create(correlations, alpha, options));
  return OnlineTplPlanner(std::move(correlations), alpha, alloc.budget());
}

OnlineTplPlanner::OnlineTplPlanner(TemporalCorrelations correlations,
                                   double alpha, BalancedBudget budget)
    : alpha_(alpha), budget_(budget), accountant_(correlations) {
  if (correlations.has_backward()) {
    backward_loss_.emplace(correlations.backward());
  }
}

double OnlineTplPlanner::MaxAffordableEpsilon() const {
  double backward_room = budget_.alpha_b;
  if (steps_taken() > 0 && backward_loss_.has_value()) {
    backward_room = budget_.alpha_b - backward_loss_->Evaluate(current_bpl_);
  }
  return std::max(0.0, backward_room);
}

bool OnlineTplPlanner::WouldRespectContract(double epsilon) const {
  return epsilon > 0.0 &&
         epsilon <= MaxAffordableEpsilon() + 1e-12;
}

Status OnlineTplPlanner::RecordRelease(double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "OnlineTplPlanner: epsilon must be finite and > 0");
  }
  if (!WouldRespectContract(epsilon)) {
    return Status::FailedPrecondition(
        "OnlineTplPlanner: spending " + std::to_string(epsilon) +
        " now would break the " + std::to_string(alpha_) +
        "-DP_T contract (max affordable: " +
        std::to_string(MaxAffordableEpsilon()) + ")");
  }
  TCDP_RETURN_IF_ERROR(accountant_.RecordRelease(epsilon));
  double bpl = epsilon;
  if (steps_taken() > 1 && backward_loss_.has_value()) {
    bpl += backward_loss_->Evaluate(current_bpl_);
  }
  current_bpl_ = bpl;
  return Status::OK();
}

StatusOr<double> OnlineTplPlanner::RecordMaxRelease() {
  const double eps = MaxAffordableEpsilon();
  if (!(eps > 0.0)) {
    return Status::FailedPrecondition(
        "OnlineTplPlanner: no budget affordable at this step");
  }
  TCDP_RETURN_IF_ERROR(RecordRelease(eps));
  return eps;
}

}  // namespace tcdp
