#include "core/pdp_dpt.h"

#include <algorithm>
#include <string>

namespace tcdp {

StatusOr<PersonalizedDptPlanner> PersonalizedDptPlanner::Create(
    std::vector<PdpUserSpec> users, AllocationOptions options) {
  if (users.empty()) {
    return Status::InvalidArgument("PersonalizedDptPlanner: no users");
  }
  std::vector<BudgetAllocator> allocators;
  allocators.reserve(users.size());
  for (const PdpUserSpec& spec : users) {
    auto alloc =
        BudgetAllocator::Create(spec.correlations, spec.alpha, options);
    if (!alloc.ok()) {
      return Status(alloc.status().code(),
                    "user '" + spec.name + "': " + alloc.status().message());
    }
    allocators.push_back(std::move(alloc).value());
  }
  return PersonalizedDptPlanner(std::move(users), std::move(allocators));
}

StatusOr<std::vector<std::vector<double>>> PersonalizedDptPlanner::Schedules(
    std::size_t horizon) const {
  if (horizon == 0) {
    return Status::InvalidArgument("Schedules: horizon must be >= 1");
  }
  std::vector<std::vector<double>> schedules;
  schedules.reserve(users_.size());
  for (std::size_t i = 0; i < users_.size(); ++i) {
    switch (users_[i].strategy) {
      case DptStrategy::kUpperBound:
        schedules.push_back(allocators_[i].UpperBoundSchedule(horizon));
        break;
      case DptStrategy::kQuantified: {
        TCDP_ASSIGN_OR_RETURN(auto s,
                              allocators_[i].QuantifiedSchedule(horizon));
        schedules.push_back(std::move(s));
        break;
      }
      case DptStrategy::kGroupDpBaseline:
        schedules.push_back(GroupDpSchedule(users_[i].alpha, horizon));
        break;
    }
  }
  return schedules;
}

StatusOr<std::vector<double>> PersonalizedDptPlanner::ThresholdSchedule(
    std::size_t horizon) const {
  TCDP_ASSIGN_OR_RETURN(auto schedules, Schedules(horizon));
  std::vector<double> thresholds(horizon, 0.0);
  for (const auto& s : schedules) {
    for (std::size_t t = 0; t < horizon; ++t) {
      thresholds[t] = std::max(thresholds[t], s[t]);
    }
  }
  return thresholds;
}

StatusOr<PersonalizedDptPlanner::Result>
PersonalizedDptPlanner::ReleaseSeries(const TimeSeriesDatabase& series,
                                      const Query& query, Rng* rng) const {
  if (series.horizon() == 0) {
    return Status::InvalidArgument("ReleaseSeries: empty series");
  }
  if (series.num_users() != users_.size()) {
    return Status::InvalidArgument(
        "ReleaseSeries: series has " + std::to_string(series.num_users()) +
        " users, planner has " + std::to_string(users_.size()));
  }
  const std::size_t horizon = series.horizon();
  TCDP_ASSIGN_OR_RETURN(auto schedules, Schedules(horizon));

  Result result;
  result.per_user_epsilons = schedules;
  result.releases.reserve(horizon);
  result.thresholds.reserve(horizon);

  for (std::size_t t = 1; t <= horizon; ++t) {
    std::vector<double> step_epsilons(users_.size());
    for (std::size_t u = 0; u < users_.size(); ++u) {
      step_epsilons[u] = schedules[u][t - 1];
    }
    TCDP_ASSIGN_OR_RETURN(auto mech,
                          PdpSampleMechanism::Create(step_epsilons));
    TCDP_ASSIGN_OR_RETURN(Database db, series.At(t));
    TCDP_ASSIGN_OR_RETURN(PdpRelease release, mech.Release(db, query, rng));
    result.thresholds.push_back(release.threshold);
    result.releases.push_back(std::move(release));
  }

  // Audit each user against their personal alpha.
  result.per_user_max_tpl.reserve(users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    TplAccountant acc(users_[u].correlations);
    for (double eps : schedules[u]) {
      TCDP_RETURN_IF_ERROR(acc.RecordRelease(eps));
    }
    const double max_tpl = acc.MaxTpl();
    if (max_tpl > users_[u].alpha + 1e-6) {
      return Status::Internal("ReleaseSeries: user '" + users_[u].name +
                              "' audited TPL " + std::to_string(max_tpl) +
                              " exceeds alpha " +
                              std::to_string(users_[u].alpha));
    }
    result.per_user_max_tpl.push_back(max_tpl);
  }
  return result;
}

}  // namespace tcdp
