#ifndef TCDP_CORE_ADVERSARY_SIM_H_
#define TCDP_CORE_ADVERSARY_SIM_H_

/// \file
/// An *operational* adversary_T: exact Bayesian likelihood filtering over
/// the target user's value, given the noisy releases, the other users'
/// data, and the backward correlation P^B. The realized log-likelihood
/// ratio
///
///   Lambda_t = max_{v,v'} log [ Pr(r^1..r^t | l^t=v,  D_K) /
///                               Pr(r^1..r^t | l^t=v', D_K) ]
///
/// follows exactly the recurrence the paper unrolls in Equation (12), so
/// Lambda_t <= BPL_t for every realization — the analytic bound is the
/// supremum over outputs. The Monte-Carlo harness validates this
/// inequality and shows how tight it gets under strong correlations.

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// \brief Sequential likelihood filter for the target's current value.
class BayesianAdversary {
 public:
  /// \p backward is P^B (row = current value, column = previous value).
  explicit BayesianAdversary(StochasticMatrix backward);

  std::size_t domain_size() const { return backward_.size(); }

  /// Consumes one release: \p log_densities[v] = log p(r^t | l^t = v).
  /// Returns InvalidArgument on a size mismatch.
  Status Observe(const std::vector<double>& log_densities);

  /// log Pr(r^1..r^t | l^t = v) for each v (unnormalized; relative
  /// values are what matter).
  const std::vector<double>& log_likelihoods() const {
    return log_likelihood_;
  }

  /// Realized leakage Lambda_t = max - min of the log-likelihoods.
  /// 0 before any observation.
  double RealizedLeakage() const;

  /// Posterior over the current value given a uniform prior.
  std::vector<double> Posterior() const;

  std::size_t num_observations() const { return num_observations_; }

  /// Forgets all observations.
  void Reset();

 private:
  StochasticMatrix backward_;
  std::vector<double> log_likelihood_;
  std::size_t num_observations_ = 0;
};

/// \brief log p(r | l^t = v) for a noisy histogram release: the target
/// contributes 1 to bin v on top of the other users' histogram, and each
/// bin got independent Lap(sensitivity/epsilon) noise.
///
/// Returns InvalidArgument when sizes mismatch or epsilon <= 0.
StatusOr<std::vector<double>> HistogramLogDensities(
    const std::vector<double>& noisy_release,
    const std::vector<double>& others_histogram, double epsilon,
    double sensitivity = 1.0);

/// \brief The *offline* (smoothing) attack: after observing the whole
/// sequence r^1..r^T, infer l^t for an interior t using both correlation
/// directions — the operational counterpart of TPL (BPL uses the past,
/// FPL the future).
///
/// With g_t(v) = Pr(r^1..r^t | l^t=v) (backward filter over P^B, as in
/// BayesianAdversary) and h_t(v) = Pr(r^{t+1}..r^T | l^t=v) (forward
/// filter over P^F), the realized leakage about l^t is
///
///   Lambda_t = max_{v,v'} [log g_t(v) + log h_t(v)]
///            - min_{v,v'} [log g_t(v') + log h_t(v')]  <=  TPL_t.
class SmoothingAdversary {
 public:
  /// Both matrices must share the domain (validated).
  static StatusOr<SmoothingAdversary> Create(StochasticMatrix backward,
                                             StochasticMatrix forward);

  std::size_t domain_size() const { return backward_.size(); }

  /// Realized leakage per time point for a full observation sequence:
  /// \p log_densities[t][v] = log p(r^{t+1} | l^{t+1} = v) (0-indexed).
  /// Returns InvalidArgument on shape mismatches or an empty sequence.
  StatusOr<std::vector<double>> RealizedTplSeries(
      const std::vector<std::vector<double>>& log_densities) const;

 private:
  SmoothingAdversary(StochasticMatrix backward, StochasticMatrix forward)
      : backward_(std::move(backward)), forward_(std::move(forward)) {}

  StochasticMatrix backward_;
  StochasticMatrix forward_;
};

}  // namespace tcdp

#endif  // TCDP_CORE_ADVERSARY_SIM_H_
