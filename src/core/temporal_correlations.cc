#include "core/temporal_correlations.h"

namespace tcdp {

TemporalCorrelations TemporalCorrelations::BackwardOnly(
    StochasticMatrix backward) {
  TemporalCorrelations c;
  c.backward_ = std::move(backward);
  return c;
}

TemporalCorrelations TemporalCorrelations::ForwardOnly(
    StochasticMatrix forward) {
  TemporalCorrelations c;
  c.forward_ = std::move(forward);
  return c;
}

StatusOr<TemporalCorrelations> TemporalCorrelations::Both(
    StochasticMatrix backward, StochasticMatrix forward) {
  if (backward.size() != forward.size()) {
    return Status::InvalidArgument(
        "TemporalCorrelations: P^B is " + std::to_string(backward.size()) +
        "x" + std::to_string(backward.size()) + " but P^F is " +
        std::to_string(forward.size()) + "x" +
        std::to_string(forward.size()));
  }
  TemporalCorrelations c;
  c.backward_ = std::move(backward);
  c.forward_ = std::move(forward);
  return c;
}

std::size_t TemporalCorrelations::domain_size() const {
  if (has_backward()) return backward_->size();
  if (has_forward()) return forward_->size();
  return 0;
}

std::string TemporalCorrelations::ToString() const {
  if (empty()) return "TemporalCorrelations{none}";
  std::string out = "TemporalCorrelations{";
  if (has_backward()) out += "P^B:\n" + backward_->ToString();
  if (has_forward()) {
    if (has_backward()) out += "\n";
    out += "P^F:\n" + forward_->ToString();
  }
  out += "}";
  return out;
}

}  // namespace tcdp
