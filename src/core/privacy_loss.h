#ifndef TCDP_CORE_PRIVACY_LOSS_H_
#define TCDP_CORE_PRIVACY_LOSS_H_

/// \file
/// The paper's Algorithm 1: polynomial-time evaluation of the temporal
/// privacy-loss functions L^B / L^F of Equations (23)/(24).
///
/// For a transition matrix P and previous/next leakage alpha >= 0,
///
///   L(alpha) = max over ordered pairs of distinct rows (q, d) of
///              log [ (q_hat (e^alpha - 1) + 1) / (d_hat (e^alpha - 1) + 1) ]
///
/// where q_hat = sum_{j in S} q_j, d_hat = sum_{j in S} d_j for the
/// subset S selected by Theorem 4 / Corollary 2: start from
/// S = { j : q_j > d_j } and repeatedly drop every j whose ratio
/// q_j / d_j fails Inequality (21), until stable.
///
/// Numerics: all ratios are evaluated in log space so that alpha in the
/// hundreds (deep accumulation under strong correlations) cannot
/// overflow. The recurrence value satisfies 0 <= L(alpha) <= alpha
/// (Remark 1) — property-tested.

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// \brief log( c * (e^alpha - 1) + 1 ) evaluated stably for c in [0, 1]
/// and alpha >= 0 (helper exposed for tests and Theorem 5).
double LogLinearInExpAlpha(double c, double alpha);

/// \brief Outcome of the subset search for one ordered row pair.
struct PairLossResult {
  double loss = 0.0;             ///< log-ratio at the optimum (>= 0)
  double q_sum = 0.0;            ///< q_hat over the selected subset
  double d_sum = 0.0;            ///< d_hat over the selected subset
  std::vector<std::size_t> subset;  ///< selected coordinate indices
  std::size_t update_rounds = 0;    ///< removal passes performed
};

/// \brief Algorithm 1, Lines 3–11: optimal subset for one ordered pair.
///
/// Returns InvalidArgument when sizes mismatch or alpha is negative /
/// non-finite. alpha == 0 returns loss 0 with the initial Corollary-2
/// subset.
StatusOr<PairLossResult> ComputePairLoss(const std::vector<double>& q,
                                         const std::vector<double>& d,
                                         double alpha);

/// \brief Exact O(n log n) alternative to the Theorem 4 refinement loop.
///
/// Inequalities (21)/(22) say the optimal subset is a *threshold set* on
/// the per-coordinate ratio q_j/d_j: every kept coordinate's ratio
/// strictly exceeds the aggregate ratio, every dropped one's does not.
/// In the order sorted by q_j/d_j descending the optimum is therefore a
/// prefix; scanning all prefixes with cumulative sums finds it directly.
/// Agreement with ComputePairLoss (and with exhaustive subset
/// enumeration) is property-tested.
StatusOr<PairLossResult> ComputePairLossSorted(const std::vector<double>& q,
                                               const std::vector<double>& d,
                                               double alpha);

/// \brief Interface for a temporal loss function L(alpha): alpha >= 0 ->
/// [0, alpha]. Lets accountants share one evaluation backend — a direct
/// per-user TemporalLossFunction, the trivial zero loss, or a fleet-wide
/// memoizing cache (core/loss_cache.h).
class LossEvaluator {
 public:
  virtual ~LossEvaluator() = default;
  virtual double Evaluate(double alpha) const = 0;
};

/// How TemporalLossFunction solves each ordered row pair.
enum class PairLossMethod {
  kIterativeRefinement,  ///< the paper's Algorithm 1 removal loop
  kSortedPrefix,         ///< the O(n log n) threshold-set scan
};

/// Evaluation knobs for TemporalLossFunction. The default is the
/// O(n log n) threshold-set scan: it is property-tested equivalent to
/// the paper's iterative refinement (see LossBoundsTest) and
/// asymptotically cheaper per pair; kIterativeRefinement remains
/// available as the literal Algorithm-1 transcription.
struct LossEvalOptions {
  PairLossMethod method = PairLossMethod::kSortedPrefix;
};

/// \brief The full loss function for a transition matrix: the maximum
/// pair loss over all ordered pairs of distinct rows (Algorithm 1).
///
/// Construction copies the matrix; evaluation is O(n^4) worst case
/// (n^2 pairs x O(n^2) subset refinement), matching the paper's bound.
class TemporalLossFunction : public LossEvaluator {
 public:
  explicit TemporalLossFunction(StochasticMatrix transition);

  const StochasticMatrix& transition() const { return transition_; }
  std::size_t domain_size() const { return transition_.size(); }

  /// L(alpha) for alpha >= 0. alpha = 0 gives 0. Asserts on negative
  /// alpha in debug builds; clamps to 0 otherwise.
  double Evaluate(double alpha) const override;

  using EvalOptions = LossEvalOptions;

  /// Detailed evaluation: the loss plus the maximizing pair's aggregates
  /// (q_hat, d_hat) and row indices — the inputs Theorem 5 needs
  /// (Algorithm 2 Lines 3–4).
  struct Detail {
    double loss = 0.0;
    double q_sum = 0.0;
    double d_sum = 0.0;
    std::size_t row_q = 0;   ///< numerator row index
    std::size_t row_d = 0;   ///< denominator row index
    std::size_t pairs_examined = 0;  ///< ordered pairs considered
  };
  Detail EvaluateDetailed(double alpha, const EvalOptions& options = {}) const;

 private:
  StochasticMatrix transition_;
};

/// \brief Trivial loss function L(alpha) = 0 used when the adversary
/// lacks the corresponding correlation knowledge (BPL/FPL collapse to
/// PL0, Examples 2 and 3 case (iii)).
class ZeroLossFunction : public LossEvaluator {
 public:
  double Evaluate(double) const override { return 0.0; }
};

}  // namespace tcdp

#endif  // TCDP_CORE_PRIVACY_LOSS_H_
