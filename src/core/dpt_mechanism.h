#ifndef TCDP_CORE_DPT_MECHANISM_H_
#define TCDP_CORE_DPT_MECHANISM_H_

/// \file
/// End-to-end alpha-DP_T release: wraps the classical Laplace release
/// pipeline (src/release) with the paper's budget-allocation algorithms
/// and the TPL accountant, turning "any traditional DP mechanism" into
/// one bounded against adversary_T (paper Section V).

#include <cstddef>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/budget_allocation.h"
#include "core/temporal_correlations.h"
#include "core/tpl_accountant.h"
#include "dp/query.h"
#include "release/release_engine.h"
#include "release/timeseries.h"

namespace tcdp {

/// Budget-allocation strategy (paper Algorithms 2 and 3).
enum class DptStrategy {
  kUpperBound,      ///< Algorithm 2: horizon-free supremum bound
  kQuantified,      ///< Algorithm 3: exact alpha at each step, known T
  kGroupDpBaseline, ///< the alpha/T strawman from the introduction
};

/// \brief Releases a time series under an alpha-DP_T guarantee.
class DptMechanism {
 public:
  /// \p correlations is the worst-case (population-max) adversary
  /// knowledge the guarantee must hold against.
  static StatusOr<DptMechanism> Create(TemporalCorrelations correlations,
                                       double alpha, DptStrategy strategy,
                                       AllocationOptions options = {});

  double alpha() const { return alpha_; }
  DptStrategy strategy() const { return strategy_; }
  const BalancedBudget& budget() const { return allocator_->budget(); }

  /// Per-time-point budgets for \p horizon releases.
  StatusOr<std::vector<double>> Schedule(std::size_t horizon) const;

  /// Result of a private series release with its leakage audit.
  struct Result {
    std::vector<NoisyRelease> releases;
    std::vector<double> epsilons;
    std::vector<double> tpl_series;  ///< audited TPL_t per time point
    double max_tpl = 0.0;            ///< realized alpha of the sequence
    double expected_abs_noise = 0.0; ///< mean sensitivity/eps_t (Fig 8)
  };

  /// Releases the whole series with the planned schedule and audits the
  /// temporal privacy leakage with TplAccountant. The audit asserts the
  /// contract max_tpl <= alpha (+1e-6) for non-baseline strategies.
  StatusOr<Result> ReleaseSeries(const TimeSeriesDatabase& series,
                                 std::unique_ptr<Query> query,
                                 Rng* rng) const;

 private:
  DptMechanism(TemporalCorrelations correlations, double alpha,
               DptStrategy strategy, std::unique_ptr<BudgetAllocator> alloc)
      : correlations_(std::move(correlations)),
        alpha_(alpha),
        strategy_(strategy),
        allocator_(std::move(alloc)) {}

  TemporalCorrelations correlations_;
  double alpha_;
  DptStrategy strategy_;
  std::unique_ptr<BudgetAllocator> allocator_;
};

}  // namespace tcdp

#endif  // TCDP_CORE_DPT_MECHANISM_H_
