#include "core/budget_allocation.h"

#include <cmath>
#include <optional>
#include <string>

#include "common/math_util.h"
#include "core/privacy_loss.h"

namespace tcdp {
namespace {

/// eps(a) = a - L(a); identity when the loss function is absent.
double EpsilonInverse(const std::optional<TemporalLossFunction>& loss,
                      double a) {
  if (!loss.has_value()) return a;
  return a - loss->Evaluate(a);
}

}  // namespace

StatusOr<BudgetAllocator> BudgetAllocator::Create(
    TemporalCorrelations correlations, double alpha,
    AllocationOptions options) {
  if (!(alpha > 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument(
        "BudgetAllocator: alpha must be finite and > 0");
  }
  std::optional<TemporalLossFunction> lb, lf;
  if (correlations.has_backward()) lb.emplace(correlations.backward());
  if (correlations.has_forward()) lf.emplace(correlations.forward());

  BalancedBudget budget;
  budget.alpha = alpha;

  if (!lb.has_value() && !lf.has_value()) {
    // Classical DP: TPL_t = eps_t, so the full budget goes to each step.
    budget.alpha_b = alpha;
    budget.alpha_f = alpha;
    budget.eps_steady = alpha;
    return BudgetAllocator(std::move(correlations), alpha, budget);
  }

  // h(aB) = epsB(aB) - epsF(alpha - aB + epsB(aB)); root by bisection.
  const auto balance = [&](double a_b) {
    const double eps_b = EpsilonInverse(lb, a_b);
    const double a_f = alpha - a_b + eps_b;
    const double eps_f = EpsilonInverse(lf, a_f);
    return eps_b - eps_f;
  };

  double lo = alpha * 1e-12;
  double hi = alpha;
  double h_lo = balance(lo);
  double h_hi = balance(hi);
  if (h_hi < -options.tol) {
    // epsB stays below epsF even with the whole budget on BPL: the
    // backward correlation admits no positive budget (strongest
    // correlation, Theorem 5 case 4).
    return Status::FailedPrecondition(
        "BudgetAllocator: backward correlation too strong — the BPL "
        "supremum cannot be bounded by any positive per-step budget");
  }
  if (h_lo > options.tol) {
    return Status::Internal(
        "BudgetAllocator: balance function positive at aB ~ 0; "
        "unexpected for valid loss functions");
  }
  double root = hi;
  for (std::size_t it = 0; it < options.max_bisection_iters; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double h_mid = balance(mid);
    if (std::fabs(h_mid) <= options.tol || (hi - lo) <= options.tol) {
      root = mid;
      break;
    }
    if (h_mid > 0.0) {
      hi = mid;
    } else {
      lo = mid;
    }
    root = mid;
  }

  budget.alpha_b = root;
  budget.eps_steady = EpsilonInverse(lb, root);
  budget.alpha_f = alpha - root + budget.eps_steady;
  // The balance can "converge" to eps = 0 when one side's leakage cannot
  // be bounded by any positive budget (e.g. a strongest forward
  // correlation drives the root to 0). Treat budgets at the bisection
  // noise floor as infeasible.
  if (!(budget.eps_steady > std::max(options.tol * 10.0, alpha * 1e-9))) {
    return Status::FailedPrecondition(
        "BudgetAllocator: correlations too strong — balanced per-step "
        "budget is not positive");
  }
  return BudgetAllocator(std::move(correlations), alpha, budget);
}

std::vector<double> BudgetAllocator::UpperBoundSchedule(
    std::size_t horizon) const {
  return std::vector<double>(horizon, budget_.eps_steady);
}

StatusOr<std::vector<double>> BudgetAllocator::QuantifiedSchedule(
    std::size_t horizon) const {
  if (horizon == 0) {
    return Status::InvalidArgument("QuantifiedSchedule: horizon must be >= 1");
  }
  if (horizon == 1) return std::vector<double>{alpha_};
  std::vector<double> schedule(horizon, budget_.eps_steady);
  schedule.front() = budget_.alpha_b;
  schedule.back() = budget_.alpha_f;
  return schedule;
}

StatusOr<std::vector<double>> MinSchedule(
    const std::vector<std::vector<double>>& schedules) {
  if (schedules.empty()) {
    return Status::InvalidArgument("MinSchedule: no schedules");
  }
  const std::size_t horizon = schedules.front().size();
  if (horizon == 0) {
    return Status::InvalidArgument("MinSchedule: empty schedules");
  }
  std::vector<double> out = schedules.front();
  for (const auto& s : schedules) {
    if (s.size() != horizon) {
      return Status::InvalidArgument("MinSchedule: unequal lengths");
    }
    for (std::size_t t = 0; t < horizon; ++t) {
      out[t] = std::min(out[t], s[t]);
    }
  }
  return out;
}

std::vector<double> GroupDpSchedule(double alpha, std::size_t horizon) {
  if (horizon == 0) return {};
  return std::vector<double>(horizon,
                             alpha / static_cast<double>(horizon));
}

}  // namespace tcdp
