#include "core/dpt_mechanism.h"

#include <cmath>

namespace tcdp {

StatusOr<DptMechanism> DptMechanism::Create(TemporalCorrelations correlations,
                                            double alpha,
                                            DptStrategy strategy,
                                            AllocationOptions options) {
  TCDP_ASSIGN_OR_RETURN(
      BudgetAllocator alloc,
      BudgetAllocator::Create(correlations, alpha, options));
  return DptMechanism(std::move(correlations), alpha, strategy,
                      std::make_unique<BudgetAllocator>(std::move(alloc)));
}

StatusOr<std::vector<double>> DptMechanism::Schedule(
    std::size_t horizon) const {
  if (horizon == 0) {
    return Status::InvalidArgument("Schedule: horizon must be >= 1");
  }
  switch (strategy_) {
    case DptStrategy::kUpperBound:
      return allocator_->UpperBoundSchedule(horizon);
    case DptStrategy::kQuantified:
      return allocator_->QuantifiedSchedule(horizon);
    case DptStrategy::kGroupDpBaseline:
      return GroupDpSchedule(alpha_, horizon);
  }
  return Status::Internal("Schedule: unknown strategy");
}

StatusOr<DptMechanism::Result> DptMechanism::ReleaseSeries(
    const TimeSeriesDatabase& series, std::unique_ptr<Query> query,
    Rng* rng) const {
  if (series.horizon() == 0) {
    return Status::InvalidArgument("ReleaseSeries: empty series");
  }
  TCDP_ASSIGN_OR_RETURN(std::vector<double> schedule,
                        Schedule(series.horizon()));
  const double sensitivity = query->Sensitivity();

  ReleaseEngine engine(std::move(query), rng);
  TCDP_ASSIGN_OR_RETURN(std::vector<NoisyRelease> releases,
                        engine.ReleaseSeries(series, schedule));

  TplAccountant accountant(correlations_);
  for (double eps : schedule) {
    TCDP_RETURN_IF_ERROR(accountant.RecordRelease(eps));
  }

  Result result;
  result.releases = std::move(releases);
  result.epsilons = std::move(schedule);
  result.tpl_series = accountant.TplSeries();
  result.max_tpl = accountant.MaxTpl();
  result.expected_abs_noise = ExpectedAbsNoise(result.epsilons, sensitivity);

  if (strategy_ != DptStrategy::kGroupDpBaseline &&
      result.max_tpl > alpha_ + 1e-6) {
    return Status::Internal(
        "ReleaseSeries: audited TPL " + std::to_string(result.max_tpl) +
        " exceeds contracted alpha " + std::to_string(alpha_));
  }
  return result;
}

}  // namespace tcdp
