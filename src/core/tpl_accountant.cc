#include "core/tpl_accountant.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "core/loss_cache.h"
#include "markov/io.h"

namespace tcdp {

TplAccountant::TplAccountant(TemporalCorrelations correlations)
    : correlations_(std::move(correlations)) {
  if (correlations_.has_backward()) {
    backward_loss_ =
        std::make_shared<TemporalLossFunction>(correlations_.backward());
  }
  if (correlations_.has_forward()) {
    forward_loss_ =
        std::make_shared<TemporalLossFunction>(correlations_.forward());
  }
}

TplAccountant::TplAccountant(TemporalCorrelations correlations,
                             std::shared_ptr<const LossEvaluator> backward_loss,
                             std::shared_ptr<const LossEvaluator> forward_loss,
                             double cache_alpha_resolution)
    : correlations_(std::move(correlations)),
      backward_loss_(std::move(backward_loss)),
      forward_loss_(std::move(forward_loss)),
      cache_alpha_resolution_(cache_alpha_resolution) {}

void TplAccountant::AppendStep(double epsilon) {
  double bpl = epsilon;
  if (!bpl_.empty() && backward_loss_ != nullptr) {
    bpl += backward_loss_->Evaluate(bpl_.back());
  }
  epsilons_.push_back(epsilon);
  bpl_.push_back(bpl);
  fpl_dirty_ = true;
}

Status TplAccountant::RecordRelease(double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "TplAccountant: epsilon must be finite and > 0");
  }
  AppendStep(epsilon);
  return Status::OK();
}

Status TplAccountant::RecordSkip() {
  AppendStep(0.0);
  return Status::OK();
}

Status TplAccountant::RecordUniformReleases(double epsilon,
                                            std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    TCDP_RETURN_IF_ERROR(RecordRelease(epsilon));
  }
  return Status::OK();
}

void TplAccountant::EnsureFplCache() const {
  if (!fpl_dirty_) return;
  const std::size_t t_len = epsilons_.size();
  fpl_.assign(t_len, 0.0);
  for (std::size_t idx = t_len; idx-- > 0;) {
    double fpl = epsilons_[idx];
    if (idx + 1 < t_len && forward_loss_ != nullptr) {
      fpl += forward_loss_->Evaluate(fpl_[idx + 1]);
    }
    fpl_[idx] = fpl;
  }
  fpl_dirty_ = false;
}

StatusOr<double> TplAccountant::Bpl(std::size_t t) const {
  if (t < 1 || t > horizon()) {
    return Status::OutOfRange("Bpl: t outside [1, horizon]");
  }
  return bpl_[t - 1];
}

StatusOr<double> TplAccountant::Fpl(std::size_t t) const {
  if (t < 1 || t > horizon()) {
    return Status::OutOfRange("Fpl: t outside [1, horizon]");
  }
  EnsureFplCache();
  return fpl_[t - 1];
}

StatusOr<double> TplAccountant::Tpl(std::size_t t) const {
  TCDP_ASSIGN_OR_RETURN(double bpl, Bpl(t));
  TCDP_ASSIGN_OR_RETURN(double fpl, Fpl(t));
  return bpl + fpl - epsilons_[t - 1];
}

std::vector<double> TplAccountant::BplSeries() const { return bpl_; }

std::vector<double> TplAccountant::FplSeries() const {
  EnsureFplCache();
  return fpl_;
}

std::vector<double> TplAccountant::TplSeries() const {
  EnsureFplCache();
  std::vector<double> out(horizon());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = bpl_[i] + fpl_[i] - epsilons_[i];
  }
  return out;
}

double TplAccountant::MaxTpl() const {
  double best = 0.0;
  for (double v : TplSeries()) best = std::max(best, v);
  return best;
}

StatusOr<double> TplAccountant::SequenceTpl(std::size_t t,
                                            std::size_t j) const {
  if (t < 1 || t + j > horizon()) {
    return Status::OutOfRange("SequenceTpl: [t, t+j] outside horizon");
  }
  if (j == 0) return Tpl(t);
  EnsureFplCache();
  const double bpl_t = bpl_[t - 1];
  const double fpl_tj = fpl_[t + j - 1];
  double middle = 0.0;
  for (std::size_t k = 1; k + 1 <= j; ++k) middle += epsilons_[t + k - 1];
  return bpl_t + fpl_tj + middle;
}

double TplAccountant::UserLevelTpl() const {
  return std::accumulate(epsilons_.begin(), epsilons_.end(), 0.0);
}

StatusOr<double> TplAccountant::MaxWindowTpl(std::size_t w) const {
  if (w == 0) {
    return Status::InvalidArgument("MaxWindowTpl: w must be >= 1");
  }
  double best = 0.0;
  for (std::size_t t = 1; t <= horizon(); ++t) {
    const std::size_t j = std::min(w - 1, horizon() - t);
    TCDP_ASSIGN_OR_RETURN(double v, SequenceTpl(t, j));
    best = std::max(best, v);
  }
  return best;
}

std::string SerializeAccountantImage(const AccountantImage& image) {
  const TemporalCorrelations& corr = image.correlations;
  std::ostringstream out;
  out << "tcdp-accountant-v2\n";
  out.precision(17);
  out << "quantization " << image.cache_alpha_resolution << "\n";
  out << "backward " << (corr.has_backward() ? corr.backward().size() : 0)
      << "\n";
  if (corr.has_backward()) {
    out << SerializeStochasticMatrix(corr.backward());
  }
  out << "forward " << (corr.has_forward() ? corr.forward().size() : 0)
      << "\n";
  if (corr.has_forward()) {
    out << SerializeStochasticMatrix(corr.forward());
  }
  out << "epsilons " << image.epsilons.size() << "\n";
  out.precision(17);
  for (double e : image.epsilons) out << e << "\n";
  return out.str();
}

StatusOr<AccountantImage> ParseAccountantImage(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) ||
      (header != "tcdp-accountant-v1" && header != "tcdp-accountant-v2")) {
    return Status::InvalidArgument(
        "ParseAccountantImage: bad header (expected tcdp-accountant-v1 or "
        "tcdp-accountant-v2)");
  }
  AccountantImage image;
  // v1 predates cached accounting: always restores direct evaluators.
  if (header == "tcdp-accountant-v2") {
    std::string word;
    if (!(in >> word >> image.cache_alpha_resolution) ||
        word != "quantization" ||
        !std::isfinite(image.cache_alpha_resolution)) {
      return Status::InvalidArgument(
          "ParseAccountantImage: expected 'quantization <step>'");
    }
    in.ignore();  // trailing newline
  }
  using OptionalMatrix = std::optional<StochasticMatrix>;
  auto read_matrix =
      [&](const std::string& keyword) -> StatusOr<OptionalMatrix> {
    std::string word;
    std::size_t n = 0;
    if (!(in >> word >> n) || word != keyword) {
      return Status::InvalidArgument(
          "ParseAccountantImage: expected '" + keyword + " <n>'");
    }
    // A corrupted count cannot exceed the bytes available to hold the
    // rows (>= 2 chars per row): bound it before any allocation.
    if (n > text.size()) {
      return Status::InvalidArgument(
          "ParseAccountantImage: declared " + keyword + " size " +
          std::to_string(n) + " exceeds the input");
    }
    in.ignore();  // trailing newline
    if (n == 0) return std::optional<StochasticMatrix>{};
    std::string block;
    std::string line;
    for (std::size_t r = 0; r < n; ++r) {
      if (!std::getline(in, line)) {
        return Status::InvalidArgument(
            "ParseAccountantImage: truncated " + keyword + " matrix");
      }
      block += line;
      block += '\n';
    }
    // Exact parse: blobs are machine-written, and a forgiving
    // renormalization would shift entries by ULPs — the restored
    // series would drift off the live one.
    TCDP_ASSIGN_OR_RETURN(StochasticMatrix m,
                          ParseStochasticMatrixExact(block));
    if (m.size() != n) {
      return Status::InvalidArgument(
          "ParseAccountantImage: " + keyword + " matrix size " +
          std::to_string(m.size()) + " != declared " + std::to_string(n));
    }
    return std::optional<StochasticMatrix>{std::move(m)};
  };

  TCDP_ASSIGN_OR_RETURN(auto backward, read_matrix("backward"));
  TCDP_ASSIGN_OR_RETURN(auto forward, read_matrix("forward"));

  std::string word;
  std::size_t count = 0;
  if (!(in >> word >> count) || word != "epsilons") {
    return Status::InvalidArgument(
        "ParseAccountantImage: expected 'epsilons <count>'");
  }
  // Same bound as the matrices: a count that cannot fit in the input
  // (every entry needs at least "0\n") is corruption, not data. This
  // keeps a flipped digit from requesting an exabyte vector.
  if (count > text.size()) {
    return Status::InvalidArgument(
        "ParseAccountantImage: declared epsilon count " +
        std::to_string(count) + " exceeds the input");
  }
  image.epsilons.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(in >> image.epsilons[i])) {
      return Status::InvalidArgument(
          "ParseAccountantImage: truncated epsilon list");
    }
    if (!std::isfinite(image.epsilons[i]) || image.epsilons[i] < 0.0) {
      return Status::InvalidArgument(
          "ParseAccountantImage: epsilon " + std::to_string(i) +
          " is not finite and >= 0");
    }
  }

  if (backward.has_value() && forward.has_value()) {
    TCDP_ASSIGN_OR_RETURN(
        image.correlations,
        TemporalCorrelations::Both(std::move(*backward), std::move(*forward)));
  } else if (backward.has_value()) {
    image.correlations =
        TemporalCorrelations::BackwardOnly(std::move(*backward));
  } else if (forward.has_value()) {
    image.correlations = TemporalCorrelations::ForwardOnly(std::move(*forward));
  }
  return image;
}

std::string TplAccountant::Serialize() const {
  AccountantImage image;
  image.correlations = correlations_;
  image.cache_alpha_resolution = cache_alpha_resolution_;
  image.epsilons = epsilons_;
  return SerializeAccountantImage(image);
}

StatusOr<TplAccountant> TplAccountant::Deserialize(const std::string& text) {
  TCDP_ASSIGN_OR_RETURN(AccountantImage image, ParseAccountantImage(text));
  TemporalCorrelations corr = image.correlations;
  auto make_accountant = [&]() -> TplAccountant {
    if (image.cache_alpha_resolution < 0.0) {
      return TplAccountant(std::move(corr));
    }
    // Rebuild an identically quantized cache; the interned evaluators
    // keep its internals alive past this scope, and replaying below
    // reproduces the live series bitwise.
    TemporalLossCache::Options options;
    options.alpha_resolution = image.cache_alpha_resolution;
    TemporalLossCache cache(options);
    std::shared_ptr<const LossEvaluator> b;
    std::shared_ptr<const LossEvaluator> f;
    if (corr.has_backward()) b = cache.Intern(corr.backward());
    if (corr.has_forward()) f = cache.Intern(corr.forward());
    return TplAccountant(std::move(corr), std::move(b), std::move(f),
                         image.cache_alpha_resolution);
  };
  TplAccountant accountant = make_accountant();
  for (double e : image.epsilons) {
    if (e == 0.0) {
      TCDP_RETURN_IF_ERROR(accountant.RecordSkip());
    } else {
      TCDP_RETURN_IF_ERROR(accountant.RecordRelease(e));
    }
  }
  return accountant;
}

std::size_t PopulationAccountant::AddUser(std::string name,
                                          TemporalCorrelations correlations) {
  users_.push_back(UserEntry{std::move(name),
                             TplAccountant(std::move(correlations))});
  return users_.size() - 1;
}

Status PopulationAccountant::RecordRelease(double epsilon) {
  for (auto& u : users_) {
    TCDP_RETURN_IF_ERROR(u.accountant.RecordRelease(epsilon));
  }
  return Status::OK();
}

Status PopulationAccountant::RecordRelease(
    double epsilon, const std::vector<std::size_t>& participants) {
  // Validate before mutating any accountant: a mid-loop failure would
  // leave users at inconsistent horizons.
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "PopulationAccountant: epsilon must be finite and > 0");
  }
  std::vector<bool> in_release(users_.size(), false);
  for (std::size_t index : participants) {
    if (index >= users_.size()) {
      return Status::InvalidArgument(
          "PopulationAccountant: participant index " +
          std::to_string(index) + " out of range");
    }
    in_release[index] = true;
  }
  for (std::size_t i = 0; i < users_.size(); ++i) {
    if (in_release[i]) {
      TCDP_RETURN_IF_ERROR(users_[i].accountant.RecordRelease(epsilon));
    } else {
      TCDP_RETURN_IF_ERROR(users_[i].accountant.RecordSkip());
    }
  }
  return Status::OK();
}

std::size_t PopulationAccountant::horizon() const {
  return users_.empty() ? 0 : users_.front().accountant.horizon();
}

StatusOr<double> PopulationAccountant::MaxTplAt(std::size_t t) const {
  if (users_.empty()) {
    return Status::FailedPrecondition("MaxTplAt: no users registered");
  }
  double best = 0.0;
  for (const auto& u : users_) {
    TCDP_ASSIGN_OR_RETURN(double v, u.accountant.Tpl(t));
    best = std::max(best, v);
  }
  return best;
}

double PopulationAccountant::OverallAlpha() const {
  double best = 0.0;
  for (const auto& u : users_) best = std::max(best, u.accountant.MaxTpl());
  return best;
}

}  // namespace tcdp
