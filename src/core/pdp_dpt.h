#ifndef TCDP_CORE_PDP_DPT_H_
#define TCDP_CORE_PDP_DPT_H_

/// \file
/// Personalized alpha-DP_T (the paper's Section III-D): each user i gets
/// their own temporal-leakage target alpha_i under their own
/// correlations; the release pipeline is the PDP Sample mechanism whose
/// per-user budgets follow each user's Algorithm 2/3 schedule.
///
/// At every time point t the planner sets the inner mechanism's budget to
/// the *maximum* per-user epsilon (the Sample-mechanism threshold) and
/// samples the other users down to their personalized epsilons — so no
/// user is over-protected the way the population-min schedule of
/// MinSchedule() would.

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/budget_allocation.h"
#include "core/dpt_mechanism.h"
#include "core/temporal_correlations.h"
#include "core/tpl_accountant.h"
#include "dp/personalized.h"
#include "release/timeseries.h"

namespace tcdp {

/// \brief One user's personalized temporal-privacy requirement.
struct PdpUserSpec {
  std::string name;
  TemporalCorrelations correlations;
  double alpha = 1.0;                  ///< this user's TPL target
  DptStrategy strategy = DptStrategy::kQuantified;
};

/// \brief Plans per-user budget schedules and drives PDP releases with a
/// per-user alpha_i-DP_T guarantee.
class PersonalizedDptPlanner {
 public:
  /// Solves each user's allocator. Fails if any user's correlations are
  /// too strong to bound (propagates BudgetAllocator errors).
  static StatusOr<PersonalizedDptPlanner> Create(
      std::vector<PdpUserSpec> users, AllocationOptions options = {});

  std::size_t num_users() const { return users_.size(); }
  const PdpUserSpec& user(std::size_t i) const { return users_[i]; }

  /// Per-user budget schedule for a horizon (users_ x horizon).
  StatusOr<std::vector<std::vector<double>>> Schedules(
      std::size_t horizon) const;

  /// The inner mechanism's per-time budget: max over users.
  StatusOr<std::vector<double>> ThresholdSchedule(std::size_t horizon) const;

  /// Result of a personalized private series release.
  struct Result {
    std::vector<PdpRelease> releases;
    std::vector<std::vector<double>> per_user_epsilons;  ///< [user][t]
    std::vector<double> per_user_max_tpl;                ///< audited
    std::vector<double> thresholds;                      ///< [t]
  };

  /// Releases the series via the PDP Sample mechanism and audits every
  /// user's TPL against their alpha. Requires series.num_users() ==
  /// num_users().
  StatusOr<Result> ReleaseSeries(const TimeSeriesDatabase& series,
                                 const Query& query, Rng* rng) const;

 private:
  PersonalizedDptPlanner(std::vector<PdpUserSpec> users,
                         std::vector<BudgetAllocator> allocators)
      : users_(std::move(users)), allocators_(std::move(allocators)) {}

  std::vector<PdpUserSpec> users_;
  std::vector<BudgetAllocator> allocators_;
};

}  // namespace tcdp

#endif  // TCDP_CORE_PDP_DPT_H_
