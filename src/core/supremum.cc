#include "core/supremum.h"

#include <cmath>
#include <string>

#include "common/math_util.h"

namespace tcdp {

StatusOr<SupremumResult> SupremumForPair(double q_sum, double d_sum,
                                         double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "SupremumForPair: epsilon must be finite and > 0");
  }
  if (q_sum < 0.0 || q_sum > 1.0 + 1e-9 || d_sum < 0.0 ||
      d_sum > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        "SupremumForPair: aggregates must lie in [0, 1]");
  }
  SupremumResult result;
  result.q_sum = q_sum;
  result.d_sum = d_sum;

  if (q_sum == 0.0 && d_sum == 0.0) {
    // No effective correlation: leakage stays at epsilon.
    result.exists = true;
    result.value = epsilon;
    return result;
  }
  if (d_sum > 0.0 && (epsilon > 500.0 || q_sum * std::exp(epsilon) > 1e300)) {
    // Asymptotic root for huge budgets: x ~ (q/d) e^eps, avoiding
    // overflow in the quadratic. (Unreachable for realistic budgets.)
    result.exists = true;
    result.value = epsilon + std::log(q_sum / d_sum);
    return result;
  }
  const double ee = std::exp(epsilon);
  if (d_sum > 0.0) {
    // Positive root of d x^2 + (1 - d - q e^eps) x - e^eps (1 - q) = 0.
    const double b = d_sum + q_sum * ee - 1.0;  // = -(1 - d - q e^eps)
    const double disc = 4.0 * d_sum * ee * (1.0 - q_sum) + b * b;
    const double x = (std::sqrt(disc) + b) / (2.0 * d_sum);
    result.exists = true;
    result.value = std::log(x);
    return result;
  }
  // d_sum == 0.
  if (q_sum < 1.0 && q_sum * ee < 1.0) {
    const double x = (1.0 - q_sum) * ee / (1.0 - q_sum * ee);
    result.exists = true;
    result.value = std::log(x);
    return result;
  }
  result.exists = false;
  result.value = kInf;
  return result;
}

FixpointResult IterateLeakageToFixpoint(const TemporalLossFunction& loss,
                                        double epsilon,
                                        std::size_t max_iters, double tol,
                                        double divergence_cap) {
  FixpointResult result;
  double alpha = epsilon;
  for (std::size_t it = 0; it < max_iters; ++it) {
    const double next = loss.Evaluate(alpha) + epsilon;
    ++result.steps;
    if (std::fabs(next - alpha) <= tol * std::max(1.0, std::fabs(alpha))) {
      result.converged = true;
      result.value = next;
      return result;
    }
    alpha = next;
    if (alpha > divergence_cap) {
      result.converged = false;
      result.value = alpha;
      return result;
    }
  }
  result.converged = false;
  result.value = alpha;
  return result;
}

StatusOr<SupremumResult> ComputeSupremum(const TemporalLossFunction& loss,
                                         double epsilon,
                                         std::size_t max_iters, double tol) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "ComputeSupremum: epsilon must be finite and > 0");
  }
  const FixpointResult fix =
      IterateLeakageToFixpoint(loss, epsilon, max_iters, tol);
  if (!fix.converged) {
    // Diverged (or stalled at the iteration cap while still growing).
    // Confirm with Theorem 5 at the current pair.
    const auto detail = loss.EvaluateDetailed(fix.value);
    TCDP_ASSIGN_OR_RETURN(
        SupremumResult closed,
        SupremumForPair(detail.q_sum, detail.d_sum, epsilon));
    if (closed.exists && fix.steps < max_iters) {
      // The iterate passed the divergence cap yet the closed form is
      // finite: numerically inconsistent — report non-existence with the
      // evidence value (conservative).
      closed.exists = false;
      closed.value = kInf;
    }
    return closed;
  }
  // Converged: certify via the closed form for the fixpoint's pair.
  const auto detail = loss.EvaluateDetailed(fix.value);
  TCDP_ASSIGN_OR_RETURN(SupremumResult closed,
                        SupremumForPair(detail.q_sum, detail.d_sum, epsilon));
  if (!closed.exists) {
    return Status::Internal(
        "ComputeSupremum: fixpoint converged to " +
        std::to_string(fix.value) +
        " but Theorem 5 reports non-existence for its pair");
  }
  // Prefer the closed form (machine-precision root) over the iterate.
  return closed;
}

StatusOr<double> EpsilonForSupremum(const TemporalLossFunction& loss,
                                    double alpha) {
  if (!(alpha > 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument(
        "EpsilonForSupremum: alpha must be finite and > 0");
  }
  const double l = loss.Evaluate(alpha);
  const double epsilon = alpha - l;
  if (!(epsilon > 0.0)) {
    return Status::FailedPrecondition(
        "EpsilonForSupremum: L(alpha) >= alpha (strongest correlation); "
        "no positive per-step budget keeps the supremum at alpha");
  }
  return epsilon;
}

}  // namespace tcdp
