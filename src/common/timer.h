#ifndef TCDP_COMMON_TIMER_H_
#define TCDP_COMMON_TIMER_H_

/// \file
/// Monotonic wall-clock timer for coarse measurements outside the
/// google-benchmark harness (e.g. time-guarded baseline sweeps).

#include <chrono>

namespace tcdp {

/// \brief Steady-clock stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tcdp

#endif  // TCDP_COMMON_TIMER_H_
