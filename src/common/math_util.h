#ifndef TCDP_COMMON_MATH_UTIL_H_
#define TCDP_COMMON_MATH_UTIL_H_

/// \file
/// Small numeric helpers shared across the library: tolerant comparisons,
/// guarded logs/exponentials, and probability-vector utilities.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace tcdp {

/// Default absolute tolerance for floating-point comparisons in this
/// library. Privacy-loss recurrences are contractions, so errors do not
/// amplify; 1e-9 is comfortably below every quantity we compare.
inline constexpr double kDefaultTol = 1e-9;

/// Positive infinity shorthand.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// \brief True iff |a - b| <= tol (absolute tolerance).
inline bool ApproxEqual(double a, double b, double tol = kDefaultTol) {
  return std::fabs(a - b) <= tol;
}

/// \brief True iff a and b agree to within max(|a|,|b|,1) * tol.
inline bool RelApproxEqual(double a, double b, double tol = kDefaultTol) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= scale * tol;
}

/// \brief Clamps \p x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// \brief exp(x) - 1 computed stably for small x.
inline double ExpM1(double x) { return std::expm1(x); }

/// \brief log(1 + x) computed stably for small x.
inline double Log1P(double x) { return std::log1p(x); }

/// \brief Natural log that maps non-positive inputs to -inf instead of NaN.
inline double SafeLog(double x) {
  if (x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return -kInf;
  return std::log(x);
}

/// \brief True iff \p x is a probability (in [0,1] within \p tol slack).
inline bool IsProbability(double x, double tol = kDefaultTol) {
  return x >= -tol && x <= 1.0 + tol && std::isfinite(x);
}

/// \brief True iff \p v sums to 1 within \p tol and every entry is a
/// probability.
bool IsProbabilityVector(const std::vector<double>& v,
                         double tol = 1e-6);

/// \brief Normalizes \p v in place to sum to 1. Returns false (and leaves
/// \p v untouched) if the sum is not strictly positive and finite.
bool NormalizeInPlace(std::vector<double>* v);

/// \brief L1 distance between two equally sized vectors.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// \brief log(sum_i exp(x_i)) computed stably. Empty input -> -inf.
double LogSumExp(const std::vector<double>& x);

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& v);

/// \brief Population standard deviation; 0 for size < 2.
double StdDev(const std::vector<double>& v);

}  // namespace tcdp

#endif  // TCDP_COMMON_MATH_UTIL_H_
