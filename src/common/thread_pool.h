#ifndef TCDP_COMMON_THREAD_POOL_H_
#define TCDP_COMMON_THREAD_POOL_H_

/// \file
/// A small work-stealing thread pool for the fleet-scale release paths.
///
/// Each worker owns a deque: it pops its own tasks LIFO (cache-warm) and
/// steals from other workers FIFO (oldest first, the classic
/// Blumofe–Leiserson discipline). Submission round-robins across worker
/// queues so a burst from one producer still spreads over the fleet.
///
/// The pool is intentionally minimal: no futures, no priorities, no
/// nested-parallelism support. `ParallelFor` is the only structured
/// primitive the release engine needs, and it must not be called from
/// inside a pool task (it blocks the caller until the range completes).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tcdp {

class ThreadPool {
 public:
  /// \p num_threads == 0 picks std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues \p task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs body(i) for every i in [begin, end), partitioned into chunks of
  /// about \p grain indices (0 = pick automatically). Blocks until the
  /// whole range is done. Must not be called from a pool thread.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body,
                   std::size_t grain = 0);

  /// Range-chunked variant: body(lo, hi) receives a whole contiguous
  /// slice [lo, hi) instead of one index at a time, so callers can run a
  /// tight inner loop over column slices (the SoA accountant-bank update
  /// path) without a std::function call per element. Chunk boundaries
  /// are deterministic for a given (range, grain, num_threads); only the
  /// assignment of chunks to workers varies. Blocks until the whole
  /// range is done; must not be called from a pool thread.
  void ParallelForRange(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t grain = 0);

  struct Stats {
    std::uint64_t tasks_executed = 0;
    std::uint64_t tasks_stolen = 0;  ///< subset of executed taken by theft
  };
  Stats stats() const;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  /// Pops one task (own queue back, then steal others' front) and runs
  /// it. Returns false when every queue was empty.
  bool RunOneTask(std::size_t self);
  void WorkerLoop(std::size_t index);
  void FinishTask();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;  // workers sleep here when drained
  std::mutex done_mu_;
  std::condition_variable done_cv_;  // Wait() sleeps here

  // Signed: a worker may pop a task in the window between Submit's push
  // and its counter increment, transiently driving the count to -1.
  std::atomic<std::ptrdiff_t> queued_{0};  // tasks sitting in queues
  std::atomic<std::size_t> in_flight_{0};  // queued + currently running
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
};

}  // namespace tcdp

#endif  // TCDP_COMMON_THREAD_POOL_H_
