#ifndef TCDP_COMMON_PACKED_MASK_H_
#define TCDP_COMMON_PACKED_MASK_H_

/// \file
/// Participation bitmask rows for the accountant bank, write-ahead log,
/// and snapshots.
///
/// A release's participation row is one bit per enrolled user. Fleets
/// are large and sparse schedules repeat long stretches of identical
/// words (all-zeros between coherent cohort blocks, all-ones in dense
/// phases), so rows beyond a small threshold are stored with
/// **word-level run-length encoding**: consecutive equal 64-bit words
/// collapse into (run length, word) pairs. Short rows keep the dense
/// path — at a handful of words RLE bookkeeping costs more than it
/// saves and the hot per-bit lookup stays a single index.
///
/// Three states:
///   * kAll   — "every user enrolled at write time participated"
///              (the bank's historical empty-row convention);
///   * kDense — raw word vector;
///   * kRle   — runs, with cumulative word offsets for O(log runs)
///              random-access bit().
///
/// Bit semantics match the bank: bit(i) is true for kAll, and false for
/// any i at or past the row's word width (the user was not enrolled
/// when the row was written).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcdp {

class PackedMask {
 public:
  /// "Everyone enrolled participated" (width-less).
  PackedMask() = default;
  static PackedMask All() { return PackedMask(); }

  /// Packs a dense word vector, choosing RLE automatically when it is
  /// strictly smaller. An empty vector is a zero-width explicit mask
  /// (nobody participates), NOT kAll.
  static PackedMask FromWords(std::vector<std::uint64_t> words);

  /// FromWords without taking ownership: packs words[0, n) and leaves
  /// the caller's buffer untouched, so reusable scratch buffers (the
  /// bank's per-release mask staging) never churn. Copies only when the
  /// dense representation wins.
  static PackedMask FromWordSpan(const std::uint64_t* words, std::size_t n);

  bool is_all() const { return kind_ == Kind::kAll; }
  bool is_rle() const { return kind_ == Kind::kRle; }
  /// Width in 64-bit words (0 for kAll).
  std::size_t num_words() const { return num_words_; }

  /// Membership of user \p i under the bank's conventions.
  bool bit(std::size_t i) const;

  /// The dense representation (kAll expands to \p num_words ones-words).
  std::vector<std::uint64_t> ToWords(std::size_t num_words) const;

  /// Heap bytes held by this row (the compression metric).
  std::size_t MemoryBytes() const;

  /// \name Durable wire format (varint-framed, see binary_io.h).
  /// @{
  void EncodeTo(std::string* dst) const;
  /// Consumes one encoded mask from \p cursor. Rejects unknown kinds,
  /// zero-length runs, run overflow past the declared width, and
  /// truncation — corrupted log/snapshot bytes surface as Status.
  static StatusOr<PackedMask> Decode(class BinaryCursor& cursor);
  /// @}

  bool operator==(const PackedMask& other) const;

 private:
  enum class Kind : std::uint8_t { kAll = 0, kDense = 1, kRle = 2 };

  Kind kind_ = Kind::kAll;
  std::size_t num_words_ = 0;
  std::vector<std::uint64_t> dense_;
  /// run_end_[r] = total words covered by runs [0, r]; strictly
  /// increasing, back() == num_words_.
  std::vector<std::uint64_t> run_end_;
  std::vector<std::uint64_t> run_value_;
};

}  // namespace tcdp

#endif  // TCDP_COMMON_PACKED_MASK_H_
