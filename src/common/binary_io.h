#ifndef TCDP_COMMON_BINARY_IO_H_
#define TCDP_COMMON_BINARY_IO_H_

/// \file
/// Little-endian binary primitives shared by the durable-state formats
/// (write-ahead event log, snapshots, packed participation masks).
///
/// Writers append to a std::string buffer; readers consume a
/// BinaryCursor and return Status on truncation or malformed varints
/// instead of reading past the end — every durable-format parser in the
/// repo is built on these so "corrupted input never crashes" only has
/// to be proven here once.
///
/// Doubles travel as their raw IEEE-754 bit pattern (fixed 64-bit),
/// which is what makes replayed accounting *bitwise* reproducible; a
/// decimal round-trip would be close, not identical.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace tcdp {

/// \name Appending writers.
/// @{
void PutFixed32(std::string* dst, std::uint32_t value);
void PutFixed64(std::string* dst, std::uint64_t value);
/// LEB128: 1 byte for values < 128, at most 10 bytes for 64-bit.
void PutVarint64(std::string* dst, std::uint64_t value);
/// The exact bit pattern of \p value (NaNs and signed zeros included).
void PutDoubleBits(std::string* dst, double value);
/// Varint length prefix followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, const std::string& value);
/// @}

/// \brief Bounded forward reader over a byte range. Every Read* returns
/// OutOfRange on truncation; the cursor never advances past `end`.
class BinaryCursor {
 public:
  BinaryCursor(const char* data, std::size_t size)
      : pos_(data), end_(data + size) {}
  explicit BinaryCursor(const std::string& data)
      : BinaryCursor(data.data(), data.size()) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - pos_); }
  bool empty() const { return pos_ == end_; }

  Status ReadByte(std::uint8_t* value);
  Status ReadFixed32(std::uint32_t* value);
  Status ReadFixed64(std::uint64_t* value);
  /// InvalidArgument on a varint running past 10 bytes or the range end.
  Status ReadVarint64(std::uint64_t* value);
  Status ReadDoubleBits(double* value);
  /// Reads a varint length then that many raw bytes.
  Status ReadLengthPrefixed(std::string* value);

 private:
  const char* pos_;
  const char* end_;
};

/// \brief CRC-32 (ISO-HDLC, polynomial 0xEDB88320) of \p size bytes,
/// seedable for incremental computation over discontiguous spans.
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace tcdp

#endif  // TCDP_COMMON_BINARY_IO_H_
