#include "common/random.h"

#include <cassert>
#include <cmath>

namespace tcdp {

double Rng::Uniform() {
  // 53-bit mantissa resolution, in [0, 1).
  return std::generate_canonical<double, 53>(engine_);
}

double Rng::Uniform(double lo, double hi) {
  assert(lo < hi);
  return lo + (hi - lo) * Uniform();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Laplace(double scale) {
  assert(scale > 0.0);
  // Inverse-CDF sampling: u ~ Uniform(-1/2, 1/2),
  // x = -b * sgn(u) * ln(1 - 2|u|).
  const double u = Uniform() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log1p(-2.0 * std::fabs(u));
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  // -ln(1-u)/rate; 1-u in (0,1] so the log is finite.
  return -std::log1p(-Uniform()) / rate;
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

StatusOr<std::size_t> Rng::Discrete(const std::vector<double>& probs) {
  if (probs.empty()) {
    return Status::InvalidArgument("Discrete: empty probability vector");
  }
  double total = 0.0;
  for (double p : probs) {
    if (p < 0.0 || !std::isfinite(p)) {
      return Status::InvalidArgument(
          "Discrete: probabilities must be finite and non-negative");
    }
    total += p;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("Discrete: probabilities sum to zero");
  }
  double x = Uniform() * total;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    x -= probs[i];
    if (x < 0.0) return i;
  }
  return probs.size() - 1;  // Floating-point slack: land on the last bin.
}

}  // namespace tcdp
