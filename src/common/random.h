#ifndef TCDP_COMMON_RANDOM_H_
#define TCDP_COMMON_RANDOM_H_

/// \file
/// Seeded pseudo-random number generation and the distributions used by
/// the library (uniform, Laplace, exponential, discrete, Gaussian).
///
/// Every stochastic component in this library takes an explicit `Rng`
/// so that experiments and tests are reproducible bit-for-bit.

#include <cstdint>
#include <random>
#include <vector>

#include "common/status.h"

namespace tcdp {

/// \brief Deterministic random source wrapping `std::mt19937_64`.
///
/// Not thread-safe; create one per thread or per experiment.
class Rng {
 public:
  /// Seeds the generator. The same seed yields the same stream.
  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi). `PRECONDITION: lo < hi`.
  double Uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Sample from Laplace(0, scale): density (1/2b) exp(-|x|/b).
  /// `PRECONDITION: scale > 0`. Variance is 2*scale^2.
  double Laplace(double scale);

  /// Sample from Exponential(rate): density rate * exp(-rate x), x >= 0.
  double Exponential(double rate);

  /// Sample from a standard normal via std::normal_distribution.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Sample an index in [0, probs.size()) with probability proportional to
  /// probs[i]. Returns InvalidArgument if probs is empty, has a negative
  /// entry, or sums to zero.
  StatusOr<std::size_t> Discrete(const std::vector<double>& probs);

  /// Fisher–Yates shuffle of \p values.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (std::size_t i = values->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Underlying engine, for interop with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tcdp

#endif  // TCDP_COMMON_RANDOM_H_
