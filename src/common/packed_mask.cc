#include "common/packed_mask.h"

#include <algorithm>

#include "common/binary_io.h"

namespace tcdp {
namespace {

/// Below this width RLE never pays: the dense row is at most four
/// words and bit() stays a single index (the short-horizon dense path).
constexpr std::size_t kMinRleWords = 4;

}  // namespace

PackedMask PackedMask::FromWords(std::vector<std::uint64_t> words) {
  PackedMask mask = FromWordSpan(words.data(), words.size());
  if (!mask.is_rle()) mask.dense_ = std::move(words);  // reuse the storage
  return mask;
}

PackedMask PackedMask::FromWordSpan(const std::uint64_t* words,
                                    std::size_t n) {
  PackedMask mask;
  mask.num_words_ = n;
  std::vector<std::uint64_t> run_end;
  std::vector<std::uint64_t> run_value;
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i + 1;
    while (j < n && words[j] == words[i]) ++j;
    run_end.push_back(j);
    run_value.push_back(words[i]);
    i = j;
  }
  // RLE stores two u64 per run vs one per word densely.
  if (n >= kMinRleWords && 2 * run_end.size() < n) {
    mask.kind_ = Kind::kRle;
    mask.run_end_ = std::move(run_end);
    mask.run_value_ = std::move(run_value);
  } else {
    mask.kind_ = Kind::kDense;
    mask.dense_.assign(words, words + n);
  }
  return mask;
}

bool PackedMask::bit(std::size_t i) const {
  if (kind_ == Kind::kAll) return true;
  const std::size_t word = i >> 6;
  if (word >= num_words_) return false;
  std::uint64_t value;
  if (kind_ == Kind::kDense) {
    value = dense_[word];
  } else {
    const auto it =
        std::upper_bound(run_end_.begin(), run_end_.end(), word);
    value = run_value_[static_cast<std::size_t>(it - run_end_.begin())];
  }
  return (value >> (i & 63u)) & 1u;
}

std::vector<std::uint64_t> PackedMask::ToWords(std::size_t num_words) const {
  if (kind_ == Kind::kAll) {
    return std::vector<std::uint64_t>(num_words, ~std::uint64_t{0});
  }
  std::vector<std::uint64_t> words(num_words_, 0);
  if (kind_ == Kind::kDense) {
    words = dense_;
  } else {
    std::size_t begin = 0;
    for (std::size_t r = 0; r < run_end_.size(); ++r) {
      for (std::size_t w = begin; w < run_end_[r]; ++w) {
        words[w] = run_value_[r];
      }
      begin = run_end_[r];
    }
  }
  words.resize(num_words, 0);
  return words;
}

std::size_t PackedMask::MemoryBytes() const {
  return dense_.capacity() * sizeof(std::uint64_t) +
         run_end_.capacity() * sizeof(std::uint64_t) +
         run_value_.capacity() * sizeof(std::uint64_t);
}

void PackedMask::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(kind_));
  if (kind_ == Kind::kAll) return;
  PutVarint64(dst, num_words_);
  if (kind_ == Kind::kDense) {
    for (std::uint64_t w : dense_) PutFixed64(dst, w);
    return;
  }
  PutVarint64(dst, run_end_.size());
  std::uint64_t begin = 0;
  for (std::size_t r = 0; r < run_end_.size(); ++r) {
    PutVarint64(dst, run_end_[r] - begin);  // run length, always >= 1
    PutFixed64(dst, run_value_[r]);
    begin = run_end_[r];
  }
}

StatusOr<PackedMask> PackedMask::Decode(BinaryCursor& cursor) {
  std::uint8_t kind_byte = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadByte(&kind_byte));
  if (kind_byte > static_cast<std::uint64_t>(Kind::kRle)) {
    return Status::InvalidArgument("PackedMask: unknown kind " +
                                   std::to_string(kind_byte));
  }
  const Kind kind = static_cast<Kind>(kind_byte);
  PackedMask mask;
  if (kind == Kind::kAll) return mask;
  std::uint64_t num_words = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&num_words));
  mask.kind_ = kind;
  mask.num_words_ = static_cast<std::size_t>(num_words);
  if (kind == Kind::kDense) {
    if (num_words > cursor.remaining() / 8) {
      return Status::OutOfRange("PackedMask: dense words exceed input");
    }
    mask.dense_.resize(static_cast<std::size_t>(num_words));
    for (auto& w : mask.dense_) TCDP_RETURN_IF_ERROR(cursor.ReadFixed64(&w));
    return mask;
  }
  std::uint64_t num_runs = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&num_runs));
  if (num_runs > num_words || num_runs > cursor.remaining()) {
    return Status::InvalidArgument("PackedMask: run count " +
                                   std::to_string(num_runs) +
                                   " inconsistent with width");
  }
  mask.run_end_.reserve(static_cast<std::size_t>(num_runs));
  mask.run_value_.reserve(static_cast<std::size_t>(num_runs));
  std::uint64_t covered = 0;
  for (std::uint64_t r = 0; r < num_runs; ++r) {
    std::uint64_t length = 0;
    std::uint64_t value = 0;
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&length));
    TCDP_RETURN_IF_ERROR(cursor.ReadFixed64(&value));
    if (length == 0 || covered + length > num_words) {
      return Status::InvalidArgument(
          "PackedMask: run lengths inconsistent with declared width");
    }
    covered += length;
    mask.run_end_.push_back(covered);
    mask.run_value_.push_back(value);
  }
  if (covered != num_words) {
    return Status::InvalidArgument(
        "PackedMask: runs cover " + std::to_string(covered) + " of " +
        std::to_string(num_words) + " words");
  }
  return mask;
}

bool PackedMask::operator==(const PackedMask& other) const {
  if (kind_ == Kind::kAll || other.kind_ == Kind::kAll) {
    return kind_ == other.kind_;
  }
  return num_words_ == other.num_words_ &&
         ToWords(num_words_) == other.ToWords(num_words_);
}

}  // namespace tcdp
