#include "common/logging.h"

#include <ctime>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace tcdp {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized

/// TCDP_LOG_PLAIN=1 drops the timestamp/thread prefix and restores the
/// original `[tcdp LEVEL] msg` shape (the escape hatch for scripts and
/// tests that grep exact lines). Read per emitted line — logging is a
/// cold path and the live read keeps the flag flippable in-process.
bool PlainFormat() {
  const char* env = std::getenv("TCDP_LOG_PLAIN");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

/// Small stable per-thread ordinal; cheaper and shorter in log lines
/// than the platform thread id.
unsigned LogThreadId() {
  static std::atomic<unsigned> next{1};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int InitLevelFromEnv() {
  const char* env = std::getenv("TCDP_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return v;
  }
  return static_cast<int>(LogLevel::kInfo);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitLevelFromEnv();
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  if (PlainFormat()) {
    std::fprintf(stderr, "[tcdp %s] %s\n", LevelName(level), message.c_str());
    return;
  }
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[40];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S", &utc);
  std::fprintf(stderr, "[%s.%03dZ %u tcdp %s] %s\n", stamp,
               static_cast<int>(millis), LogThreadId(), LevelName(level),
               message.c_str());
}

}  // namespace tcdp
