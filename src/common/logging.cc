#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace tcdp {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized

int InitLevelFromEnv() {
  const char* env = std::getenv("TCDP_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return v;
  }
  return static_cast<int>(LogLevel::kInfo);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitLevelFromEnv();
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::fprintf(stderr, "[tcdp %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace tcdp
