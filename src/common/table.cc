#include "common/table.h"

#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace tcdp {

std::string FormatNumber(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow() { rows_.emplace_back(); }

void Table::AddCell(const std::string& value) {
  assert(!rows_.empty() && "AddRow() before AddCell()");
  rows_.back().push_back(value);
}

void Table::AddNumber(double value, int precision) {
  AddCell(FormatNumber(value, precision));
}

void Table::AddInt(long long value) { AddCell(std::to_string(value)); }

void Table::AddRowCells(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string Table::ToAlignedString() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::ToCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += "\"";
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << quote(headers_[c]);
    if (c + 1 < headers_.size()) os << ',';
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << quote(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.ToAlignedString();
}

}  // namespace tcdp
