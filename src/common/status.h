#ifndef TCDP_COMMON_STATUS_H_
#define TCDP_COMMON_STATUS_H_

/// \file
/// Database-style error handling: `Status` and `StatusOr<T>`.
///
/// Public APIs in this library do not throw exceptions across module
/// boundaries (Arrow/RocksDB idiom). Fallible operations return `Status`
/// or `StatusOr<T>`; callers must check `ok()` before use.

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace tcdp {

/// Canonical error codes, a pragmatic subset of the Abseil/gRPC set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller supplied a malformed argument.
  kFailedPrecondition = 2,///< Object state does not admit the operation.
  kOutOfRange = 3,        ///< Index/parameter outside the valid domain.
  kNotFound = 4,          ///< Requested entity does not exist.
  kAlreadyExists = 5,     ///< Entity uniqueness violated.
  kUnimplemented = 6,     ///< Feature intentionally not provided.
  kInternal = 7,          ///< Invariant violation inside the library.
  kResourceExhausted = 8, ///< Iteration/size limit exceeded.
};

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail without a payload.
///
/// `Status` is cheap to copy in the OK case (no allocation). Error
/// statuses carry a code and a message describing the failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with \p code and diagnostic \p message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factories for common codes.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// @}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// \brief Either a value of type `T` or an error `Status`.
///
/// Minimal analogue of `absl::StatusOr`. Accessing the value of an
/// errored `StatusOr` is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: success.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from an error status. `PRECONDITION: !status.ok()`.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr given OK status without a value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access. `PRECONDITION: ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or \p fallback if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status from an expression to the caller.
#define TCDP_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::tcdp::Status _tcdp_status = (expr);            \
    if (!_tcdp_status.ok()) return _tcdp_status;     \
  } while (false)

/// Evaluates a StatusOr expression; on error returns the status, otherwise
/// assigns the value to `lhs`. Usage:
///   TCDP_ASSIGN_OR_RETURN(auto m, StochasticMatrix::Create(...));
#define TCDP_ASSIGN_OR_RETURN(lhs, expr)             \
  TCDP_ASSIGN_OR_RETURN_IMPL_(                       \
      TCDP_STATUS_CONCAT_(_tcdp_statusor, __LINE__), lhs, expr)

#define TCDP_STATUS_CONCAT_INNER_(x, y) x##y
#define TCDP_STATUS_CONCAT_(x, y) TCDP_STATUS_CONCAT_INNER_(x, y)
#define TCDP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace tcdp

#endif  // TCDP_COMMON_STATUS_H_
