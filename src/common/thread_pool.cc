#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tcdp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, i);
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  assert(task);
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    // Pair the notify with the idle mutex so a worker checking the
    // predicate cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(idle_mu_);
    queued_.fetch_add(1, std::memory_order_release);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::RunOneTask(std::size_t self) {
  std::function<void()> task;
  bool stolen = false;
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    for (std::size_t k = 1; k < queues_.size() && !task; ++k) {
      WorkerQueue& victim = *queues_[(self + k) % queues_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        stolen = true;
      }
    }
  }
  if (!task) return false;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  // Count before running: a ParallelFor caller wakes the instant its last
  // body returns, and must already see that task in the stats.
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
  task();
  FinishTask();
  return true;
}

void ThreadPool::FinishTask() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(std::size_t index) {
  while (true) {
    if (RunOneTask(index)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  ParallelForRange(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

void ThreadPool::ParallelForRange(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (grain == 0) {
    // Aim for a few chunks per worker so stealing can balance stragglers.
    grain = std::max<std::size_t>(1, count / (4 * num_threads()));
  }
  const std::size_t num_chunks = (count + grain - 1) / grain;

  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = num_chunks;

  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const std::size_t lo = begin + chunk * grain;
    const std::size_t hi = std::min(end, lo + grain);
    Submit([latch, lo, hi, &body] {
      body(lo, hi);
      std::lock_guard<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->remaining == 0; });
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tcdp
