#ifndef TCDP_COMMON_LOGGING_H_
#define TCDP_COMMON_LOGGING_H_

/// \file
/// Minimal leveled logging to stderr. Benchmarks and examples use this to
/// surface progress without polluting the table output on stdout.

#include <sstream>
#include <string>

namespace tcdp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
/// Defaults to kInfo; override via TCDP_LOG_LEVEL env (0..3) at first use.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Emits one formatted line to stderr if \p level passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// RAII stream that emits on destruction; backs the TCDP_LOG macro.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tcdp

/// Usage: TCDP_LOG(kInfo) << "solved n=" << n;
#define TCDP_LOG(severity) \
  ::tcdp::internal::LogStream(::tcdp::LogLevel::severity)

#endif  // TCDP_COMMON_LOGGING_H_
