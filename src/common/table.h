#ifndef TCDP_COMMON_TABLE_H_
#define TCDP_COMMON_TABLE_H_

/// \file
/// Aligned-text and CSV table rendering for the benchmark harness.
/// Each bench binary prints the same rows/series the paper reports;
/// `Table` keeps that output consistent and machine-scrapeable.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace tcdp {

/// \brief A simple column-oriented table: header row plus string cells.
///
/// Numeric helpers format doubles with a fixed precision so benchmark
/// output diffs cleanly across runs.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new empty row.
  void AddRow();

  /// Appends a string cell to the current row.
  void AddCell(const std::string& value);

  /// Appends a numeric cell with \p precision fractional digits.
  void AddNumber(double value, int precision = 4);

  /// Appends an integer cell.
  void AddInt(long long value);

  /// Convenience: adds a full row of preformatted cells.
  void AddRowCells(const std::vector<std::string>& cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Renders with padded columns and a header separator.
  std::string ToAlignedString() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas).
  std::string ToCsv() const;

  /// Streams the aligned rendering.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats a double like AddNumber does (fixed precision, "inf"
/// for infinities, "nan" for NaN).
std::string FormatNumber(double value, int precision = 4);

}  // namespace tcdp

#endif  // TCDP_COMMON_TABLE_H_
