#include "common/binary_io.h"

#include <cstring>

namespace tcdp {

void PutFixed32(std::string* dst, std::uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, std::uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 8);
}

void PutVarint64(std::string* dst, std::uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutDoubleBits(std::string* dst, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed64(dst, bits);
}

void PutLengthPrefixed(std::string* dst, const std::string& value) {
  PutVarint64(dst, value.size());
  dst->append(value);
}

Status BinaryCursor::ReadByte(std::uint8_t* value) {
  if (pos_ == end_) {
    return Status::OutOfRange("BinaryCursor: truncated byte");
  }
  *value = static_cast<std::uint8_t>(*pos_++);
  return Status::OK();
}

Status BinaryCursor::ReadFixed32(std::uint32_t* value) {
  if (remaining() < 4) {
    return Status::OutOfRange("BinaryCursor: truncated fixed32");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(pos_[i]))
         << (8 * i);
  }
  pos_ += 4;
  *value = v;
  return Status::OK();
}

Status BinaryCursor::ReadFixed64(std::uint64_t* value) {
  if (remaining() < 8) {
    return Status::OutOfRange("BinaryCursor: truncated fixed64");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(pos_[i]))
         << (8 * i);
  }
  pos_ += 8;
  *value = v;
  return Status::OK();
}

Status BinaryCursor::ReadVarint64(std::uint64_t* value) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (pos_ == end_) {
      return Status::OutOfRange("BinaryCursor: truncated varint");
    }
    const unsigned char byte = static_cast<unsigned char>(*pos_++);
    if (shift == 63 && (byte & ~1u) != 0) {
      return Status::InvalidArgument("BinaryCursor: varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = v;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("BinaryCursor: varint longer than 10 bytes");
}

Status BinaryCursor::ReadDoubleBits(double* value) {
  std::uint64_t bits = 0;
  TCDP_RETURN_IF_ERROR(ReadFixed64(&bits));
  std::memcpy(value, &bits, sizeof(*value));
  return Status::OK();
}

Status BinaryCursor::ReadLengthPrefixed(std::string* value) {
  std::uint64_t length = 0;
  TCDP_RETURN_IF_ERROR(ReadVarint64(&length));
  if (length > remaining()) {
    return Status::OutOfRange("BinaryCursor: length-prefixed field of " +
                              std::to_string(length) +
                              " bytes exceeds remaining input");
  }
  value->assign(pos_, static_cast<std::size_t>(length));
  pos_ += length;
  return Status::OK();
}

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const Crc32Table table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace tcdp
