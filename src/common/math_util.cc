#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace tcdp {

bool IsProbabilityVector(const std::vector<double>& v, double tol) {
  double sum = 0.0;
  for (double x : v) {
    if (!IsProbability(x, tol)) return false;
    sum += x;
  }
  return std::fabs(sum - 1.0) <= tol;
}

bool NormalizeInPlace(std::vector<double>* v) {
  assert(v != nullptr);
  double sum = std::accumulate(v->begin(), v->end(), 0.0);
  if (!(sum > 0.0) || !std::isfinite(sum)) return false;
  for (double& x : *v) x /= sum;
  return true;
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

double LogSumExp(const std::vector<double>& x) {
  if (x.empty()) return -kInf;
  const double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;  // all -inf, or contains +inf
  double sum = 0.0;
  for (double xi : x) sum += std::exp(xi - m);
  return m + std::log(sum);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

}  // namespace tcdp
