#include "kernels/kernels.h"

// AVX2 backend. This file is compiled with -mavx2 -mfma (and
// -ffp-contract=off) on x86-64; the guarded body is only ever entered
// after the dispatcher's runtime CPU check, so the binary stays safe
// on pre-AVX2 hosts. Every kernel reproduces the scalar reference's
// operation order exactly — explicit mul/add intrinsics (no fmadd),
// per-lane accumulators matching the blocked-4 canonical order — so
// the backend is bitwise-identical to scalar (property-tested).

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

namespace tcdp {
namespace kernels {
namespace {

void Avx2FusedLossAdd(const double* loss, const double* add, double* bpl,
                      double* eps_sum, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d va = _mm256_loadu_pd(add + i);
    _mm256_storeu_pd(bpl + i, _mm256_add_pd(_mm256_loadu_pd(loss + i), va));
    _mm256_storeu_pd(eps_sum + i,
                     _mm256_add_pd(_mm256_loadu_pd(eps_sum + i), va));
  }
  for (std::size_t i = n4; i < n; ++i) {
    bpl[i] = loss[i] + add[i];
    eps_sum[i] += add[i];
  }
}

void Avx2FusedLossAddUniform(const double* loss, double eps, double* bpl,
                             double* eps_sum, std::size_t n) {
  const __m256d veps = _mm256_set1_pd(eps);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    _mm256_storeu_pd(bpl + i, _mm256_add_pd(_mm256_loadu_pd(loss + i), veps));
    _mm256_storeu_pd(eps_sum + i,
                     _mm256_add_pd(_mm256_loadu_pd(eps_sum + i), veps));
  }
  for (std::size_t i = n4; i < n; ++i) {
    bpl[i] = loss[i] + eps;
    eps_sum[i] += eps;
  }
}

void Avx2FusedFillAdd(const double* add, double* bpl, double* eps_sum,
                      std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d va = _mm256_loadu_pd(add + i);
    _mm256_storeu_pd(bpl + i, va);
    _mm256_storeu_pd(eps_sum + i,
                     _mm256_add_pd(_mm256_loadu_pd(eps_sum + i), va));
  }
  for (std::size_t i = n4; i < n; ++i) {
    bpl[i] = add[i];
    eps_sum[i] += add[i];
  }
}

void Avx2FusedFillUniform(double eps, double* bpl, double* eps_sum,
                          std::size_t n) {
  const __m256d veps = _mm256_set1_pd(eps);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    _mm256_storeu_pd(bpl + i, veps);
    _mm256_storeu_pd(eps_sum + i,
                     _mm256_add_pd(_mm256_loadu_pd(eps_sum + i), veps));
  }
  for (std::size_t i = n4; i < n; ++i) {
    bpl[i] = eps;
    eps_sum[i] += eps;
  }
}

void Avx2Axpy(double a, const double* x, double* out, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d p = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i), p));
  }
  for (std::size_t i = n4; i < n; ++i) {
    const double p = a * x[i];
    out[i] += p;
  }
}

double Avx2Dot(const double* a, const double* b, std::size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d p =
        _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    vacc = _mm256_add_pd(vacc, p);
  }
  double acc[4];
  _mm256_storeu_pd(acc, vacc);
  for (std::size_t i = n4; i < n; ++i) {
    const double p = a[i] * b[i];
    acc[i - n4] += p;
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

std::size_t Avx2SelectGreater(const double* q, const double* d, std::size_t n,
                              std::uint32_t* idx) {
  std::size_t count = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d cmp = _mm256_cmp_pd(_mm256_loadu_pd(q + i),
                                      _mm256_loadu_pd(d + i), _CMP_GT_OQ);
    int bits = _mm256_movemask_pd(cmp);
    while (bits != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(bits));
      idx[count++] = static_cast<std::uint32_t>(i + lane);
      bits &= bits - 1;
    }
  }
  for (std::size_t i = n4; i < n; ++i) {
    if (q[i] > d[i]) idx[count++] = static_cast<std::uint32_t>(i);
  }
  return count;
}

void Avx2GatherPairSums(const double* q, const double* d,
                        const std::uint32_t* idx, std::size_t m,
                        double* q_sum, double* d_sum) {
  __m256d vq = _mm256_setzero_pd();
  __m256d vd = _mm256_setzero_pd();
  const std::size_t m4 = m & ~std::size_t{3};
  for (std::size_t i = 0; i < m4; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    vq = _mm256_add_pd(vq, _mm256_i32gather_pd(q, vi, 8));
    vd = _mm256_add_pd(vd, _mm256_i32gather_pd(d, vi, 8));
  }
  double qa[4], da[4];
  _mm256_storeu_pd(qa, vq);
  _mm256_storeu_pd(da, vd);
  for (std::size_t i = m4; i < m; ++i) {
    qa[i - m4] += q[idx[i]];
    da[i - m4] += d[idx[i]];
  }
  *q_sum = (qa[0] + qa[1]) + (qa[2] + qa[3]);
  *d_sum = (da[0] + da[1]) + (da[2] + da[3]);
}

std::size_t Avx2FilterGt(double* value, std::uint32_t* idx, std::size_t m,
                         double threshold) {
  const __m256d vthr = _mm256_set1_pd(threshold);
  std::size_t kept = 0;
  const std::size_t m4 = m & ~std::size_t{3};
  for (std::size_t i = 0; i < m4; i += 4) {
    const __m256d cmp =
        _mm256_cmp_pd(_mm256_loadu_pd(value + i), vthr, _CMP_GT_OQ);
    int bits = _mm256_movemask_pd(cmp);
    while (bits != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(bits));
      // Writes trail reads (kept <= i + lane), so in-place is safe.
      value[kept] = value[i + lane];
      idx[kept] = idx[i + lane];
      ++kept;
      bits &= bits - 1;
    }
  }
  for (std::size_t i = m4; i < m; ++i) {
    if (value[i] > threshold) {
      value[kept] = value[i];
      idx[kept] = idx[i];
      ++kept;
    }
  }
  return kept;
}

constexpr Backend kAvx2Backend = {
    "avx2",
    4,
    Avx2FusedLossAdd,
    Avx2FusedLossAddUniform,
    Avx2FusedFillAdd,
    Avx2FusedFillUniform,
    Avx2Axpy,
    Avx2Dot,
    Avx2SelectGreater,
    Avx2GatherPairSums,
    Avx2FilterGt,
};

}  // namespace

const Backend* Avx2BackendImpl() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported ? &kAvx2Backend : nullptr;
}

}  // namespace kernels
}  // namespace tcdp

#else  // !__AVX2__

namespace tcdp {
namespace kernels {

const Backend* Avx2BackendImpl() { return nullptr; }

}  // namespace kernels
}  // namespace tcdp

#endif
