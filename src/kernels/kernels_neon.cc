#include "kernels/kernels.h"

// NEON backend (aarch64, where Advanced SIMD is baseline — no runtime
// probe needed). Registers hold 2 doubles, so the blocked-4 canonical
// reduction order is realized as two accumulator pairs: lanes {0,1} in
// one register, lanes {2,3} in the other, folded with the same fixed
// horizontal sum (a0+a1)+(a2+a3) as the scalar reference. Elementwise
// kernels use explicit vmulq/vaddq (never vfmaq) so results match the
// scalar mul-then-add bit for bit.

#if defined(__aarch64__)

#include <arm_neon.h>

namespace tcdp {
namespace kernels {
namespace {

void NeonFusedLossAdd(const double* loss, const double* add, double* bpl,
                      double* eps_sum, std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    const float64x2_t va = vld1q_f64(add + i);
    vst1q_f64(bpl + i, vaddq_f64(vld1q_f64(loss + i), va));
    vst1q_f64(eps_sum + i, vaddq_f64(vld1q_f64(eps_sum + i), va));
  }
  if (n2 != n) {
    bpl[n2] = loss[n2] + add[n2];
    eps_sum[n2] += add[n2];
  }
}

void NeonFusedLossAddUniform(const double* loss, double eps, double* bpl,
                             double* eps_sum, std::size_t n) {
  const float64x2_t veps = vdupq_n_f64(eps);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    vst1q_f64(bpl + i, vaddq_f64(vld1q_f64(loss + i), veps));
    vst1q_f64(eps_sum + i, vaddq_f64(vld1q_f64(eps_sum + i), veps));
  }
  if (n2 != n) {
    bpl[n2] = loss[n2] + eps;
    eps_sum[n2] += eps;
  }
}

void NeonFusedFillAdd(const double* add, double* bpl, double* eps_sum,
                      std::size_t n) {
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    const float64x2_t va = vld1q_f64(add + i);
    vst1q_f64(bpl + i, va);
    vst1q_f64(eps_sum + i, vaddq_f64(vld1q_f64(eps_sum + i), va));
  }
  if (n2 != n) {
    bpl[n2] = add[n2];
    eps_sum[n2] += add[n2];
  }
}

void NeonFusedFillUniform(double eps, double* bpl, double* eps_sum,
                          std::size_t n) {
  const float64x2_t veps = vdupq_n_f64(eps);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    vst1q_f64(bpl + i, veps);
    vst1q_f64(eps_sum + i, vaddq_f64(vld1q_f64(eps_sum + i), veps));
  }
  if (n2 != n) {
    bpl[n2] = eps;
    eps_sum[n2] += eps;
  }
}

void NeonAxpy(double a, const double* x, double* out, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    const float64x2_t p = vmulq_f64(va, vld1q_f64(x + i));
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(out + i), p));
  }
  if (n2 != n) {
    const double p = a * x[n2];
    out[n2] += p;
  }
}

double NeonDot(const double* a, const double* b, std::size_t n) {
  // Lanes {0,1} and {2,3} of the canonical blocked-4 accumulator.
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc23 =
        vaddq_f64(acc23, vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  double acc[4];
  vst1q_f64(acc, acc01);
  vst1q_f64(acc + 2, acc23);
  for (std::size_t i = n4; i < n; ++i) {
    const double p = a[i] * b[i];
    acc[i - n4] += p;
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

std::size_t NeonSelectGreater(const double* q, const double* d, std::size_t n,
                              std::uint32_t* idx) {
  std::size_t count = 0;
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    const uint64x2_t cmp = vcgtq_f64(vld1q_f64(q + i), vld1q_f64(d + i));
    if (vgetq_lane_u64(cmp, 0) != 0) idx[count++] = static_cast<std::uint32_t>(i);
    if (vgetq_lane_u64(cmp, 1) != 0)
      idx[count++] = static_cast<std::uint32_t>(i + 1);
  }
  if (n2 != n && q[n2] > d[n2]) idx[count++] = static_cast<std::uint32_t>(n2);
  return count;
}

void NeonGatherPairSums(const double* q, const double* d,
                        const std::uint32_t* idx, std::size_t m, double* q_sum,
                        double* d_sum) {
  // NEON has no gather; accumulate scalar loads into the canonical
  // blocked-4 lane array, same order as the scalar reference.
  double qa[4] = {0.0, 0.0, 0.0, 0.0};
  double da[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t m4 = m & ~std::size_t{3};
  for (std::size_t i = 0; i < m4; i += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      qa[j] += q[idx[i + j]];
      da[j] += d[idx[i + j]];
    }
  }
  for (std::size_t i = m4; i < m; ++i) {
    qa[i - m4] += q[idx[i]];
    da[i - m4] += d[idx[i]];
  }
  *q_sum = (qa[0] + qa[1]) + (qa[2] + qa[3]);
  *d_sum = (da[0] + da[1]) + (da[2] + da[3]);
}

std::size_t NeonFilterGt(double* value, std::uint32_t* idx, std::size_t m,
                         double threshold) {
  const float64x2_t vthr = vdupq_n_f64(threshold);
  std::size_t kept = 0;
  const std::size_t m2 = m & ~std::size_t{1};
  for (std::size_t i = 0; i < m2; i += 2) {
    const uint64x2_t cmp = vcgtq_f64(vld1q_f64(value + i), vthr);
    if (vgetq_lane_u64(cmp, 0) != 0) {
      value[kept] = value[i];
      idx[kept] = idx[i];
      ++kept;
    }
    if (vgetq_lane_u64(cmp, 1) != 0) {
      value[kept] = value[i + 1];
      idx[kept] = idx[i + 1];
      ++kept;
    }
  }
  if (m2 != m && value[m2] > threshold) {
    value[kept] = value[m2];
    idx[kept] = idx[m2];
    ++kept;
  }
  return kept;
}

constexpr Backend kNeonBackend = {
    "neon",
    2,
    NeonFusedLossAdd,
    NeonFusedLossAddUniform,
    NeonFusedFillAdd,
    NeonFusedFillUniform,
    NeonAxpy,
    NeonDot,
    NeonSelectGreater,
    NeonGatherPairSums,
    NeonFilterGt,
};

}  // namespace

const Backend* NeonBackendImpl() { return &kNeonBackend; }

}  // namespace kernels
}  // namespace tcdp

#else  // !__aarch64__

namespace tcdp {
namespace kernels {

const Backend* NeonBackendImpl() { return nullptr; }

}  // namespace kernels
}  // namespace tcdp

#endif
