#ifndef TCDP_KERNELS_KERNELS_H_
#define TCDP_KERNELS_KERNELS_H_

/// \file
/// Runtime-dispatched vector kernels for the accounting hot paths.
///
/// The three loops that dominate fleet-scale accounting — the bank's
/// fused BPL column update, the Algorithm-1 pair scan, and the dense
/// row operations behind Markov propagation — are expressed here as a
/// table of function pointers (a `Backend`). Backends are selected at
/// runtime the way mxnet's operator kernels pick an implementation:
/// the scalar reference always exists, an AVX2 backend is used on x86
/// hosts whose CPU reports AVX2 (the translation unit is compiled with
/// -mavx2 -mfma and never entered otherwise), and a NEON backend on
/// aarch64.
///
/// **Determinism contract.** Every kernel's result is specified
/// independently of the backend, and every backend is property-tested
/// bitwise-identical to the scalar reference (tests/kernels_test.cc):
///
///   * elementwise kernels (the fused BPL update family, axpy) perform
///     the same IEEE operations in the same order — vector lanes are
///     just batched scalar adds/muls, and FMA contraction is disabled
///     in every kernel translation unit;
///   * reduction kernels (dot, gather_pair_sums) are specified in
///     **blocked-4 canonical order**: four independent accumulators
///     striding the input, a sequential tail folded into the lanes,
///     and the fixed horizontal sum (a0+a1)+(a2+a3). The scalar
///     reference implements exactly this order, so the vector backends
///     match it bit for bit;
///   * selection kernels (select_greater, filter_gt) move data without
///     arithmetic.
///
/// Because scalar and vector backends agree bitwise, dispatch is safe
/// to leave on (`TcdpKernelMode::kAuto`, the default). `kScalar`
/// remains as a belt-and-braces escape hatch (`tcdp ... --kernels
/// scalar`) that pins the scalar reference everywhere.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace tcdp {

/// Process-wide kernel dispatch policy.
enum class TcdpKernelMode {
  kScalar,  ///< force the scalar reference backend everywhere
  kAuto,    ///< best backend the host supports (bitwise-identical)
};

namespace kernels {

/// One kernel implementation set. All pointers are non-null.
struct Backend {
  const char* name;        ///< "scalar", "avx2", "neon"
  std::size_t simd_width;  ///< doubles per vector register (1 = scalar)

  /// bpl[i] = loss[i] + add[i]; eps_sum[i] += add[i].
  void (*fused_loss_add)(const double* loss, const double* add, double* bpl,
                         double* eps_sum, std::size_t n);
  /// bpl[i] = loss[i] + eps; eps_sum[i] += eps.
  void (*fused_loss_add_uniform)(const double* loss, double eps, double* bpl,
                                 double* eps_sum, std::size_t n);
  /// bpl[i] = add[i]; eps_sum[i] += add[i]  (zero-loss cohorts).
  void (*fused_fill_add)(const double* add, double* bpl, double* eps_sum,
                         std::size_t n);
  /// bpl[i] = eps; eps_sum[i] += eps  (zero-loss, everyone participates).
  void (*fused_fill_uniform)(double eps, double* bpl, double* eps_sum,
                             std::size_t n);

  /// out[i] += a * x[i], explicit mul-then-add (never FMA-contracted).
  void (*axpy)(double a, const double* x, double* out, std::size_t n);
  /// Blocked-4 canonical dot product (see file comment).
  double (*dot)(const double* a, const double* b, std::size_t n);

  /// Writes ascending j with q[j] > d[j] into idx; returns the count.
  /// idx must have room for n entries.
  std::size_t (*select_greater)(const double* q, const double* d,
                                std::size_t n, std::uint32_t* idx);
  /// Blocked-4 canonical gather sums over idx: *q_sum = sum q[idx[i]],
  /// *d_sum = sum d[idx[i]].
  void (*gather_pair_sums)(const double* q, const double* d,
                           const std::uint32_t* idx, std::size_t m,
                           double* q_sum, double* d_sum);
  /// In-place compaction of the parallel arrays (value, idx): keeps
  /// entries with value[i] > threshold, preserving order; returns the
  /// kept count. NaN-free inputs; +inf entries always survive.
  std::size_t (*filter_gt)(double* value, std::uint32_t* idx, std::size_t m,
                           double threshold);
};

/// The scalar reference backend (always available).
const Backend& ScalarBackend();
/// AVX2 backend, or null when the binary or the CPU lacks AVX2.
const Backend* Avx2Backend();
/// NEON backend, or null off aarch64.
const Backend* NeonBackend();

/// Best backend the host supports, ignoring the mode switch.
const Backend& BestBackend();
/// Best backend honoring the process-wide mode (kScalar pins scalar).
const Backend& ActiveBackend();

/// Process-wide mode switch (atomic; default kAuto — see the
/// determinism contract above for why that is safe).
void SetKernelMode(TcdpKernelMode mode);
TcdpKernelMode KernelMode();

/// Host SIMD capability in doubles per register (BestBackend's width):
/// 4 on AVX2 hosts, 2 on NEON, 1 scalar-only. Bench gates with a
/// `min_simd_width` requirement key on this.
std::size_t HostSimdWidth();

/// "scalar" or "auto" -> mode; anything else is InvalidArgument.
StatusOr<TcdpKernelMode> ParseKernelMode(const std::string& text);
const char* KernelModeName(TcdpKernelMode mode);

/// Expands the participation bitmask into per-slot budget adds:
/// add[i] = eps when bit users[i] is set in mask (a user id at or past
/// the mask width reads 0), else 0.0. Scalar on every backend — the
/// cost is the gather, not the arithmetic — but lives here so the
/// staging buffer contract sits next to the kernels that consume it.
void ExpandMaskEpsilon(const std::uint64_t* mask, std::size_t mask_words,
                       const std::uint32_t* users, std::size_t n, double eps,
                       double* add);

}  // namespace kernels
}  // namespace tcdp

#endif  // TCDP_KERNELS_KERNELS_H_
