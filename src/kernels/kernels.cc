#include "kernels/kernels.h"

#include <atomic>

// This translation unit holds the scalar reference backend and the
// dispatcher. It is compiled with -ffp-contract=off (CMakeLists.txt)
// so the reference semantics — explicit mul-then-add, never FMA — hold
// under any global optimization flags; the vector backends use
// explicit mul/add intrinsics for the same reason.

namespace tcdp {
namespace kernels {
namespace {

void ScalarFusedLossAdd(const double* loss, const double* add, double* bpl,
                        double* eps_sum, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    bpl[i] = loss[i] + add[i];
    eps_sum[i] += add[i];
  }
}

void ScalarFusedLossAddUniform(const double* loss, double eps, double* bpl,
                               double* eps_sum, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    bpl[i] = loss[i] + eps;
    eps_sum[i] += eps;
  }
}

void ScalarFusedFillAdd(const double* add, double* bpl, double* eps_sum,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    bpl[i] = add[i];
    eps_sum[i] += add[i];
  }
}

void ScalarFusedFillUniform(double eps, double* bpl, double* eps_sum,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    bpl[i] = eps;
    eps_sum[i] += eps;
  }
}

void ScalarAxpy(double a, const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double p = a * x[i];
    out[i] += p;
  }
}

double ScalarDot(const double* a, const double* b, std::size_t n) {
  // Blocked-4 canonical order: the vector backends reproduce exactly
  // these additions in exactly this order.
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      const double p = a[i + j] * b[i + j];
      acc[j] += p;
    }
  }
  for (std::size_t i = n4; i < n; ++i) {
    const double p = a[i] * b[i];
    acc[i - n4] += p;
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

std::size_t ScalarSelectGreater(const double* q, const double* d,
                                std::size_t n, std::uint32_t* idx) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (q[i] > d[i]) idx[count++] = static_cast<std::uint32_t>(i);
  }
  return count;
}

void ScalarGatherPairSums(const double* q, const double* d,
                          const std::uint32_t* idx, std::size_t m,
                          double* q_sum, double* d_sum) {
  double qa[4] = {0.0, 0.0, 0.0, 0.0};
  double da[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t m4 = m & ~std::size_t{3};
  for (std::size_t i = 0; i < m4; i += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      qa[j] += q[idx[i + j]];
      da[j] += d[idx[i + j]];
    }
  }
  for (std::size_t i = m4; i < m; ++i) {
    qa[i - m4] += q[idx[i]];
    da[i - m4] += d[idx[i]];
  }
  *q_sum = (qa[0] + qa[1]) + (qa[2] + qa[3]);
  *d_sum = (da[0] + da[1]) + (da[2] + da[3]);
}

std::size_t ScalarFilterGt(double* value, std::uint32_t* idx, std::size_t m,
                           double threshold) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (value[i] > threshold) {
      value[kept] = value[i];
      idx[kept] = idx[i];
      ++kept;
    }
  }
  return kept;
}

constexpr Backend kScalarBackend = {
    "scalar",
    1,
    ScalarFusedLossAdd,
    ScalarFusedLossAddUniform,
    ScalarFusedFillAdd,
    ScalarFusedFillUniform,
    ScalarAxpy,
    ScalarDot,
    ScalarSelectGreater,
    ScalarGatherPairSums,
    ScalarFilterGt,
};

std::atomic<TcdpKernelMode> g_mode{TcdpKernelMode::kAuto};

}  // namespace

// Implemented in kernels_avx2.cc / kernels_neon.cc; each returns null
// when its instruction set is unavailable at build time or on the
// running CPU.
const Backend* Avx2BackendImpl();
const Backend* NeonBackendImpl();

const Backend& ScalarBackend() { return kScalarBackend; }

const Backend* Avx2Backend() { return Avx2BackendImpl(); }

const Backend* NeonBackend() { return NeonBackendImpl(); }

const Backend& BestBackend() {
  // Probed once: CPU feature bits do not change under us.
  static const Backend* const best = [] {
    if (const Backend* avx2 = Avx2BackendImpl()) return avx2;
    if (const Backend* neon = NeonBackendImpl()) return neon;
    return &kScalarBackend;
  }();
  return *best;
}

const Backend& ActiveBackend() {
  return g_mode.load(std::memory_order_relaxed) == TcdpKernelMode::kScalar
             ? kScalarBackend
             : BestBackend();
}

void SetKernelMode(TcdpKernelMode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
}

TcdpKernelMode KernelMode() { return g_mode.load(std::memory_order_relaxed); }

std::size_t HostSimdWidth() { return BestBackend().simd_width; }

StatusOr<TcdpKernelMode> ParseKernelMode(const std::string& text) {
  if (text == "scalar") return TcdpKernelMode::kScalar;
  if (text == "auto") return TcdpKernelMode::kAuto;
  return Status::InvalidArgument("kernel mode must be scalar or auto, got '" +
                                 text + "'");
}

const char* KernelModeName(TcdpKernelMode mode) {
  return mode == TcdpKernelMode::kScalar ? "scalar" : "auto";
}

void ExpandMaskEpsilon(const std::uint64_t* mask, std::size_t mask_words,
                       const std::uint32_t* users, std::size_t n, double eps,
                       double* add) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t word = users[i] >> 6;
    const std::uint64_t bit =
        word < mask_words ? (mask[word] >> (users[i] & 63u)) & 1u : 0u;
    add[i] = bit != 0 ? eps : 0.0;
  }
}

}  // namespace kernels
}  // namespace tcdp
