#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace tcdp {
namespace net {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

NetClient::NetClient(int fd, NetClientOptions options)
    : fd_(fd), options_(std::move(options)) {
  if (options_.pipeline_depth == 0) options_.pipeline_depth = 1;
}

NetClient::~NetClient() { (void)Close(); }

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, std::uint16_t port, NetClientOptions options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("NetClient::Connect: bad IPv4 host '" +
                                   host + "'");
  }
  int fd = -1;
  Status last = Status::Internal("no connect attempts made");
  const int attempts = options.connect_attempts > 0
                           ? options.connect_attempts
                           : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.connect_retry_delay_ms));
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      last = Status::OK();
      break;
    }
    last = ErrnoStatus("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    fd = -1;
  }
  if (!last.ok()) return last;
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::unique_ptr<NetClient> client(new NetClient(fd, std::move(options)));
  std::string preamble;
  AppendPreamble(&preamble);
  TCDP_RETURN_IF_ERROR(client->SendAll(preamble));
  return client;
}

Status NetClient::SendAll(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      first_error_ = SalvageServerError(ErrnoStatus("send"));
      return first_error_;
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status NetClient::SalvageServerError(Status transport) {
  // A write failure (EPIPE/ECONNRESET) usually means the server closed
  // on us — and when it closed for a payload violation, the kError
  // frame explaining why is sitting in our receive buffer. Prefer
  // surfacing that over a generic transport status. Best-effort: wait
  // briefly for the data, drain without blocking, keep the transport
  // status if no explanation arrives.
  pollfd ready{fd_, POLLIN, 0};
  (void)::poll(&ready, 1, 100);
  char buffer[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT);
    if (n <= 0) break;
    if (!decoder_.Feed(buffer, static_cast<std::size_t>(n)).ok()) break;
  }
  while (decoder_.has_frame()) {
    const Frame frame = decoder_.PopFrame();
    if (frame.type != MsgType::kError) continue;
    Status error;
    if (DecodeError(frame.payload, &error).ok()) return error;
  }
  return transport;
}

Status NetClient::ReadFrame(Frame* frame) {
  while (!decoder_.has_frame()) {
    char buffer[64 * 1024];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      first_error_ = ErrnoStatus("recv");
      return first_error_;
    }
    if (n == 0) {
      first_error_ =
          Status::Internal("server closed the connection mid-response");
      return first_error_;
    }
    const Status fed = decoder_.Feed(buffer, static_cast<std::size_t>(n));
    if (!fed.ok()) {
      first_error_ = fed;
      return first_error_;
    }
  }
  *frame = decoder_.PopFrame();
  ++responses_received_;
  return Status::OK();
}

Status NetClient::ReadAck() {
  Frame frame;
  TCDP_RETURN_IF_ERROR(ReadFrame(&frame));
  if (outstanding_ > 0) --outstanding_;
  if (frame.type == MsgType::kOk) return Status::OK();
  if (frame.type == MsgType::kError) {
    Status error;
    const Status decoded = DecodeError(frame.payload, &error);
    first_error_ = decoded.ok() ? error : decoded;
    return first_error_;
  }
  first_error_ = Status::Internal(
      "expected an ack frame, got type " +
      std::to_string(static_cast<unsigned>(frame.type)));
  return first_error_;
}

Status NetClient::SendPipelined(MsgType type, const std::string& payload) {
  TCDP_RETURN_IF_ERROR(latched());
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  if (payload.size() > kMaxFramePayload) {
    // Caller error (e.g. a Join with enormous matrices); the stream is
    // untouched, so this does not latch.
    return Status::InvalidArgument(
        "request payload (" + std::to_string(payload.size()) +
        " bytes) exceeds the frame size limit");
  }
  std::string bytes;
  AppendFrame(&bytes, type, payload);
  TCDP_RETURN_IF_ERROR(SendAll(bytes));
  ++requests_sent_;
  ++outstanding_;
  while (outstanding_ >= options_.pipeline_depth) {
    TCDP_RETURN_IF_ERROR(ReadAck());
  }
  return Status::OK();
}

Status NetClient::Join(const std::string& name,
                       const TemporalCorrelations& correlations) {
  return SendPipelined(MsgType::kJoin, EncodeJoin(name, correlations));
}

Status NetClient::Release(const std::string& name, double epsilon) {
  return SendPipelined(MsgType::kRelease, EncodeRelease(name, epsilon));
}

Status NetClient::ReleaseAll(double epsilon) {
  return SendPipelined(MsgType::kReleaseAll, EncodeReleaseAll(epsilon));
}

Status NetClient::Drain() {
  TCDP_RETURN_IF_ERROR(latched());
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  while (outstanding_ > 0) {
    TCDP_RETURN_IF_ERROR(ReadAck());
  }
  return Status::OK();
}

Status NetClient::Flush() {
  TCDP_RETURN_IF_ERROR(SendPipelined(MsgType::kFlush, std::string()));
  return Drain();
}

Status NetClient::Snapshot() {
  TCDP_RETURN_IF_ERROR(SendPipelined(MsgType::kSnapshot, std::string()));
  return Drain();
}

Status NetClient::Compact() {
  TCDP_RETURN_IF_ERROR(SendPipelined(MsgType::kCompact, std::string()));
  return Drain();
}

StatusOr<server::UserReport> NetClient::Query(const std::string& name) {
  TCDP_RETURN_IF_ERROR(Drain());
  std::string bytes;
  AppendFrame(&bytes, MsgType::kQuery, EncodeName(name));
  TCDP_RETURN_IF_ERROR(SendAll(bytes));
  ++requests_sent_;
  Frame frame;
  TCDP_RETURN_IF_ERROR(ReadFrame(&frame));
  if (frame.type == MsgType::kReport) return DecodeReport(frame.payload);
  if (frame.type == MsgType::kError) {
    Status error;
    const Status decoded = DecodeError(frame.payload, &error);
    // A query error (e.g. NotFound) does not latch: nothing about the
    // applied state is in doubt.
    return decoded.ok() ? error : decoded;
  }
  first_error_ = Status::Internal(
      "expected a report frame, got type " +
      std::to_string(static_cast<unsigned>(frame.type)));
  return first_error_;
}

StatusOr<WireServiceStats> NetClient::Stats() {
  TCDP_RETURN_IF_ERROR(Drain());
  std::string bytes;
  AppendFrame(&bytes, MsgType::kStats, std::string());
  TCDP_RETURN_IF_ERROR(SendAll(bytes));
  ++requests_sent_;
  Frame frame;
  TCDP_RETURN_IF_ERROR(ReadFrame(&frame));
  if (frame.type == MsgType::kStatsReport) {
    return DecodeStatsReport(frame.payload);
  }
  if (frame.type == MsgType::kError) {
    Status error;
    const Status decoded = DecodeError(frame.payload, &error);
    first_error_ = decoded.ok() ? error : decoded;
    return first_error_;
  }
  first_error_ = Status::Internal(
      "expected a stats frame, got type " +
      std::to_string(static_cast<unsigned>(frame.type)));
  return first_error_;
}

StatusOr<obs::MetricsSnapshot> NetClient::Metrics() {
  TCDP_RETURN_IF_ERROR(Drain());
  std::string bytes;
  AppendFrame(&bytes, MsgType::kMetrics, std::string());
  TCDP_RETURN_IF_ERROR(SendAll(bytes));
  ++requests_sent_;
  Frame frame;
  TCDP_RETURN_IF_ERROR(ReadFrame(&frame));
  if (frame.type == MsgType::kMetricsReport) {
    return obs::DecodeMetricsSnapshot(frame.payload);
  }
  if (frame.type == MsgType::kError) {
    Status error;
    const Status decoded = DecodeError(frame.payload, &error);
    first_error_ = decoded.ok() ? error : decoded;
    return first_error_;
  }
  first_error_ = Status::Internal(
      "expected a metrics frame, got type " +
      std::to_string(static_cast<unsigned>(frame.type)));
  return first_error_;
}

StatusOr<std::string> NetClient::TraceDump() {
  TCDP_RETURN_IF_ERROR(Drain());
  std::string bytes;
  AppendFrame(&bytes, MsgType::kTraceDump, std::string());
  TCDP_RETURN_IF_ERROR(SendAll(bytes));
  ++requests_sent_;
  Frame frame;
  TCDP_RETURN_IF_ERROR(ReadFrame(&frame));
  if (frame.type == MsgType::kTraceDumpReport) {
    return DecodeTraceDumpReport(frame.payload);
  }
  if (frame.type == MsgType::kError) {
    Status error;
    const Status decoded = DecodeError(frame.payload, &error);
    // "No --trace-out configured" does not latch: nothing about the
    // applied state is in doubt.
    return decoded.ok() ? error : decoded;
  }
  first_error_ = Status::Internal(
      "expected a trace dump frame, got type " +
      std::to_string(static_cast<unsigned>(frame.type)));
  return first_error_;
}

StatusOr<WireHealthReport> NetClient::ProbeHealth(MsgType type) {
  TCDP_RETURN_IF_ERROR(Drain());
  std::string bytes;
  AppendFrame(&bytes, type, std::string());
  TCDP_RETURN_IF_ERROR(SendAll(bytes));
  ++requests_sent_;
  Frame frame;
  TCDP_RETURN_IF_ERROR(ReadFrame(&frame));
  if (frame.type == MsgType::kHealthReport) {
    return DecodeHealthReport(frame.payload);
  }
  if (frame.type == MsgType::kError) {
    Status error;
    const Status decoded = DecodeError(frame.payload, &error);
    // An errored probe (e.g. an old server that does not speak
    // kHealth) does not latch: monitoring keeps polling.
    return decoded.ok() ? error : decoded;
  }
  first_error_ = Status::Internal(
      "expected a health frame, got type " +
      std::to_string(static_cast<unsigned>(frame.type)));
  return first_error_;
}

StatusOr<WireHealthReport> NetClient::Health() {
  return ProbeHealth(MsgType::kHealth);
}

StatusOr<WireHealthReport> NetClient::Ready() {
  return ProbeHealth(MsgType::kReady);
}

Status NetClient::Shutdown() {
  TCDP_RETURN_IF_ERROR(SendPipelined(MsgType::kShutdown, std::string()));
  return Drain();
}

Status NetClient::Close() {
  if (fd_ < 0) return Status::OK();
  // Best-effort drain so pipelined acks are accounted; transport
  // errors here mean the server is already gone, which Close forgives.
  if (first_error_.ok() && outstanding_ > 0) (void)Drain();
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

}  // namespace net
}  // namespace tcdp
