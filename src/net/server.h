#ifndef TCDP_NET_SERVER_H_
#define TCDP_NET_SERVER_H_

/// \file
/// NetServer: the TCP ingress of the sharded release service.
///
///   clients ──► poll(2) readiness loop ──► FrameDecoder per conn
///                        │ complete request frames
///                        ▼
///              ShardedReleaseService (shard queues + workers)
///                        │ responses, in request order
///                        ▼
///              per-connection write buffer ──► socket
///
/// **Threading.** One I/O thread (the caller of Serve) owns every
/// socket and is the only thread that touches the service — which is
/// exactly the external serialization ShardedReleaseService requires.
/// Parallelism lives where it already exists: the service's shard
/// worker threads. Dispatching a release can block on a full shard
/// queue; that stall is the engine's backpressure propagating to the
/// wire, by design.
///
/// **Backpressure.** Each connection bounds (a) parsed-but-unanswered
/// request frames (`max_inflight`) and (b) buffered response bytes
/// (`max_write_buffer`). At either bound the server simply stops
/// reading that socket — TCP flow control pushes the queue back to the
/// client — and `stats().backpressure_pauses` counts the events.
///
/// **Trust.** Framing violations (bad magic/version, oversized length,
/// CRC mismatch) poison the stream; the connection is dropped without
/// a response. A well-framed but malformed payload gets a kError
/// response and then the connection is closed (the peer is confused
/// but the stream is still parseable). Service-level failures (unknown
/// user, duplicate join) are ordinary kError responses and the
/// connection stays open. None of these can corrupt accounting state:
/// a request either fully dispatches into the service or produces no
/// service call at all.
///
/// **Shutdown.** Stop() (thread-safe, e.g. from a signal handler path)
/// or a client kShutdown request ends Serve(): the listener closes,
/// buffered responses are flushed to connected peers, and every socket
/// is torn down. The service itself is NOT closed — that's the
/// owner's call.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/messages.h"
#include "net/wire.h"
#include "obs/watchdog.h"
#include "server/sharded_service.h"

namespace tcdp {
namespace net {

struct NetServerOptions {
  /// Bind address; loopback by default (there is no auth on the wire).
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  int listen_backlog = 64;
  std::size_t max_connections = 64;
  /// Parsed request frames a connection may have outstanding before
  /// the server stops reading its socket.
  std::size_t max_inflight = 64;
  /// Buffered response bytes per connection before reads pause.
  std::size_t max_write_buffer = 4u << 20;
  /// kTraceDump handler: dumps the server's trace ring to wherever the
  /// host configured (`tcdp serve --trace-out`) and returns the written
  /// path, carried back in kTraceDumpReport; the dump itself never
  /// crosses the wire (trace JSON can dwarf kMaxFramePayload). Unset
  /// means kTraceDump answers FailedPrecondition.
  std::function<StatusOr<std::string>()> on_trace_dump;
  /// kHealth/kReady source: the host's watchdog (not owned; must
  /// outlive Serve). Null degrades gracefully — the probes answer
  /// healthy/ready with a "no watchdog configured" reason, since a
  /// responding event loop is itself the liveness floor.
  const obs::Watchdog* watchdog = nullptr;
  /// Extra liveness probe ANDed into kHealth (e.g. "WAL dir still
  /// writable"). Runs on the I/O thread; keep it cheap.
  std::function<Status()> health_probe;
};

struct NetServerStats {
  std::uint64_t connections_accepted = 0;
  /// accept(2) failures survived (e.g. EMFILE under fd pressure —
  /// the refused connection is the peer's problem, not the server's).
  std::uint64_t accept_failures = 0;
  /// Connections torn down for framing/payload protocol violations.
  std::uint64_t connections_dropped = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Times a connection's reads were paused at an in-flight or
  /// write-buffer bound.
  std::uint64_t backpressure_pauses = 0;
};

class NetServer {
 public:
  /// Binds and listens. \p service must outlive the server and must
  /// not be used by other threads while Serve runs.
  static StatusOr<std::unique_ptr<NetServer>> Listen(
      server::ShardedReleaseService* service, NetServerOptions options = {});

  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  std::uint16_t port() const { return port_; }

  /// Runs the readiness loop on the calling thread until Stop() or a
  /// kShutdown request. Returns the first I/O-loop error, or OK on a
  /// clean shutdown. Call at most once.
  Status Serve();

  /// Requests shutdown from any thread; Serve() returns soon after.
  /// Idempotent, and safe before/without Serve().
  void Stop();

  /// Counters; read after Serve() returns (not synchronized while the
  /// loop runs).
  const NetServerStats& stats() const { return stats_; }

 private:
  struct Connection;

  NetServer(server::ShardedReleaseService* service, NetServerOptions options);

  void AcceptOne();
  /// Reads once from \p conn; false when the connection must close.
  bool ReadFrom(Connection* conn);
  /// Dispatches parsed frames up to the backpressure bounds.
  void ProcessFrames(Connection* conn);
  /// One request frame -> one queued response. A payload-level
  /// protocol violation marks the connection close_after_flush.
  void HandleFrame(Connection* conn, MsgType type,
                   const std::string& payload);
  bool WriteTo(Connection* conn);
  /// Assembles the kHealth/kReady answer from the watchdog snapshot
  /// plus the host's extra probe. Never touches the service — a health
  /// check must not queue behind the very shards it is diagnosing.
  WireHealthReport BuildHealthReport() const;

  server::ShardedReleaseService* service_;  // not owned
  NetServerOptions options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   ///< self-pipe: Stop() wakes poll()
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  bool stopping_ = false;
  bool served_ = false;
  std::vector<std::unique_ptr<Connection>> connections_;
  NetServerStats stats_;
};

}  // namespace net
}  // namespace tcdp

#endif  // TCDP_NET_SERVER_H_
