#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/messages.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tcdp {
namespace net {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Net-frontend instruments: request latency broken down by request
/// type, decode/protocol failures, and live-connection / in-flight
/// depth gauges.
struct NetObs {
  obs::Counter* decode_errors;
  obs::Gauge* connections;
  obs::Gauge* inflight;
  static const NetObs& Get() {
    static const NetObs instruments = [] {
      obs::Registry& registry = obs::Registry::Default();
      NetObs o;
      o.decode_errors = registry.GetCounter("tcdp_net_decode_errors_total");
      o.connections = registry.GetGauge("tcdp_net_connections");
      o.inflight = registry.GetGauge("tcdp_net_inflight_frames");
      return o;
    }();
    return instruments;
  }
};

const char* RequestTypeName(MsgType type) {
  switch (type) {
    case MsgType::kJoin:
      return "join";
    case MsgType::kRelease:
      return "release";
    case MsgType::kReleaseAll:
      return "release_all";
    case MsgType::kFlush:
      return "flush";
    case MsgType::kSnapshot:
      return "snapshot";
    case MsgType::kQuery:
      return "query";
    case MsgType::kStats:
      return "stats";
    case MsgType::kShutdown:
      return "shutdown";
    case MsgType::kCompact:
      return "compact";
    case MsgType::kMetrics:
      return "metrics";
    case MsgType::kTraceDump:
      return "trace_dump";
    case MsgType::kHealth:
      return "health";
    case MsgType::kReady:
      return "ready";
    default:
      return "other";
  }
}

obs::Histogram* RequestLatency(MsgType type) {
  // One histogram per request type, resolved lazily into a fixed
  // table ("other" absorbs unexpected type bytes so it stays bounded).
  static std::atomic<obs::Histogram*> table[256] = {};
  std::atomic<obs::Histogram*>& slot = table[static_cast<std::uint8_t>(type)];
  obs::Histogram* histogram = slot.load(std::memory_order_acquire);
  if (histogram == nullptr) {
    histogram = obs::Registry::Default().GetHistogram(obs::WithLabel(
        "tcdp_net_request_seconds", "type", RequestTypeName(type)));
    slot.store(histogram, std::memory_order_release);
  }
  return histogram;
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct NetServer::Connection {
  int fd = -1;
  FrameDecoder decoder;
  std::string out;
  std::size_t out_offset = 0;  ///< sent prefix of out
  /// Peer half-closed its write side; finish pending work, flush, close.
  bool peer_closed = false;
  /// Close once the write buffer drains (set after a payload-level
  /// protocol violation was answered with kError).
  bool close_after_flush = false;
  bool paused = false;  ///< reads suspended by backpressure

  ~Connection() { CloseFd(&fd); }

  std::size_t pending_out() const { return out.size() - out_offset; }
};

NetServer::NetServer(server::ShardedReleaseService* service,
                     NetServerOptions options)
    : service_(service), options_(std::move(options)) {}

NetServer::~NetServer() {
  CloseFd(&listen_fd_);
  CloseFd(&wake_read_fd_);
  CloseFd(&wake_write_fd_);
}

StatusOr<std::unique_ptr<NetServer>> NetServer::Listen(
    server::ShardedReleaseService* service, NetServerOptions options) {
  if (service == nullptr) {
    return Status::InvalidArgument("NetServer::Listen: null service");
  }
  std::unique_ptr<NetServer> server(
      new NetServer(service, std::move(options)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.host.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("NetServer::Listen: bad IPv4 host '" +
                                   server->options_.host + "'");
  }

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  (void)::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind " + server->options_.host + ":" +
                       std::to_string(server->options_.port));
  }
  if (::listen(server->listen_fd_, server->options_.listen_backlog) != 0) {
    return ErrnoStatus("listen");
  }
  // Non-blocking: poll() readiness is only a hint — a pending
  // connection can be RST away between poll and accept, and a blocking
  // accept would then freeze the whole I/O loop until someone else
  // connects.
  SetNonBlocking(server->listen_fd_);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return ErrnoStatus("getsockname");
  }
  server->port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return ErrnoStatus("pipe");
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(server->wake_read_fd_);
  return server;
}

void NetServer::Stop() {
  // A single byte on the self-pipe; the loop reads it and latches
  // stopping_. Safe to call multiple times and before Serve().
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
    (void)ignored;
  }
}

void NetServer::AcceptOne() {
  sockaddr_in peer{};
  socklen_t peer_len = sizeof(peer);
  const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                          &peer_len);
  if (fd < 0) {
    // Every accept failure is treated as transient: aborting Serve()
    // for EMFILE/ENFILE (fd pressure refusing ONE connection) would
    // tear down every healthy established connection with it.
    if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != ECONNABORTED) {
      ++stats_.accept_failures;
    }
    return;
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetNonBlocking(fd);
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  AppendPreamble(&conn->out);
  connections_.push_back(std::move(conn));
  ++stats_.connections_accepted;
}

bool NetServer::ReadFrom(Connection* conn) {
  char buffer[64 * 1024];
  const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
  if (n < 0) {
    return errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK;
  }
  if (n == 0) {
    conn->peer_closed = true;
    return true;
  }
  stats_.bytes_in += static_cast<std::uint64_t>(n);
  const Status fed = conn->decoder.Feed(buffer, static_cast<std::size_t>(n));
  if (!fed.ok()) {
    // Framing violation: the stream position is untrustworthy, so no
    // response can be addressed to a request — drop the connection.
    ++stats_.connections_dropped;
    if (obs::MetricsEnabled()) NetObs::Get().decode_errors->Increment();
    return false;
  }
  return true;
}

void NetServer::ProcessFrames(Connection* conn) {
  while (conn->decoder.has_frame() && !conn->close_after_flush) {
    if (conn->pending_out() >= options_.max_write_buffer) break;
    const Frame frame = conn->decoder.PopFrame();
    HandleFrame(conn, frame.type, frame.payload);
  }
}

void NetServer::HandleFrame(Connection* conn, MsgType type,
                            const std::string& payload) {
  ++stats_.requests;
  obs::ScopedLatencyTimer request_timer(RequestLatency(type));
  obs::ScopedSpan request_span("request", "net",
                               static_cast<std::uint64_t>(type));
  // A payload that decodes but fails in the service is an application
  // error: report it and keep serving. A payload that does not decode
  // (or a non-request type) is a protocol violation: report it and
  // close once the report flushes.
  Status applied = Status::OK();
  bool violation = false;
  // Empty-payload request types really must be empty ("every decoder
  // is total" includes the trivial one): junk bytes mean the peer is
  // misframing, which is a tier-2 violation, not a silent pass.
  if ((type == MsgType::kFlush || type == MsgType::kSnapshot ||
       type == MsgType::kCompact || type == MsgType::kStats ||
       type == MsgType::kShutdown || type == MsgType::kMetrics ||
       type == MsgType::kTraceDump || type == MsgType::kHealth ||
       type == MsgType::kReady) &&
      !payload.empty()) {
    AppendFrame(&conn->out, MsgType::kError,
                EncodeError(Status::InvalidArgument(
                    "request type " +
                    std::to_string(static_cast<unsigned>(type)) +
                    " carries a non-empty payload")));
    ++stats_.responses;
    conn->close_after_flush = true;
    ++stats_.connections_dropped;
    if (obs::MetricsEnabled()) NetObs::Get().decode_errors->Increment();
    return;
  }
  switch (type) {
    case MsgType::kJoin: {
      auto request = DecodeJoin(payload);
      if (!request.ok()) {
        applied = request.status();
        violation = true;
        break;
      }
      applied = service_->Join(request->name,
                               std::move(request->image.correlations));
      break;
    }
    case MsgType::kRelease: {
      auto request = DecodeRelease(payload);
      if (!request.ok()) {
        applied = request.status();
        violation = true;
        break;
      }
      applied = service_->Release(request->name, request->epsilon);
      break;
    }
    case MsgType::kReleaseAll: {
      auto epsilon = DecodeReleaseAll(payload);
      if (!epsilon.ok()) {
        applied = epsilon.status();
        violation = true;
        break;
      }
      applied = service_->ReleaseAll(*epsilon);
      break;
    }
    case MsgType::kFlush:
      applied = service_->Flush();
      break;
    case MsgType::kSnapshot:
      applied = service_->Snapshot();
      break;
    case MsgType::kCompact:
      applied = service_->Compact();
      break;
    case MsgType::kQuery: {
      auto name = DecodeName(payload);
      if (!name.ok()) {
        applied = name.status();
        violation = true;
        break;
      }
      auto report = service_->Query(*name);
      if (report.ok()) {
        const std::string encoded = EncodeReport(*report);
        if (encoded.size() > kMaxFramePayload) {
          // A report for a very long series can outgrow a legal frame;
          // answering with an error beats emitting a frame the peer's
          // decoder must reject (which would poison the whole stream).
          applied = Status::ResourceExhausted(
              "report for '" + *name + "' exceeds the frame size limit");
          break;
        }
        AppendFrame(&conn->out, MsgType::kReport, encoded);
        ++stats_.responses;
        return;
      }
      applied = report.status();
      break;
    }
    case MsgType::kStats: {
      WireServiceStats stats;
      stats.num_shards = service_->num_shards();
      stats.num_users = service_->num_users();
      stats.horizon = service_->horizon();
      const server::ServiceStats& service_stats = service_->stats();
      stats.join_requests = service_stats.join_requests;
      stats.release_requests = service_stats.release_requests;
      stats.ticks = service_stats.ticks;
      stats.global_releases = service_stats.global_releases;
      for (std::size_t s = 0; s < service_->num_shards(); ++s) {
        const server::ShardStats shard = service_->shard_stats(s);
        WireShardStats wire;
        wire.users = shard.users;
        wire.horizon = shard.horizon;
        wire.wal_records = shard.wal_records;
        wire.wal_bytes = shard.wal_bytes;
        wire.snapshots_written = shard.snapshots_written;
        wire.queue_depth = shard.queue_depth;
        wire.enqueue_blocks = shard.enqueue_blocks;
        stats.shards.push_back(wire);
      }
      const std::string encoded = EncodeStatsReport(stats);
      if (encoded.size() > kMaxFramePayload) {
        applied = Status::ResourceExhausted(
            "stats report exceeds the frame size limit");
        break;
      }
      AppendFrame(&conn->out, MsgType::kStatsReport, encoded);
      ++stats_.responses;
      return;
    }
    case MsgType::kMetrics: {
      const std::string encoded =
          obs::EncodeMetricsSnapshot(obs::Registry::Default().Snapshot());
      if (encoded.size() > kMaxFramePayload) {
        applied = Status::ResourceExhausted(
            "metrics snapshot exceeds the frame size limit");
        break;
      }
      AppendFrame(&conn->out, MsgType::kMetricsReport, encoded);
      ++stats_.responses;
      return;
    }
    case MsgType::kTraceDump: {
      if (!options_.on_trace_dump) {
        applied = Status::FailedPrecondition(
            "server has no trace output configured (start it with "
            "--trace-out)");
        break;
      }
      StatusOr<std::string> path = options_.on_trace_dump();
      if (!path.ok()) {
        applied = path.status();
        break;
      }
      AppendFrame(&conn->out, MsgType::kTraceDumpReport,
                  EncodeTraceDumpReport(*path));
      ++stats_.responses;
      return;
    }
    case MsgType::kHealth:
    case MsgType::kReady: {
      const std::string encoded =
          EncodeHealthReport(BuildHealthReport());
      // A health report is bounded by the heartbeat count (a handful of
      // components), far inside kMaxFramePayload.
      AppendFrame(&conn->out, MsgType::kHealthReport, encoded);
      ++stats_.responses;
      return;
    }
    case MsgType::kShutdown:
      stopping_ = true;
      break;
    default:
      applied = Status::InvalidArgument(
          "unexpected frame type " +
          std::to_string(static_cast<unsigned>(type)));
      violation = true;
      break;
  }
  if (applied.ok()) {
    AppendFrame(&conn->out, MsgType::kOk, std::string());
  } else {
    AppendFrame(&conn->out, MsgType::kError, EncodeError(applied));
  }
  ++stats_.responses;
  if (violation) {
    conn->close_after_flush = true;
    ++stats_.connections_dropped;
    if (obs::MetricsEnabled()) NetObs::Get().decode_errors->Increment();
  }
}

bool NetServer::WriteTo(Connection* conn) {
  while (conn->pending_out() > 0) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->pending_out(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;  // EPIPE/ECONNRESET: peer is gone
    }
    conn->out_offset += static_cast<std::size_t>(n);
    stats_.bytes_out += static_cast<std::uint64_t>(n);
  }
  // Reclaim the sent prefix once it dominates, like FrameDecoder's
  // read-side compaction: a connection that is never fully drained
  // (steady pipelining against a slow reader) must not accumulate
  // every byte it ever sent. The proportional condition keeps the
  // erase amortized O(1) per byte even with a multi-MB backlog.
  if (conn->out_offset == conn->out.size() ||
      (conn->out_offset >= 4096 &&
       conn->out_offset * 2 >= conn->out.size())) {
    conn->out.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
  return true;
}

Status NetServer::Serve() {
  if (served_) {
    return Status::FailedPrecondition("NetServer::Serve already ran");
  }
  served_ = true;
  // The event-loop heartbeat: touched every poll round (the 100ms
  // timeout is the natural cadence), beaten when work was dispatched.
  // The watchdog reads staleness here as "the I/O thread is wedged" —
  // e.g. blocked in a full shard queue's Push.
  obs::HeartbeatInfo heartbeat_info;
  heartbeat_info.name = "net-io";
  heartbeat_info.kind = obs::HeartbeatKind::kEventLoop;
  heartbeat_info.expected_period_ns = 100ull * 1000000ull;
  obs::HeartbeatHandle heartbeat =
      obs::HeartbeatRegistry::Default().Register(std::move(heartbeat_info));
  std::vector<pollfd> fds;
  std::vector<Connection*> polled;
  int stop_grace_rounds = 0;
  while (true) {
    // Once stopping: no accepts, no reads — just flush what's queued
    // and leave. Connections with nothing pending close immediately; a
    // peer that never drains its responses is abandoned after a
    // bounded grace (50 poll rounds of 100 ms).
    if (stopping_) {
      bool flushing = false;
      for (auto& conn : connections_) {
        if (conn->pending_out() > 0) flushing = true;
      }
      if (!flushing || ++stop_grace_rounds > 50) break;
    }

    fds.clear();
    polled.clear();
    if (!stopping_ && connections_.size() < options_.max_connections) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    } else {
      fds.push_back(pollfd{-1, 0, 0});
    }
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    for (auto& conn : connections_) {
      short events = 0;
      // Backpressure: a connection at its in-flight or write-buffer
      // bound is not read until it drains.
      const bool at_bound =
          conn->decoder.queued_frames() >= options_.max_inflight ||
          conn->pending_out() >= options_.max_write_buffer;
      if (at_bound && !conn->paused) {
        conn->paused = true;
        ++stats_.backpressure_pauses;
      }
      if (!at_bound) conn->paused = false;
      if (!stopping_ && !at_bound && !conn->peer_closed &&
          !conn->close_after_flush) {
        events |= POLLIN;
      }
      if (conn->pending_out() > 0) events |= POLLOUT;
      fds.push_back(pollfd{conn->fd, events, 0});
      polled.push_back(conn.get());
    }

    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (ready > 0) {
      heartbeat.Beat();
    } else {
      heartbeat.Touch();
    }

    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
      stopping_ = true;
      continue;
    }
    if (fds[0].revents & POLLIN) {
      AcceptOne();
    }

    for (std::size_t i = 0; i < polled.size(); ++i) {
      Connection* conn = polled[i];
      const short revents = fds[i + 2].revents;
      bool alive = true;
      if (alive && (revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !conn->peer_closed && !conn->close_after_flush) {
        alive = ReadFrom(conn);
      }
      if (alive) ProcessFrames(conn);
      if (alive && conn->pending_out() > 0) alive = WriteTo(conn);
      // A close_after_flush connection ignores its remaining parsed
      // frames (they were never going to be answered); a peer-closed
      // one still gets them processed above before the close.
      const bool drained =
          conn->pending_out() == 0 &&
          (conn->close_after_flush || !conn->decoder.has_frame());
      if (alive && (conn->peer_closed || conn->close_after_flush) &&
          drained) {
        alive = false;
      }
      if (!alive) CloseFd(&conn->fd);
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& conn) {
                         return conn->fd < 0;
                       }),
        connections_.end());
    if (obs::MetricsEnabled()) {
      std::size_t inflight = 0;
      for (const auto& conn : connections_) {
        inflight += conn->decoder.queued_frames();
      }
      NetObs::Get().connections->Set(
          static_cast<std::int64_t>(connections_.size()));
      NetObs::Get().inflight->Set(static_cast<std::int64_t>(inflight));
    }
  }
  connections_.clear();
  CloseFd(&listen_fd_);
  return Status::OK();
}

WireHealthReport NetServer::BuildHealthReport() const {
  WireHealthReport report;
  if (options_.watchdog == nullptr) {
    // A server that can run this code has a live event loop; with no
    // watchdog that is all the liveness evidence there is.
    report.healthy = true;
    report.ready = true;
    report.reason = "no watchdog configured";
  } else {
    const obs::HealthSnapshot snapshot = options_.watchdog->Snapshot();
    report.healthy = snapshot.healthy;
    report.ready = snapshot.ready;
    report.scans = snapshot.scans;
    report.components.reserve(snapshot.components.size());
    for (const obs::ComponentHealth& component : snapshot.components) {
      WireComponentHealth wire;
      wire.name = component.name;
      wire.kind = static_cast<std::uint64_t>(component.kind);
      wire.stalled = component.stalled;
      wire.progress = component.progress;
      wire.pending = component.pending;
      wire.age_ns = component.age_ns;
      wire.detail = component.detail;
      if (component.stalled && report.reason.empty()) {
        report.reason = component.name + ": " + component.detail;
      }
      report.components.push_back(std::move(wire));
    }
    if (!report.ready && report.reason.empty()) {
      report.reason = snapshot.healthy ? "not ready (recovery incomplete)"
                                       : "unhealthy";
    }
  }
  if (options_.health_probe) {
    const Status probed = options_.health_probe();
    if (!probed.ok()) {
      report.healthy = false;
      report.ready = false;
      report.reason = probed.message();
    }
  }
  return report;
}

}  // namespace net
}  // namespace tcdp
