#include "net/messages.h"

#include <cmath>

#include "common/binary_io.h"

namespace tcdp {
namespace net {
namespace {

Status ExpectConsumed(const BinaryCursor& cursor, const char* what) {
  if (!cursor.empty()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": trailing bytes in payload");
  }
  return Status::OK();
}

Status CheckEpsilon(double epsilon, const char* what) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(std::string(what) +
                                   ": epsilon not finite and > 0");
  }
  return Status::OK();
}

/// Reads a varint element count followed by that many raw-bits doubles.
/// The count is validated against the bytes actually present before
/// anything is reserved.
Status ReadDoubleSeries(BinaryCursor* cursor, const char* what,
                        std::vector<double>* out) {
  std::uint64_t count = 0;
  TCDP_RETURN_IF_ERROR(cursor->ReadVarint64(&count));
  if (count > cursor->remaining() / sizeof(double)) {
    return Status::InvalidArgument(std::string(what) +
                                   ": series count exceeds payload");
  }
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    double value = 0.0;
    TCDP_RETURN_IF_ERROR(cursor->ReadDoubleBits(&value));
    out->push_back(value);
  }
  return Status::OK();
}

void PutDoubleSeries(std::string* dst, const std::vector<double>& series) {
  PutVarint64(dst, series.size());
  for (double value : series) PutDoubleBits(dst, value);
}

}  // namespace

std::string EncodeJoin(const std::string& name,
                       const TemporalCorrelations& correlations) {
  server::AddUserRecord record;
  record.name = name;
  record.image.correlations = correlations;
  // The server replaces the resolution with its own cache's; what the
  // client believes about quantization is irrelevant to the request.
  record.image.cache_alpha_resolution = -1.0;
  return server::EncodeAddUser(record);
}

StatusOr<server::AddUserRecord> DecodeJoin(const std::string& payload) {
  return server::DecodeAddUser(payload);
}

std::string EncodeRelease(const std::string& name, double epsilon) {
  std::string out;
  PutLengthPrefixed(&out, name);
  PutDoubleBits(&out, epsilon);
  return out;
}

StatusOr<ReleaseRequest> DecodeRelease(const std::string& payload) {
  BinaryCursor cursor(payload);
  ReleaseRequest request;
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&request.name));
  TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&request.epsilon));
  TCDP_RETURN_IF_ERROR(CheckEpsilon(request.epsilon, "DecodeRelease"));
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeRelease"));
  return request;
}

std::string EncodeReleaseAll(double epsilon) {
  std::string out;
  PutDoubleBits(&out, epsilon);
  return out;
}

StatusOr<double> DecodeReleaseAll(const std::string& payload) {
  BinaryCursor cursor(payload);
  double epsilon = 0.0;
  TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&epsilon));
  TCDP_RETURN_IF_ERROR(CheckEpsilon(epsilon, "DecodeReleaseAll"));
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeReleaseAll"));
  return epsilon;
}

std::string EncodeName(const std::string& name) {
  std::string out;
  PutLengthPrefixed(&out, name);
  return out;
}

StatusOr<std::string> DecodeName(const std::string& payload) {
  BinaryCursor cursor(payload);
  std::string name;
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&name));
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeName"));
  return name;
}

std::string EncodeError(const Status& status) {
  std::string out;
  PutVarint64(&out, static_cast<std::uint64_t>(status.code()));
  PutLengthPrefixed(&out, status.message());
  return out;
}

Status DecodeError(const std::string& payload, Status* error) {
  BinaryCursor cursor(payload);
  std::uint64_t code = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&code));
  if (code == 0 ||
      code > static_cast<std::uint64_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("DecodeError: unknown status code " +
                                   std::to_string(code));
  }
  std::string message;
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&message));
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeError"));
  *error = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

std::string EncodeReport(const server::UserReport& report) {
  std::string out;
  PutLengthPrefixed(&out, report.name);
  PutVarint64(&out, report.shard);
  PutVarint64(&out, report.join_release);
  PutVarint64(&out, report.horizon);
  PutDoubleBits(&out, report.max_tpl);
  PutDoubleBits(&out, report.user_level_tpl);
  PutDoubleSeries(&out, report.epsilons);
  PutDoubleSeries(&out, report.tpl_series);
  return out;
}

StatusOr<server::UserReport> DecodeReport(const std::string& payload) {
  BinaryCursor cursor(payload);
  server::UserReport report;
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&report.name));
  std::uint64_t shard = 0;
  std::uint64_t join_release = 0;
  std::uint64_t horizon = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&shard));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&join_release));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&horizon));
  report.shard = static_cast<std::size_t>(shard);
  report.join_release = static_cast<std::size_t>(join_release);
  report.horizon = static_cast<std::size_t>(horizon);
  TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&report.max_tpl));
  TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&report.user_level_tpl));
  TCDP_RETURN_IF_ERROR(
      ReadDoubleSeries(&cursor, "DecodeReport", &report.epsilons));
  TCDP_RETURN_IF_ERROR(
      ReadDoubleSeries(&cursor, "DecodeReport", &report.tpl_series));
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeReport"));
  return report;
}

std::string EncodeStatsReport(const WireServiceStats& stats) {
  std::string out;
  PutVarint64(&out, stats.num_shards);
  PutVarint64(&out, stats.num_users);
  PutVarint64(&out, stats.horizon);
  PutVarint64(&out, stats.join_requests);
  PutVarint64(&out, stats.release_requests);
  PutVarint64(&out, stats.ticks);
  PutVarint64(&out, stats.global_releases);
  PutVarint64(&out, stats.shards.size());
  for (const WireShardStats& shard : stats.shards) {
    PutVarint64(&out, shard.users);
    PutVarint64(&out, shard.horizon);
    PutVarint64(&out, shard.wal_records);
    PutVarint64(&out, shard.wal_bytes);
    PutVarint64(&out, shard.snapshots_written);
    PutVarint64(&out, shard.queue_depth);
    PutVarint64(&out, shard.enqueue_blocks);
  }
  return out;
}

StatusOr<WireServiceStats> DecodeStatsReport(const std::string& payload) {
  BinaryCursor cursor(payload);
  WireServiceStats stats;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&stats.num_shards));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&stats.num_users));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&stats.horizon));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&stats.join_requests));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&stats.release_requests));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&stats.ticks));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&stats.global_releases));
  std::uint64_t shard_count = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&shard_count));
  // Each shard row is at least 7 one-byte varints.
  if (shard_count > cursor.remaining() / 7) {
    return Status::InvalidArgument(
        "DecodeStatsReport: shard count exceeds payload");
  }
  stats.shards.resize(static_cast<std::size_t>(shard_count));
  for (WireShardStats& shard : stats.shards) {
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&shard.users));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&shard.horizon));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&shard.wal_records));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&shard.wal_bytes));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&shard.snapshots_written));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&shard.queue_depth));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&shard.enqueue_blocks));
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeStatsReport"));
  return stats;
}

std::string EncodeHealthReport(const WireHealthReport& report) {
  std::string out;
  PutVarint64(&out, report.healthy ? 1 : 0);
  PutVarint64(&out, report.ready ? 1 : 0);
  PutVarint64(&out, report.scans);
  PutLengthPrefixed(&out, report.reason);
  PutVarint64(&out, report.components.size());
  for (const WireComponentHealth& component : report.components) {
    PutLengthPrefixed(&out, component.name);
    PutVarint64(&out, component.kind);
    PutVarint64(&out, component.stalled ? 1 : 0);
    PutVarint64(&out, component.progress);
    PutVarint64(&out, component.pending);
    PutVarint64(&out, component.age_ns);
    PutLengthPrefixed(&out, component.detail);
  }
  return out;
}

StatusOr<WireHealthReport> DecodeHealthReport(const std::string& payload) {
  BinaryCursor cursor(payload);
  WireHealthReport report;
  std::uint64_t healthy = 0;
  std::uint64_t ready = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&healthy));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&ready));
  if (healthy > 1 || ready > 1) {
    return Status::InvalidArgument("DecodeHealthReport: flag not 0/1");
  }
  report.healthy = healthy == 1;
  report.ready = ready == 1;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&report.scans));
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&report.reason));
  std::uint64_t count = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&count));
  // Each component row is at least 7 one-byte fields.
  if (count > cursor.remaining() / 7) {
    return Status::InvalidArgument(
        "DecodeHealthReport: component count exceeds payload");
  }
  report.components.resize(static_cast<std::size_t>(count));
  for (WireComponentHealth& component : report.components) {
    TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&component.name));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&component.kind));
    std::uint64_t stalled = 0;
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&stalled));
    if (component.kind > 2 || stalled > 1) {
      return Status::InvalidArgument(
          "DecodeHealthReport: component kind/stalled out of range");
    }
    component.stalled = stalled == 1;
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&component.progress));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&component.pending));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&component.age_ns));
    TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&component.detail));
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeHealthReport"));
  return report;
}

std::string EncodeTraceDumpReport(const std::string& path) {
  std::string out;
  PutLengthPrefixed(&out, path);
  return out;
}

StatusOr<std::string> DecodeTraceDumpReport(const std::string& payload) {
  BinaryCursor cursor(payload);
  std::string path;
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&path));
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeTraceDumpReport"));
  return path;
}

}  // namespace net
}  // namespace tcdp
