#ifndef TCDP_NET_MESSAGES_H_
#define TCDP_NET_MESSAGES_H_

/// \file
/// Typed payload codecs for the network frame types (net/wire.h owns
/// the framing; this file owns what goes inside), mirroring the split
/// between server/event_log.h and server/records.h.
///
/// Wire conventions are the durable formats' (common/binary_io):
/// little-endian fixed ints, LEB128 varints, doubles as raw IEEE-754
/// bits — which is what makes a series fetched over the network
/// bitwise comparable to the in-process one. A Join payload IS the
/// WAL's AddUser record (server/records), so the correlation matrices
/// travel in the same "tcdp-accountant-v2" grammar everywhere.
///
/// Every decoder is total: truncated or corrupted payloads (those that
/// survive the frame CRC) come back as Status, never UB, and decoded
/// counts are validated against the payload size before reserving.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/records.h"
#include "server/sharded_service.h"

namespace tcdp {
namespace net {

/// kRelease request: one user spends epsilon at the next batch tick.
struct ReleaseRequest {
  std::string name;
  double epsilon = 0.0;
};

/// kStatsReport response: the service counters plus per-shard depth /
/// backpressure / WAL gauges (the network face of `tcdp serve` stats).
struct WireShardStats {
  std::uint64_t users = 0;
  std::uint64_t horizon = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t queue_depth = 0;      ///< sampled at request time
  std::uint64_t enqueue_blocks = 0;   ///< Pushes that had to wait
};

struct WireServiceStats {
  std::uint64_t num_shards = 0;
  std::uint64_t num_users = 0;
  std::uint64_t horizon = 0;
  std::uint64_t join_requests = 0;
  std::uint64_t release_requests = 0;
  std::uint64_t ticks = 0;
  std::uint64_t global_releases = 0;
  std::vector<WireShardStats> shards;
};

/// kJoin reuses the WAL AddUser codec verbatim: name + a history-free
/// "tcdp-accountant-v2" correlation blob.
std::string EncodeJoin(const std::string& name,
                       const TemporalCorrelations& correlations);
StatusOr<server::AddUserRecord> DecodeJoin(const std::string& payload);

std::string EncodeRelease(const std::string& name, double epsilon);
StatusOr<ReleaseRequest> DecodeRelease(const std::string& payload);

std::string EncodeReleaseAll(double epsilon);
StatusOr<double> DecodeReleaseAll(const std::string& payload);

/// Shared by kQuery (request) — a bare length-prefixed user name.
std::string EncodeName(const std::string& name);
StatusOr<std::string> DecodeName(const std::string& payload);

/// kError carries a Status by value. The return value is the decode
/// result; \p error receives the server-reported status on success.
std::string EncodeError(const Status& status);
Status DecodeError(const std::string& payload, Status* error);

std::string EncodeReport(const server::UserReport& report);
StatusOr<server::UserReport> DecodeReport(const std::string& payload);

std::string EncodeStatsReport(const WireServiceStats& stats);
StatusOr<WireServiceStats> DecodeStatsReport(const std::string& payload);

/// kHealthReport response: the watchdog's classification, answering
/// both kHealth (liveness) and kReady (readiness) probes.
struct WireComponentHealth {
  std::string name;
  std::uint64_t kind = 0;  ///< obs::HeartbeatKind numeric value
  bool stalled = false;
  std::uint64_t progress = 0;
  std::uint64_t pending = 0;
  std::uint64_t age_ns = 0;
  std::string detail;  ///< stall classification; empty when healthy
};

struct WireHealthReport {
  bool healthy = false;
  bool ready = false;
  std::uint64_t scans = 0;    ///< watchdog scans completed
  std::string reason;         ///< first failure explanation; "" if ok
  std::vector<WireComponentHealth> components;
};

std::string EncodeHealthReport(const WireHealthReport& report);
StatusOr<WireHealthReport> DecodeHealthReport(const std::string& payload);

/// kTraceDumpReport response: the path the server wrote its trace ring
/// to (a bare length-prefixed string, same shape as a name payload).
std::string EncodeTraceDumpReport(const std::string& path);
StatusOr<std::string> DecodeTraceDumpReport(const std::string& payload);

}  // namespace net
}  // namespace tcdp

#endif  // TCDP_NET_MESSAGES_H_
