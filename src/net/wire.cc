#include "net/wire.h"

#include <cassert>
#include <cstring>

#include "common/binary_io.h"

namespace tcdp {
namespace net {
namespace {

/// Compact the consumed prefix once it is both sizable and a majority
/// of the buffer, so a long-lived connection doesn't grow its buffer
/// without bound while the erase stays O(1) amortized per byte (a
/// fixed threshold alone would re-move a large partial frame every
/// few KB).
constexpr std::size_t kCompactThreshold = 4096;

std::uint32_t DecodeFixed32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

void AppendPreamble(std::string* dst) {
  dst->append(kNetMagic, sizeof(kNetMagic));
  PutFixed32(dst, kProtocolVersion);
}

void AppendFrame(std::string* dst, MsgType type, const std::string& payload) {
  assert(payload.size() <= kMaxFramePayload);
  dst->push_back(static_cast<char>(type));
  PutFixed32(dst, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = Crc32(dst->data() + dst->size() - 5, 1);
  crc = Crc32(payload.data(), payload.size(), crc);
  PutFixed32(dst, crc);
  dst->append(payload);
}

Status FrameDecoder::Feed(const char* data, std::size_t size) {
  if (!error_.ok()) return error_;
  buffer_.append(data, size);
  error_ = Parse();
  return error_;
}

Status FrameDecoder::Parse() {
  for (;;) {
    const char* base = buffer_.data() + consumed_;
    const std::size_t available = buffer_.size() - consumed_;
    if (!preamble_done_) {
      if (available < kPreambleBytes) break;
      if (std::memcmp(base, kNetMagic, sizeof(kNetMagic)) != 0) {
        return Status::InvalidArgument("stream preamble: bad magic");
      }
      const std::uint32_t version =
          DecodeFixed32(base + sizeof(kNetMagic));
      if (version != kProtocolVersion) {
        return Status::InvalidArgument(
            "stream preamble: unsupported protocol version " +
            std::to_string(version));
      }
      consumed_ += kPreambleBytes;
      preamble_done_ = true;
      continue;
    }
    if (available < kFrameHeaderBytes) break;
    const std::uint32_t length = DecodeFixed32(base + 1);
    if (length > kMaxFramePayload) {
      return Status::InvalidArgument(
          "frame announces oversized payload (" + std::to_string(length) +
          " bytes)");
    }
    if (available < kFrameHeaderBytes + length) break;
    const std::uint32_t stored_crc = DecodeFixed32(base + 5);
    std::uint32_t crc = Crc32(base, 1);
    crc = Crc32(base + kFrameHeaderBytes, length, crc);
    if (crc != stored_crc) {
      return Status::InvalidArgument("frame CRC mismatch");
    }
    Frame frame;
    frame.type = static_cast<MsgType>(static_cast<unsigned char>(*base));
    frame.payload.assign(base + kFrameHeaderBytes, length);
    frames_.push_back(std::move(frame));
    consumed_ += kFrameHeaderBytes + length;
  }
  if (consumed_ == buffer_.size() ||
      (consumed_ >= kCompactThreshold && consumed_ * 2 >= buffer_.size())) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return Status::OK();
}

Frame FrameDecoder::PopFrame() {
  assert(!frames_.empty());
  Frame frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

}  // namespace net
}  // namespace tcdp
