#ifndef TCDP_NET_CLIENT_H_
#define TCDP_NET_CLIENT_H_

/// \file
/// NetClient: a blocking client for the tcdp network protocol.
///
/// Mutating requests (Join/Release/ReleaseAll) are **pipelined**: the
/// client sends up to `pipeline_depth` requests before reading the
/// oldest acknowledgement, which is what amortizes a network round
/// trip over a batch — the server answers strictly in request order,
/// so responses and requests re-associate by position. Flush, Query,
/// Stats, Snapshot, and Shutdown are synchronization points: they
/// drain every outstanding ack first, then wait for their own typed
/// response.
///
/// Error model: a server-reported error (kError frame) is returned
/// from the call whose request caused it — which for a pipelined call
/// may be a *later* Join/Release invocation — and latches: every
/// subsequent call returns the first error (the stream's request/
/// response pairing is fine, but the caller's view of applied state is
/// not, so the only sane continuation is none). Transport failures
/// (connect/read/write) are returned directly and also latch.
///
/// Thread-compatible: one thread per client, like the service itself.

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/temporal_correlations.h"
#include "net/messages.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace tcdp {
namespace net {

struct NetClientOptions {
  /// Max unacknowledged pipelined requests (1 = fully synchronous).
  std::size_t pipeline_depth = 1;
  /// Connection attempts before giving up (the server may still be
  /// binding when a client races it up).
  int connect_attempts = 20;
  int connect_retry_delay_ms = 50;
};

class NetClient {
 public:
  /// Connects (with retry), sends the stream preamble, and validates
  /// the server's.
  static StatusOr<std::unique_ptr<NetClient>> Connect(
      const std::string& host, std::uint16_t port,
      NetClientOptions options = {});

  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// \name Pipelined mutations (acked up to pipeline_depth behind).
  /// @{
  Status Join(const std::string& name,
              const TemporalCorrelations& correlations);
  Status Release(const std::string& name, double epsilon);
  Status ReleaseAll(double epsilon);
  /// @}

  /// \name Synchronization points (drain outstanding acks first).
  /// @{
  /// Server-side Flush: every prior request is applied on return.
  Status Flush();
  Status Snapshot();
  /// Server-side WAL compaction (durable services only).
  Status Compact();
  StatusOr<server::UserReport> Query(const std::string& name);
  StatusOr<WireServiceStats> Stats();
  /// The server's metrics snapshot (obs registry: counters, gauges,
  /// latency histograms) decoded from a kMetricsReport frame.
  StatusOr<obs::MetricsSnapshot> Metrics();
  /// Asks the server to dump its trace ring to its configured
  /// --trace-out path and returns that path (server-side; nothing
  /// crosses the wire but the path). FailedPrecondition when the
  /// server has no trace output — which, like a Query miss, does not
  /// latch: the applied state is not in doubt.
  StatusOr<std::string> TraceDump();
  /// Liveness probe: the watchdog's view (event loop responsive, all
  /// heartbeats fresh) plus the host's extra checks (WAL dir
  /// writable). Never queues behind the shard workers.
  StatusOr<WireHealthReport> Health();
  /// Readiness probe: recovery/preload complete AND healthy.
  StatusOr<WireHealthReport> Ready();
  /// Asks the server to stop serving (it acks, flushes, and exits its
  /// loop). The connection is unusable afterwards.
  Status Shutdown();
  /// Waits for every outstanding ack without a server-side flush.
  Status Drain();
  /// @}

  /// Drains, then closes the socket. Idempotent; run by the destructor
  /// (which discards the status).
  Status Close();

  std::size_t outstanding() const { return outstanding_; }
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t responses_received() const { return responses_received_; }

 private:
  NetClient(int fd, NetClientOptions options);

  /// Sends one framed request, reading acks when the pipeline is full.
  Status SendPipelined(MsgType type, const std::string& payload);
  /// Shared kHealth/kReady sync-point body.
  StatusOr<WireHealthReport> ProbeHealth(MsgType type);
  Status SendAll(const std::string& bytes);
  /// After a write failure, drains any already-received kError frame —
  /// the server's explanation for closing — and returns it in place of
  /// the generic \p transport status when one is found.
  Status SalvageServerError(Status transport);
  /// Blocks until one complete response frame is available.
  Status ReadFrame(Frame* frame);
  /// Reads one response that must be kOk/kError; kError latches.
  Status ReadAck();
  Status latched() const { return first_error_; }

  int fd_ = -1;
  NetClientOptions options_;
  FrameDecoder decoder_;
  std::size_t outstanding_ = 0;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t responses_received_ = 0;
  Status first_error_;
};

}  // namespace net
}  // namespace tcdp

#endif  // TCDP_NET_CLIENT_H_
