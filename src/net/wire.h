#ifndef TCDP_NET_WIRE_H_
#define TCDP_NET_WIRE_H_

/// \file
/// The tcdp network wire format: stream preamble + framed messages.
///
/// Every byte stream (each direction of a connection) begins with a
/// 12-byte preamble — 8-byte magic "TCDPNET1" followed by a fixed u32
/// little-endian protocol version — and then carries framed messages:
///
///   [u8 type][u32 payload_len LE][u32 crc32 LE][payload bytes]
///
/// This is deliberately the event log's framing (event_log.h) with the
/// WAL magic swapped for a network magic: the CRC covers the type byte
/// and the payload, payloads reuse the server/records codecs where the
/// shapes coincide, and a tool that can scan a WAL can scan a captured
/// stream. Payloads are bounded by kMaxFramePayload; a peer announcing
/// a larger frame is a protocol violation, not an allocation request.
///
/// FrameDecoder is the reassembly half: feed it whatever byte ranges
/// recv(2) hands you — including single bytes — and it yields complete
/// frames in order. The first malformed input (bad magic, unsupported
/// version, oversized length, CRC mismatch) poisons the decoder
/// permanently: framing errors mean the stream position can no longer
/// be trusted, so the only safe response is dropping the connection.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "common/status.h"

namespace tcdp {
namespace net {

inline constexpr char kNetMagic[8] = {'T', 'C', 'D', 'P',
                                      'N', 'E', 'T', '1'};
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Magic + u32 version.
inline constexpr std::size_t kPreambleBytes = 12;
/// Type byte + u32 length + u32 CRC.
inline constexpr std::size_t kFrameHeaderBytes = 9;
/// Hard upper bound on a frame payload (1 MiB comfortably holds the
/// largest legal message, a Report for a very long series).
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// Message types. Requests are < 64, responses >= 64. Values are part
/// of the protocol — append new ones, never renumber (PROTOCOL.md).
enum class MsgType : std::uint8_t {
  // Requests (client -> server). Each elicits exactly one response,
  // delivered in request order (pipelining relies on this).
  kJoin = 1,        ///< payload: server/records AddUser codec
  kRelease = 2,     ///< payload: name + epsilon
  kReleaseAll = 3,  ///< payload: epsilon
  kFlush = 4,       ///< empty payload
  kSnapshot = 5,    ///< empty payload
  kQuery = 6,       ///< payload: name
  kStats = 7,       ///< empty payload
  kShutdown = 8,    ///< empty payload; server acks then stops
  kCompact = 9,     ///< empty payload; flush + compact every shard WAL
  kMetrics = 10,    ///< empty payload; returns the metrics snapshot
  kTraceDump = 11,  ///< empty payload; server dumps its trace ring
  kHealth = 12,     ///< empty payload; liveness probe (watchdog state)
  kReady = 13,      ///< empty payload; readiness probe
  // Replication family (docs/REPLICATION.md). kSubscribe opens a log
  // stream on a primary's replication port; kAckHorizon frames then
  // flow follower -> primary as durability advances (pushes: no
  // response). kRouteLookup is answered by a router process.
  kSubscribe = 14,    ///< payload: per-shard replication cursor
  kAckHorizon = 15,   ///< payload: follower durable horizon (push)
  kRouteLookup = 16,  ///< payload: name; router answers kRouteReport

  // Responses (server -> client).
  kOk = 64,           ///< empty payload
  kError = 65,        ///< payload: status code + message
  kReport = 66,       ///< payload: one user's accounting
  kStatsReport = 67,  ///< payload: service + per-shard counters
  kMetricsReport = 68,    ///< payload: obs EncodeMetricsSnapshot blob
  kHealthReport = 69,     ///< payload: health flags + per-component rows
  kTraceDumpReport = 70,  ///< payload: path the trace ring was written to
  kSubscribeOk = 71,      ///< payload: shard count + directory manifest
  kLogBatch = 72,         ///< payload: one shard's WAL records (push)
  kRouteReport = 73,      ///< payload: the endpoint a user routes to
};

struct Frame {
  MsgType type = MsgType::kOk;
  std::string payload;
};

/// Appends the 12-byte stream preamble to \p dst.
void AppendPreamble(std::string* dst);

/// Frames \p payload as \p type and appends it to \p dst.
/// PRECONDITION: payload.size() <= kMaxFramePayload.
void AppendFrame(std::string* dst, MsgType type, const std::string& payload);

/// \brief Incremental frame reassembly over an untrusted byte stream.
/// Not thread-safe; one decoder per connection direction.
class FrameDecoder {
 public:
  /// \p expect_preamble: streams begin with the magic/version preamble
  /// (the normal case); false starts directly at frame boundaries.
  explicit FrameDecoder(bool expect_preamble = true)
      : preamble_done_(!expect_preamble) {}

  /// Consumes \p size bytes. Returns InvalidArgument on the first
  /// protocol violation and every call thereafter (the decoder is
  /// poisoned); previously completed frames stay poppable.
  Status Feed(const char* data, std::size_t size);

  bool has_frame() const { return !frames_.empty(); }
  std::size_t queued_frames() const { return frames_.size(); }
  /// PRECONDITION: has_frame().
  Frame PopFrame();

  bool preamble_done() const { return preamble_done_; }
  bool poisoned() const { return !error_.ok(); }
  /// Bytes buffered but not yet assembled into a frame.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  /// Assembles as many frames as the buffer allows.
  Status Parse();

  bool preamble_done_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< parsed prefix of buffer_
  std::deque<Frame> frames_;
  Status error_;
};

}  // namespace net
}  // namespace tcdp

#endif  // TCDP_NET_WIRE_H_
