#include "bench/env.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>

#ifndef TCDP_GIT_SHA
#define TCDP_GIT_SHA "unknown"
#endif
#ifndef TCDP_BUILD_FLAGS
#define TCDP_BUILD_FLAGS "unknown"
#endif
#ifndef TCDP_BUILD_TYPE
#define TCDP_BUILD_TYPE "unknown"
#endif

namespace tcdp {
namespace bench {

namespace {

double ProbeCpuMhz() {
  // /proc/cpuinfo's "cpu MHz" line (Linux). Absent (other OS,
  // containers without procfs) -> 0, reported as unknown.
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("cpu MHz", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        return std::strtod(line.c_str() + colon + 1, nullptr);
      }
    }
  }
  return 0.0;
}

std::string ProbeHostname() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf[0] != '\0' ? std::string(buf) : std::string("unknown");
}

}  // namespace

const HardwareInfo& Hardware() {
  static const HardwareInfo info = [] {
    HardwareInfo h;
    h.cores = std::thread::hardware_concurrency();
    if (h.cores == 0) h.cores = 1;
    h.cpu_mhz = ProbeCpuMhz();
    h.hostname = ProbeHostname();
    return h;
  }();
  return info;
}

const BuildInfo& Build() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_sha = TCDP_GIT_SHA;
    b.flags = TCDP_BUILD_FLAGS;
    b.build_type = TCDP_BUILD_TYPE;
#ifdef __VERSION__
    b.compiler = __VERSION__;
#else
    b.compiler = "unknown";
#endif
    return b;
  }();
  return info;
}

double NowUnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string NowIso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

}  // namespace bench
}  // namespace tcdp
