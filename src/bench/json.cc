#include "bench/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace tcdp {
namespace bench {

Json* JsonObject::Find(const std::string& key) {
  for (auto& item : items_) {
    if (item.first == key) return &item.second;
  }
  return nullptr;
}

const Json* JsonObject::Find(const std::string& key) const {
  for (const auto& item : items_) {
    if (item.first == key) return &item.second;
  }
  return nullptr;
}

Json& JsonObject::Set(const std::string& key, Json value) {
  if (Json* existing = Find(key)) {
    *existing = std::move(value);
    return *existing;
  }
  items_.emplace_back(key, std::move(value));
  return items_.back().second;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; emit null like Python's json.dumps
    // refuses to — we choose null so a baseline with a broken metric
    // fails schema validation loudly rather than failing to parse.
    *out += "null";
    return;
  }
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void DumpTo(const Json& value, int indent, std::string* out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (value.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += value.as_bool() ? "true" : "false";
      break;
    case Json::Type::kNumber:
      AppendNumber(value.as_number(), out);
      break;
    case Json::Type::kString:
      AppendEscaped(value.as_string(), out);
      break;
    case Json::Type::kArray: {
      const JsonArray& array = value.as_array();
      if (array.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (std::size_t i = 0; i < array.size(); ++i) {
        *out += pad_in;
        DumpTo(array[i], indent + 1, out);
        if (i + 1 < array.size()) out->push_back(',');
        out->push_back('\n');
      }
      *out += pad + "]";
      break;
    }
    case Json::Type::kObject: {
      const JsonObject& object = value.as_object();
      if (object.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      std::size_t i = 0;
      for (const auto& [key, member] : object.items()) {
        *out += pad_in;
        AppendEscaped(key, out);
        *out += ": ";
        DumpTo(member, indent + 1, out);
        if (++i < object.size()) out->push_back(',');
        out->push_back('\n');
      }
      *out += pad + "}";
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    TCDP_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      TCDP_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json(std::move(s));
    }
    if (c == 't') return ParseLiteral("true", Json(true));
    if (c == 'f') return ParseLiteral("false", Json(false));
    if (c == 'n') return ParseLiteral("null", Json());
    return ParseNumber();
  }

  StatusOr<Json> ParseLiteral(const char* literal, Json value) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return Error(std::string("expected '") + literal + "'");
    }
    pos_ += len;
    return value;
  }

  StatusOr<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    return Json(value);
  }

  StatusOr<std::string> ParseString() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected '\"'");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("malformed \\u escape");
            }
          }
          // Encode as UTF-8 (no surrogate-pair handling; the harness
          // never emits astral-plane characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<Json> ParseObject() {
    ++pos_;  // '{'
    JsonObject object;
    if (Consume('}')) return Json(std::move(object));
    while (true) {
      TCDP_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Error("expected ':'");
      TCDP_ASSIGN_OR_RETURN(Json value, ParseValue());
      object.Set(key, std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Json(std::move(object));
      return Error("expected ',' or '}'");
    }
  }

  StatusOr<Json> ParseArray() {
    ++pos_;  // '['
    JsonArray array;
    if (Consume(']')) return Json(std::move(array));
    while (true) {
      TCDP_ASSIGN_OR_RETURN(Json value, ParseValue());
      array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Json(std::move(array));
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, 0, &out);
  out.push_back('\n');
  return out;
}

StatusOr<Json> Json::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

StatusOr<const Json*> GetMember(const Json& object, const std::string& key) {
  if (!object.is_object()) {
    return Status::InvalidArgument("json: expected an object around key '" +
                                   key + "'");
  }
  const Json* member = object.as_object().Find(key);
  if (member == nullptr) {
    return Status::InvalidArgument("json: missing key '" + key + "'");
  }
  return member;
}

StatusOr<double> GetNumber(const Json& object, const std::string& key) {
  TCDP_ASSIGN_OR_RETURN(const Json* member, GetMember(object, key));
  if (!member->is_number()) {
    return Status::InvalidArgument("json: key '" + key + "' is not a number");
  }
  return member->as_number();
}

StatusOr<std::string> GetString(const Json& object, const std::string& key) {
  TCDP_ASSIGN_OR_RETURN(const Json* member, GetMember(object, key));
  if (!member->is_string()) {
    return Status::InvalidArgument("json: key '" + key + "' is not a string");
  }
  return member->as_string();
}

StatusOr<bool> GetBool(const Json& object, const std::string& key) {
  TCDP_ASSIGN_OR_RETURN(const Json* member, GetMember(object, key));
  if (!member->is_bool()) {
    return Status::InvalidArgument("json: key '" + key + "' is not a bool");
  }
  return member->as_bool();
}

}  // namespace bench
}  // namespace tcdp
