#ifndef TCDP_BENCH_JSON_H_
#define TCDP_BENCH_JSON_H_

/// \file
/// Minimal JSON document model for the benchmark harness: the unified
/// BENCH.json report is written through it and the comparator parses
/// committed baselines back through it. Objects preserve insertion
/// order so emitted reports diff cleanly run-over-run.
///
/// Intentionally small: doubles only (no int/double split), UTF-8
/// passed through verbatim, \uXXXX escapes decoded to UTF-8 on parse.

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tcdp {
namespace bench {

class Json;
using JsonArray = std::vector<Json>;

/// Insertion-ordered string -> Json map.
class JsonObject {
 public:
  Json* Find(const std::string& key);
  const Json* Find(const std::string& key) const;
  /// Inserts or overwrites \p key.
  Json& Set(const std::string& key, Json value);
  const std::vector<std::pair<std::string, Json>>& items() const {
    return items_;
  }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

 private:
  std::vector<std::pair<std::string, Json>> items_;
};

/// \brief One JSON value: null, bool, number, string, array or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Json(double d) : type_(Type::kNumber), number_(d) {}           // NOLINT
  Json(int i) : type_(Type::kNumber), number_(i) {}              // NOLINT
  Json(std::size_t u)                                            // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Json(std::string s)                                            // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}      // NOLINT
  Json(JsonArray a)                                              // NOLINT
      : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o)                                             // NOLINT
      : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const { return array_; }
  JsonArray& as_array() { return array_; }
  const JsonObject& as_object() const { return object_; }
  JsonObject& as_object() { return object_; }

  /// Serializes with 2-space indentation and a trailing newline at the
  /// top level (matching the style of the previous hand-written
  /// BENCH_*.json emitters).
  std::string Dump() const;

  /// Parses a complete document; trailing non-whitespace is an error.
  static StatusOr<Json> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Convenience lookups returning errors instead of default values, so
/// schema violations in a baseline surface as messages naming the
/// offending key.
StatusOr<const Json*> GetMember(const Json& object, const std::string& key);
StatusOr<double> GetNumber(const Json& object, const std::string& key);
StatusOr<std::string> GetString(const Json& object, const std::string& key);
StatusOr<bool> GetBool(const Json& object, const std::string& key);

}  // namespace bench
}  // namespace tcdp

#endif  // TCDP_BENCH_JSON_H_
