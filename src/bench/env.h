#ifndef TCDP_BENCH_ENV_H_
#define TCDP_BENCH_ENV_H_

/// \file
/// Hardware and build metadata stamped into every BENCH.json record so
/// a perf number is never separated from the machine and binary that
/// produced it.

#include <cstddef>
#include <string>

namespace tcdp {
namespace bench {

struct HardwareInfo {
  std::size_t cores = 0;   ///< std::thread::hardware_concurrency()
  double cpu_mhz = 0.0;    ///< best-effort, 0 when unknown
  std::string hostname;    ///< "unknown" when unavailable
};

struct BuildInfo {
  std::string git_sha;     ///< configure-time `git rev-parse`, or "unknown"
  std::string flags;       ///< compiler flags (build type + CXX flags)
  std::string build_type;  ///< Release / Debug / ...
  std::string compiler;    ///< __VERSION__
};

/// Probes the host (cached after the first call).
const HardwareInfo& Hardware();

/// Compile-time build metadata (TCDP_GIT_SHA etc., injected by CMake).
const BuildInfo& Build();

/// Current wall-clock time as (unix seconds, ISO-8601 UTC).
double NowUnixSeconds();
std::string NowIso8601();

}  // namespace bench
}  // namespace tcdp

#endif  // TCDP_BENCH_ENV_H_
