#ifndef TCDP_BENCH_COMPARE_H_
#define TCDP_BENCH_COMPARE_H_

/// \file
/// Run-over-run comparison: diff a fresh BENCH.json against a
/// committed baseline and fail on regression beyond the per-metric
/// noise band (docs/BENCHMARKING.md "Regression gating").
///
/// Records match on (suite, case, mode, params). Policies come from
/// the CURRENT run's embedded metric_policies — a perturbed baseline
/// cannot weaken its own comparison. Only suites the current run
/// executed, in the current run's mode, are compared.

#include <string>

#include "bench/report.h"

namespace tcdp {
namespace bench {

struct CompareOptions {
  /// Band for metrics without an explicit policy (+-15%, two-sided).
  double default_noise_frac = 0.15;
};

struct CompareResult {
  bool ok = true;
  std::size_t metrics_checked = 0;
  std::size_t regressions = 0;     ///< gated metrics outside the band
  std::size_t improvements = 0;    ///< gated metrics better beyond the band
  std::size_t informational = 0;   ///< informational drifts outside the band
  std::size_t missing_cases = 0;   ///< baseline cases lost (not skipped)
  std::size_t new_cases = 0;       ///< current cases absent from baseline
  /// Human-readable per-metric diff report (one line per finding).
  std::string report;
};

CompareResult CompareReports(const BenchReport& current,
                             const BenchReport& baseline,
                             const CompareOptions& options = {});

}  // namespace bench
}  // namespace tcdp

#endif  // TCDP_BENCH_COMPARE_H_
