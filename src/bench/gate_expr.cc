#include "bench/gate_expr.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <vector>

namespace tcdp {
namespace bench {
namespace {

struct Token {
  enum class Kind { kNumber, kIdent, kOp, kEnd };
  Kind kind = Kind::kEnd;
  double number = 0.0;
  std::string text;  // identifier or operator spelling
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        char* end = nullptr;
        const double value = std::strtod(text_.c_str() + pos_, &end);
        Token t;
        t.kind = Token::Kind::kNumber;
        t.number = value;
        tokens.push_back(t);
        pos_ = static_cast<std::size_t>(end - text_.c_str());
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '.')) {
          ++pos_;
        }
        Token t;
        t.kind = Token::Kind::kIdent;
        t.text = text_.substr(start, pos_ - start);
        tokens.push_back(t);
        continue;
      }
      static const char* kTwoChar[] = {"<=", ">=", "==", "!=", "&&", "||"};
      std::string op(1, c);
      for (const char* two : kTwoChar) {
        if (text_.compare(pos_, 2, two) == 0) {
          op = two;
          break;
        }
      }
      static const std::string kOneChar = "<>+-*/!(),";
      if (op.size() == 1 && kOneChar.find(c) == std::string::npos) {
        return Status::InvalidArgument("gate: unexpected character '" +
                                       std::string(1, c) + "' in '" + text_ +
                                       "'");
      }
      Token t;
      t.kind = Token::Kind::kOp;
      t.text = op;
      tokens.push_back(t);
      pos_ += op.size();
    }
    tokens.push_back(Token{});  // kEnd
    return tokens;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

class Evaluator {
 public:
  Evaluator(const std::string& expression, std::vector<Token> tokens,
            const std::map<std::string, double>& variables)
      : expression_(expression),
        tokens_(std::move(tokens)),
        variables_(variables) {}

  StatusOr<double> Evaluate() {
    TCDP_ASSIGN_OR_RETURN(double value, ParseOr());
    if (tokens_[pos_].kind != Token::Kind::kEnd) {
      return Error("trailing tokens");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("gate: " + what + " in '" + expression_ +
                                   "'");
  }

  bool ConsumeOp(const std::string& op) {
    if (tokens_[pos_].kind == Token::Kind::kOp && tokens_[pos_].text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<double> ParseOr() {
    TCDP_ASSIGN_OR_RETURN(double left, ParseAnd());
    while (ConsumeOp("||")) {
      TCDP_ASSIGN_OR_RETURN(double right, ParseAnd());
      left = (left != 0.0 || right != 0.0) ? 1.0 : 0.0;
    }
    return left;
  }

  StatusOr<double> ParseAnd() {
    TCDP_ASSIGN_OR_RETURN(double left, ParseCmp());
    while (ConsumeOp("&&")) {
      TCDP_ASSIGN_OR_RETURN(double right, ParseCmp());
      left = (left != 0.0 && right != 0.0) ? 1.0 : 0.0;
    }
    return left;
  }

  StatusOr<double> ParseCmp() {
    TCDP_ASSIGN_OR_RETURN(double left, ParseAdd());
    static const char* kCmps[] = {"<=", ">=", "==", "!=", "<", ">"};
    for (const char* op : kCmps) {
      if (!ConsumeOp(op)) continue;
      TCDP_ASSIGN_OR_RETURN(double right, ParseAdd());
      const std::string o = op;
      bool result = false;
      if (o == "<=") result = left <= right;
      if (o == ">=") result = left >= right;
      if (o == "==") result = left == right;
      if (o == "!=") result = left != right;
      if (o == "<") result = left < right;
      if (o == ">") result = left > right;
      return result ? 1.0 : 0.0;
    }
    return left;
  }

  StatusOr<double> ParseAdd() {
    TCDP_ASSIGN_OR_RETURN(double left, ParseMul());
    while (true) {
      if (ConsumeOp("+")) {
        TCDP_ASSIGN_OR_RETURN(double right, ParseMul());
        left += right;
      } else if (ConsumeOp("-")) {
        TCDP_ASSIGN_OR_RETURN(double right, ParseMul());
        left -= right;
      } else {
        return left;
      }
    }
  }

  StatusOr<double> ParseMul() {
    TCDP_ASSIGN_OR_RETURN(double left, ParseUnary());
    while (true) {
      if (ConsumeOp("*")) {
        TCDP_ASSIGN_OR_RETURN(double right, ParseUnary());
        left *= right;
      } else if (ConsumeOp("/")) {
        TCDP_ASSIGN_OR_RETURN(double right, ParseUnary());
        left /= right;  // IEEE semantics; a 0/0 gate reads false (NaN)
      } else {
        return left;
      }
    }
  }

  StatusOr<double> ParseUnary() {
    if (ConsumeOp("-")) {
      TCDP_ASSIGN_OR_RETURN(double value, ParseUnary());
      return -value;
    }
    if (ConsumeOp("!")) {
      TCDP_ASSIGN_OR_RETURN(double value, ParseUnary());
      return value == 0.0 ? 1.0 : 0.0;
    }
    return ParsePrimary();
  }

  StatusOr<double> ParsePrimary() {
    const Token& token = tokens_[pos_];
    if (token.kind == Token::Kind::kNumber) {
      ++pos_;
      return token.number;
    }
    if (token.kind == Token::Kind::kIdent) {
      const std::string name = token.text;
      ++pos_;
      if (ConsumeOp("(")) {
        std::vector<double> args;
        if (!ConsumeOp(")")) {
          while (true) {
            TCDP_ASSIGN_OR_RETURN(double arg, ParseOr());
            args.push_back(arg);
            if (ConsumeOp(",")) continue;
            if (ConsumeOp(")")) break;
            return Error("expected ',' or ')' in call to " + name);
          }
        }
        if (name == "abs" && args.size() == 1) return std::fabs(args[0]);
        if (name == "min" && args.size() == 2) {
          return std::fmin(args[0], args[1]);
        }
        if (name == "max" && args.size() == 2) {
          return std::fmax(args[0], args[1]);
        }
        return Error("unknown function " + name + "/" +
                     std::to_string(args.size()));
      }
      const auto it = variables_.find(name);
      if (it == variables_.end()) {
        return Error("unbound variable '" + name + "'");
      }
      return it->second;
    }
    if (ConsumeOp("(")) {
      TCDP_ASSIGN_OR_RETURN(double value, ParseOr());
      if (!ConsumeOp(")")) return Error("expected ')'");
      return value;
    }
    return Error("expected a value");
  }

  const std::string& expression_;
  std::vector<Token> tokens_;
  const std::map<std::string, double>& variables_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<double> EvalGateExpression(
    const std::string& expression,
    const std::map<std::string, double>& variables) {
  TCDP_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                        Lexer(expression).Tokenize());
  return Evaluator(expression, std::move(tokens), variables).Evaluate();
}

}  // namespace bench
}  // namespace tcdp
