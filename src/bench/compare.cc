#include "bench/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace tcdp {
namespace bench {
namespace {

std::string RecordKey(const BenchRecord& record) {
  std::string key = record.suite + "/" + record.case_name;
  for (const auto& [name, value] : record.params) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    key += ";" + name + "=" + buf;
  }
  return key;
}

void Append(std::string* report, const std::string& line) {
  *report += line;
  report->push_back('\n');
}

std::string FormatDelta(double current, double baseline) {
  char buf[160];
  if (baseline != 0.0) {
    std::snprintf(buf, sizeof(buf), "%.6g -> %.6g (%+.1f%%)", baseline,
                  current, 100.0 * (current - baseline) / baseline);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g -> %.6g", baseline, current);
  }
  return buf;
}

}  // namespace

CompareResult CompareReports(const BenchReport& current,
                             const BenchReport& baseline,
                             const CompareOptions& options) {
  CompareResult result;
  const std::set<std::string> suites_run(current.suites_run.begin(),
                                         current.suites_run.end());

  // Index baseline records of the current run's mode, restricted to
  // the suites this run executed.
  std::map<std::string, const BenchRecord*> baseline_index;
  for (const BenchRecord& record : baseline.records) {
    if (record.mode != current.mode()) continue;
    if (suites_run.count(record.suite) == 0) continue;
    baseline_index[RecordKey(record)] = &record;
  }

  std::set<std::string> matched;
  for (const BenchRecord& record : current.records) {
    const std::string key = RecordKey(record);
    const auto base_it = baseline_index.find(key);
    if (base_it == baseline_index.end()) {
      ++result.new_cases;
      Append(&result.report, "NEW      " + key + " (not in baseline)");
      continue;
    }
    matched.insert(key);
    const BenchRecord& base = *base_it->second;

    for (const auto& [metric, base_value] : base.metrics) {
      const auto cur_it = record.metrics.find(metric);
      if (cur_it == record.metrics.end()) {
        ++result.regressions;
        result.ok = false;
        Append(&result.report,
               "LOST     " + key + " " + metric + " (metric disappeared)");
        continue;
      }
      const double cur_value = cur_it->second;
      ++result.metrics_checked;

      MetricPolicy policy;
      policy.noise_frac = options.default_noise_frac;
      const auto suite_policies = current.policies.find(record.suite);
      if (suite_policies != current.policies.end()) {
        const auto policy_it = suite_policies->second.find(metric);
        if (policy_it != suite_policies->second.end()) {
          policy = policy_it->second;
        }
      }

      const double band =
          policy.noise_frac * std::max(std::fabs(base_value), 1.0e-12);
      bool worse = false;
      bool better = false;
      switch (policy.direction) {
        case MetricPolicy::Direction::kExact:
          worse = std::fabs(cur_value - base_value) >
                  std::max(band, policy.noise_frac);
          break;
        case MetricPolicy::Direction::kHigherIsBetter:
          worse = cur_value < base_value - band;
          better = cur_value > base_value + band;
          break;
        case MetricPolicy::Direction::kLowerIsBetter:
          worse = cur_value > base_value + band;
          better = cur_value < base_value - band;
          break;
      }
      if (!worse && !better) continue;
      const std::string line = key + " " + metric + ": " +
                               FormatDelta(cur_value, base_value) +
                               " [band " +
                               std::to_string(policy.noise_frac * 100.0) +
                               "%]";
      if (policy.informational) {
        ++result.informational;
        Append(&result.report, "DRIFT    " + line + " (informational)");
      } else if (worse) {
        ++result.regressions;
        result.ok = false;
        Append(&result.report, "REGRESS  " + line);
      } else {
        ++result.improvements;
        Append(&result.report, "IMPROVE  " + line);
      }
    }

    // Metrics added since the baseline are fine (schema is additive).
    for (const auto& [metric, value] : record.metrics) {
      (void)value;
      if (base.metrics.count(metric) == 0) {
        Append(&result.report, "NEWMET   " + key + " " + metric);
      }
    }
  }

  // Baseline cases the current run did not produce: lost unless the
  // run explicitly skipped them with a reason.
  for (const auto& [key, record] : baseline_index) {
    if (matched.count(key) > 0) continue;
    if (current.HasSkip(record->suite, record->case_name)) {
      Append(&result.report, "SKIPPED  " + key + " (skipped with reason)");
      continue;
    }
    ++result.missing_cases;
    result.ok = false;
    Append(&result.report, "MISSING  " + key + " (in baseline, not in run)");
  }

  char summary[256];
  std::snprintf(summary, sizeof(summary),
                "compared %zu metrics: %zu regressions, %zu improvements, "
                "%zu informational drifts, %zu missing cases, %zu new cases",
                result.metrics_checked, result.regressions,
                result.improvements, result.informational,
                result.missing_cases, result.new_cases);
  Append(&result.report, summary);
  return result;
}

}  // namespace bench
}  // namespace tcdp
