#ifndef TCDP_BENCH_SUITES_SUITES_H_
#define TCDP_BENCH_SUITES_SUITES_H_

/// \file
/// Registration hooks for the built-in benchmark suites. Each lives in
/// its own translation unit under src/bench/suites/; RegisterAllSuites
/// (bench/harness.h) wires them all in execution order.

#include "bench/harness.h"

namespace tcdp {
namespace bench {

// Kernel-dispatch microbenchmarks (src/kernels/): scalar reference vs
// the host's best backend, bitwise equivalence gated in every mode.
void RegisterKernelsSuite(Harness* harness);

// Throughput / systems suites (ported from the standalone
// bench_fleet_throughput / bench_shard_service / bench_net_throughput
// emitters, acceptance gates preserved).
void RegisterFleetSuite(Harness* harness);
void RegisterShardSuite(Harness* harness);
void RegisterNetSuite(Harness* harness);

// WAL-streaming replication (ISSUE 10): follower drain rate vs local
// ingest, byte-identical convergence, failover (promotion) time.
void RegisterReplSuite(Harness* harness);

// Paper reproduction suites (docs/PAPER_RESULTS.md maps each to its
// figure/claim).
void RegisterFig3Suite(Harness* harness);
void RegisterFig4Suite(Harness* harness);
void RegisterFig5Suite(Harness* harness);
void RegisterFig6Suite(Harness* harness);
void RegisterFig7Suite(Harness* harness);
void RegisterFig8Suite(Harness* harness);
void RegisterTable2Suite(Harness* harness);
void RegisterWEventSuite(Harness* harness);

// Implementation ablations (Algorithm 1 vs LFP routes, pair solvers,
// supremum routes).
void RegisterAblationSuite(Harness* harness);

// Observability overhead (ISSUE 8): instrumented vs uninstrumented
// service throughput, bitwise TPL invariance.
void RegisterObsSuite(Harness* harness);

}  // namespace bench
}  // namespace tcdp

#endif  // TCDP_BENCH_SUITES_SUITES_H_
