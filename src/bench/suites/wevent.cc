// Table II's middle row made operational: run the actual w-event
// mechanisms of Kellaris et al. — Budget Distribution and Budget
// Absorption — on a correlated stream, and account their *realized*
// per-step spends with the temporal accountant.
//
// The w-event guarantee bounds any w-window's spend by eps on
// independent data; under temporal correlations Theorem 2's
// composition over the same windows exceeds eps. The inflation factor
// is the quantity this suite tracks.

#include <map>
#include <memory>
#include <string>

#include "bench/suites/suites.h"
#include "common/random.h"
#include "core/tpl_accountant.h"
#include "release/w_event.h"
#include "workload/generators.h"

namespace tcdp {
namespace bench {
namespace {

constexpr double kEps = 1.0;
constexpr std::size_t kW = 4;

Status RunSuite(SuiteContext* ctx) {
  const std::size_t horizon = ctx->smoke() ? 24 : 40;

  // Correlated population stream from the ring-road mobility model.
  TCDP_ASSIGN_OR_RETURN(const auto road, RingRoadNetwork(4, 0.85, 0.06));
  const auto chain = MarkovChain::WithUniformInitial(road);
  Rng rng(2014);
  TCDP_ASSIGN_OR_RETURN(const auto series,
                        SimulatePopulation(chain, 300, horizon, &rng));
  // Adversary knowledge (for the audit): the same mobility model.
  TCDP_ASSIGN_OR_RETURN(const auto corr,
                        TemporalCorrelations::Both(road, road));

  WEventOptions options;
  options.window = kW;
  options.epsilon = kEps;

  auto audit = [&](const std::string& case_name,
                   WEventMechanism* mech) -> Status {
    Rng mech_rng(99);
    TplAccountant acc(corr);
    const double dissim_step =
        kEps * options.dissimilarity_fraction / static_cast<double>(kW);
    for (std::size_t t = 1; t <= horizon; ++t) {
      TCDP_ASSIGN_OR_RETURN(Database db, series.At(t));
      TCDP_ASSIGN_OR_RETURN(WEventRelease r, mech->Process(db, &mech_rng));
      // Per-step spend: the always-on dissimilarity slice plus the
      // publication budget (0 when re-publishing).
      TCDP_RETURN_IF_ERROR(
          acc.RecordRelease(dissim_step + r.publication_epsilon + 1e-12));
    }
    TCDP_ASSIGN_OR_RETURN(const double window_tpl, acc.MaxWindowTpl(kW));
    const double max_spend = mech->MaxWindowSpend();
    ctx->Record(case_name,
                {{"epsilon", kEps},
                 {"w", static_cast<double>(kW)},
                 {"horizon", static_cast<double>(horizon)}},
                {{"publications",
                  static_cast<double>(mech->num_publications())},
                 {"max_window_spend", max_spend},
                 {"max_window_tpl", window_tpl},
                 {"inflation", max_spend > 0.0 ? window_tpl / kEps : 0.0}});
    return Status::OK();
  };

  TCDP_ASSIGN_OR_RETURN(
      auto bd, BudgetDistributionMechanism::Create(
                   options, std::make_unique<HistogramQuery>()));
  TCDP_RETURN_IF_ERROR(audit("budget_distribution", bd.get()));
  TCDP_ASSIGN_OR_RETURN(
      auto ba, BudgetAbsorptionMechanism::Create(
                   options, std::make_unique<HistogramQuery>()));
  TCDP_RETURN_IF_ERROR(audit("budget_absorption", ba.get()));
  return Status::OK();
}

}  // namespace

void RegisterWEventSuite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "wevent";
  spec.description =
      "w-event mechanisms (Budget Distribution / Absorption) on a "
      "correlated stream: nominal window spend vs Theorem 2 leakage";
  spec.gates = {
      // Both mechanisms must respect their nominal w-event budget.
      {"nominal_budget_respected",
       "budget_distribution.max_window_spend <= 1 + 1e-9 && "
       "budget_absorption.max_window_spend <= 1 + 1e-9"},
      // The cost Table II's correlated w-event cell warns about: the
      // effective per-window leakage exceeds the nominal guarantee.
      {"correlations_inflate_window_leakage",
       "budget_distribution.inflation >= 1 && "
       "budget_absorption.inflation >= 1"},
      // Both mechanisms actually publish on this stream.
      {"mechanisms_publish",
       "budget_distribution.publications >= 1 && "
       "budget_absorption.publications >= 1"},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
