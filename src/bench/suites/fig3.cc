// Paper Figure 3: BPL, FPL and TPL of Lap(1/0.1) at t = 1..10 under
// (i) the strongest temporal correlation, (ii) the moderate matrix
// P = (0.8 0.2; 0 1), and (iii) no correlation.
//
// Paper series (eps = 0.1), gated below:
//   BPL (ii): 0.10 0.18 0.25 0.30 0.35 0.39 0.42 0.45 0.48 0.50
//   (i): TPL flat at 1.0 = T*eps; (iii): flat at eps.

#include <cmath>
#include <map>
#include <string>

#include "bench/suites/suites.h"
#include "core/tpl_accountant.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {
namespace bench {
namespace {

constexpr double kEps = 0.1;
constexpr std::size_t kHorizon = 10;

Status RecordSeries(SuiteContext* ctx, const std::string& case_name,
                    const TemporalCorrelations& corr) {
  TplAccountant acc(corr);
  TCDP_RETURN_IF_ERROR(acc.RecordUniformReleases(kEps, kHorizon));
  std::map<std::string, double> metrics;
  for (std::size_t t : {std::size_t{1}, std::size_t{5}, kHorizon}) {
    const std::string suffix = "_t" + std::to_string(t);
    TCDP_ASSIGN_OR_RETURN(metrics["bpl" + suffix], acc.Bpl(t));
    TCDP_ASSIGN_OR_RETURN(metrics["fpl" + suffix], acc.Fpl(t));
    TCDP_ASSIGN_OR_RETURN(metrics["tpl" + suffix], acc.Tpl(t));
  }
  metrics["max_tpl"] = acc.MaxTpl();
  // Flatness of the TPL series: max |TPL(t) - TPL(1)|, 0 when the
  // series is constant (the paper's panels (i) and (iii)).
  double flat_dev = 0.0;
  TCDP_ASSIGN_OR_RETURN(const double tpl1, acc.Tpl(1));
  for (std::size_t t = 2; t <= kHorizon; ++t) {
    TCDP_ASSIGN_OR_RETURN(const double tpl, acc.Tpl(t));
    flat_dev = std::max(flat_dev, std::fabs(tpl - tpl1));
  }
  metrics["tpl_flat_dev"] = flat_dev;
  ctx->Record(case_name,
              {{"epsilon", kEps},
               {"horizon", static_cast<double>(kHorizon)}},
              metrics);
  return Status::OK();
}

Status RunSuite(SuiteContext* ctx) {
  // (i) Strongest temporal correlation: identity transitions.
  TCDP_ASSIGN_OR_RETURN(
      auto strongest,
      TemporalCorrelations::Both(StochasticMatrix::Identity(2),
                                 StochasticMatrix::Identity(2)));
  TCDP_RETURN_IF_ERROR(RecordSeries(ctx, "strongest", strongest));
  // (ii) Moderate correlation: the paper's P = (0.8 0.2; 0 1).
  const auto p = StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
  TCDP_ASSIGN_OR_RETURN(auto moderate, TemporalCorrelations::Both(p, p));
  TCDP_RETURN_IF_ERROR(RecordSeries(ctx, "moderate", moderate));
  // (iii) No temporal correlation.
  TCDP_RETURN_IF_ERROR(
      RecordSeries(ctx, "none", TemporalCorrelations::None()));
  return Status::OK();
}

}  // namespace

void RegisterFig3Suite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "fig3";
  spec.description =
      "paper Figure 3: BPL/FPL/TPL of Lap(1/0.1) over t=1..10 under "
      "strongest / moderate / no temporal correlation";
  spec.gates = {
      // (i): under P = I the TPL is T*eps = 1.0 at every t.
      {"strongest_tpl_flat_at_one",
       "strongest.tpl_flat_dev < 1e-9 && "
       "abs(strongest.max_tpl - 1.0) < 1e-9"},
      // (iii): with no correlation the TPL stays at eps.
      {"uncorrelated_tpl_flat_at_eps",
       "none.tpl_flat_dev < 1e-9 && abs(none.max_tpl - 0.1) < 1e-9"},
      // (ii): the paper's BPL series ends at 0.50 at t=10.
      {"moderate_bpl_matches_paper",
       "moderate.bpl_t10 >= 0.49 && moderate.bpl_t10 <= 0.51"},
      // BPL grows with t while FPL mirrors it (monotone checks at the
      // sampled points).
      {"moderate_bpl_monotone",
       "moderate.bpl_t1 < moderate.bpl_t5 && "
       "moderate.bpl_t5 < moderate.bpl_t10"},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
