// Implementation ablations (DESIGN.md Sections 4.1/4.2/4.4), one
// suite with three panels:
//
//   * lfp agreement — Algorithm 1, the paper's pairwise LFP and the
//     compact reformulation agree on L(alpha).
//   * pair solver — the paper's iterative removal loop vs the
//     sorted-prefix scan: identical losses, different speed.
//   * supremum — Theorem 5's closed form vs fixpoint iteration, and
//     the analytic budget inverse eps = alpha - L(alpha) vs bisection.

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "bench/suites/suites.h"
#include "common/random.h"
#include "core/privacy_loss.h"
#include "core/supremum.h"
#include "lp/tpl_lfp.h"
#include "markov/smoothing.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {
namespace bench {
namespace {

StochasticMatrix MakeMatrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return StochasticMatrix::Random(n, &rng);
}

Status LfpAgreement(SuiteContext* ctx) {
  double dev_pair = 0.0, dev_compact = 0.0, dev_dink = 0.0;
  const std::vector<std::size_t> sizes =
      ctx->smoke() ? std::vector<std::size_t>{3, 5}
                   : std::vector<std::size_t>{3, 5, 8};
  for (std::size_t n : sizes) {
    for (double alpha : {0.1, 1.0, 5.0}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto matrix = MakeMatrix(n, seed * 97);
        TemporalLossFunction loss(matrix);
        const double reference = loss.Evaluate(alpha);
        TCDP_ASSIGN_OR_RETURN(
            const double pair,
            TemporalLossViaLfp(matrix, alpha, LfpMethod::kCharnesCooper,
                               LfpFormulation::kPairwise));
        TCDP_ASSIGN_OR_RETURN(
            const double compact,
            TemporalLossViaLfp(matrix, alpha, LfpMethod::kCharnesCooper,
                               LfpFormulation::kCompact));
        TCDP_ASSIGN_OR_RETURN(
            const double dink,
            TemporalLossViaLfp(matrix, alpha, LfpMethod::kDinkelbach,
                               LfpFormulation::kPairwise));
        dev_pair = std::max(dev_pair, std::fabs(pair - reference));
        dev_compact = std::max(dev_compact, std::fabs(compact - reference));
        dev_dink = std::max(dev_dink, std::fabs(dink - reference));
      }
    }
  }
  ctx->Record("lfp_agreement",
              {{"max_n", static_cast<double>(sizes.back())},
               {"seeds", 3.0}},
              {{"dev_pairwise", dev_pair},
               {"dev_compact", dev_compact},
               {"dev_dinkelbach", dev_dink}});
  return Status::OK();
}

Status PairSolver(SuiteContext* ctx) {
  const std::size_t n = ctx->smoke() ? 50 : 100;
  Rng rng(1234 + n);
  const auto matrix = StochasticMatrix::Random(n, &rng);
  TemporalLossFunction loss(matrix);
  LossEvalOptions iterative;
  LossEvalOptions sorted;
  sorted.method = PairLossMethod::kSortedPrefix;
  double iterative_loss = 0.0, sorted_loss = 0.0;
  const double iterative_seconds = ctx->TimeBestOf(
      [&] { iterative_loss = loss.EvaluateDetailed(10.0, iterative).loss; });
  const double sorted_seconds = ctx->TimeBestOf(
      [&] { sorted_loss = loss.EvaluateDetailed(10.0, sorted).loss; });
  ctx->Record("pair_solver",
              {{"n", static_cast<double>(n)}, {"alpha", 10.0}},
              {{"dev", std::fabs(iterative_loss - sorted_loss)},
               {"iterative_ms", iterative_seconds * 1e3},
               {"sorted_ms", sorted_seconds * 1e3}});
  return Status::OK();
}

Status Supremum(SuiteContext* ctx) {
  std::vector<StochasticMatrix> cases;
  cases.push_back(StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}}));
  cases.push_back(StochasticMatrix::FromRows({{0.8, 0.2}, {0.1, 0.9}}));
  for (double s : {0.01, 0.1}) {
    TCDP_ASSIGN_OR_RETURN(const auto m, SmoothedCorrelationMatrix(10, s));
    cases.push_back(m);
  }
  // Closed form vs fixpoint iteration: existence and value must agree
  // wherever the supremum exists.
  double max_dev = 0.0;
  bool existence_agrees = true;
  for (const auto& matrix : cases) {
    TemporalLossFunction loss(matrix);
    for (double eps : {0.05, 0.1, 0.2}) {
      TCDP_ASSIGN_OR_RETURN(const auto closed, ComputeSupremum(loss, eps));
      const auto fix = IterateLeakageToFixpoint(loss, eps);
      existence_agrees &= closed.exists == fix.converged;
      if (closed.exists && fix.converged) {
        max_dev = std::max(max_dev, std::fabs(closed.value - fix.value));
      }
    }
  }
  // The analytic budget inverse vs bisection over iterated suprema.
  double inverse_dev = 0.0;
  for (const auto& matrix : cases) {
    TemporalLossFunction loss(matrix);
    for (double alpha : {0.5, 1.0}) {
      TCDP_ASSIGN_OR_RETURN(const double analytic,
                            EpsilonForSupremum(loss, alpha));
      double lo = 1e-9, hi = alpha;
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const auto fix =
            IterateLeakageToFixpoint(loss, mid, 100000, 1e-10, 10 * alpha);
        if (!fix.converged || fix.value > alpha) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      inverse_dev = std::max(inverse_dev,
                             std::fabs(analytic - 0.5 * (lo + hi)));
    }
  }
  ctx->Record("supremum",
              {{"matrices", static_cast<double>(cases.size())}},
              {{"existence_agrees", existence_agrees ? 1.0 : 0.0},
               {"max_dev", max_dev},
               {"inverse_dev", inverse_dev}});
  return Status::OK();
}

Status RunSuite(SuiteContext* ctx) {
  TCDP_RETURN_IF_ERROR(LfpAgreement(ctx));
  TCDP_RETURN_IF_ERROR(PairSolver(ctx));
  TCDP_RETURN_IF_ERROR(Supremum(ctx));
  return Status::OK();
}

}  // namespace

void RegisterAblationSuite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "ablation";
  spec.description =
      "implementation ablations: LFP-route agreement, pair-solver "
      "equivalence and speed, supremum closed form vs fixpoint";
  spec.repetitions = 3;
  spec.metric_policies = {
      {"iterative_ms", MetricPolicy::Latency()},
      {"sorted_ms", MetricPolicy::Latency()},
  };
  spec.gates = {
      // All three routes to L(alpha) agree (DESIGN.md 4.1).
      {"lfp_routes_agree",
       "lfp_agreement.dev_pairwise <= 1e-6 && "
       "lfp_agreement.dev_compact <= 1e-6 && "
       "lfp_agreement.dev_dinkelbach <= 1e-6"},
      // The two exact pair solvers return identical losses (4.4).
      {"pair_solvers_agree", "pair_solver.dev <= 1e-9"},
      // Theorem 5 matches the iterated recurrence on existence and
      // value, and the analytic inverse matches bisection (4.2).
      {"supremum_routes_agree",
       "supremum.existence_agrees == 1 && supremum.max_dev <= 1e-6 && "
       "supremum.inverse_dev <= 1e-6"},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
