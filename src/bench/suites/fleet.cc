// Fleet accountant-bank throughput (ported from the standalone
// bench_fleet_throughput emitter; workloads and acceptance gates
// unchanged):
//
//   uniform — 1000 users sharing ONE n=16 transition matrix: cohort
//             batching + the loss cache remove nearly all solve work;
//             cached must stay >= 5x the per-user AoS baseline.
//   hetero  — many cohorts of DISTINCT matrices under a sparse
//             schedule: per-release work is real, and multi-threaded
//             recording must beat 1 thread (full runs on >= 2 cores).
//
// Bitwise serial/parallel equality is gated in every mode.

#include <string>
#include <vector>

#include "bench/suites/common.h"
#include "bench/suites/suites.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/accountant_bank.h"
#include "core/tpl_accountant.h"
#include "service/fleet_engine.h"
#include "workload/generators.h"

namespace tcdp {
namespace bench {
namespace {

struct FleetWorkload {
  std::string name;
  std::size_t users = 0;
  std::size_t cohorts = 0;      // distinct matrix pairs
  std::size_t matrix_size = 0;  // n
  std::size_t horizon = 0;
  double sparsity = 0.0;  // per-user skip probability per release
  double epsilon = 0.1;
  std::uint64_t seed = 20260728;
};

struct FleetRun {
  std::size_t threads = 0;
  double seconds = 0.0;
  double users_per_sec = 0.0;
  double overall_alpha = 0.0;
  std::vector<double> tpl_user0;
};

StatusOr<std::vector<TemporalCorrelations>> MakeProfiles(
    const FleetWorkload& workload) {
  std::vector<TemporalCorrelations> profiles;
  Rng rng(workload.seed);
  for (std::size_t c = 0; c < workload.cohorts; ++c) {
    StochasticMatrix m;
    if (workload.cohorts == 1) {
      TCDP_ASSIGN_OR_RETURN(m, ClickstreamModel(workload.matrix_size));
    } else {
      m = StochasticMatrix::Random(workload.matrix_size, &rng);
    }
    TCDP_ASSIGN_OR_RETURN(auto corr, TemporalCorrelations::Both(m, m));
    profiles.push_back(std::move(corr));
  }
  return profiles;
}

/// The pre-bank array-of-structs reference: one standalone accountant
/// per user — what every release cost before cohort batching.
StatusOr<FleetRun> RunAosBaseline(const FleetWorkload& workload) {
  TCDP_ASSIGN_OR_RETURN(const auto profiles, MakeProfiles(workload));
  PopulationAccountant population;
  for (std::size_t u = 0; u < workload.users; ++u) {
    population.AddUser(BenchUserName(u), profiles[u % workload.cohorts]);
  }
  WallTimer timer;
  for (std::size_t t = 0; t < workload.horizon; ++t) {
    TCDP_RETURN_IF_ERROR(population.RecordRelease(workload.epsilon));
  }
  FleetRun run;
  run.threads = 1;
  run.seconds = timer.ElapsedSeconds();
  run.users_per_sec =
      run.seconds > 0.0
          ? static_cast<double>(workload.users * workload.horizon) /
                run.seconds
          : 0.0;
  run.overall_alpha = population.OverallAlpha();
  run.tpl_user0 = population.user(0).TplSeries();
  return run;
}

StatusOr<FleetRun> RunFleet(const FleetWorkload& workload, bool use_cache,
                            std::size_t threads) {
  FleetEngineOptions options;
  options.share_loss_cache = use_cache;
  options.num_threads = threads;
  FleetEngine engine(options);
  TCDP_ASSIGN_OR_RETURN(const auto profiles, MakeProfiles(workload));
  for (std::size_t u = 0; u < workload.users; ++u) {
    engine.AddUser(BenchUserName(u), profiles[u % workload.cohorts]);
  }
  // Participation masks are regenerated identically for every thread
  // count (seeded independently of the matrix stream).
  Rng mask_rng(workload.seed + 1);
  std::vector<std::size_t> participants;
  for (std::size_t t = 0; t < workload.horizon; ++t) {
    if (workload.sparsity == 0.0) {
      TCDP_RETURN_IF_ERROR(engine.RecordRelease(workload.epsilon));
    } else {
      participants.clear();
      for (std::size_t u = 0; u < workload.users; ++u) {
        if (mask_rng.Uniform() >= workload.sparsity) {
          participants.push_back(u);
        }
      }
      TCDP_RETURN_IF_ERROR(
          engine.RecordRelease(workload.epsilon, participants));
    }
  }
  FleetRun run;
  run.threads = threads;
  run.seconds = engine.stats().record_seconds;
  run.users_per_sec = engine.stats().UserReleasesPerSecond();
  run.overall_alpha = engine.OverallAlpha();
  run.tpl_user0 = engine.user(0).TplSeries();
  return run;
}

std::map<std::string, double> Params(const FleetWorkload& workload,
                                     bool cache, std::size_t threads) {
  return {{"users", static_cast<double>(workload.users)},
          {"cohorts", static_cast<double>(workload.cohorts)},
          {"matrix_size", static_cast<double>(workload.matrix_size)},
          {"horizon", static_cast<double>(workload.horizon)},
          {"sparsity", workload.sparsity},
          {"cache", cache ? 1.0 : 0.0},
          {"threads", static_cast<double>(threads)}};
}

std::map<std::string, double> Metrics(const FleetRun& run) {
  return {{"seconds", run.seconds},
          {"users_per_sec", run.users_per_sec},
          {"overall_alpha", run.overall_alpha}};
}

Status RunSuite(SuiteContext* ctx) {
  FleetWorkload uniform;
  uniform.name = "uniform";
  uniform.users = ctx->smoke() ? 60 : 1000;
  uniform.cohorts = 1;
  uniform.matrix_size = 16;
  uniform.horizon = ctx->smoke() ? 6 : 24;

  FleetWorkload hetero;
  hetero.name = "hetero";
  hetero.users = ctx->smoke() ? 48 : 960;
  hetero.cohorts = ctx->smoke() ? 8 : 48;
  hetero.matrix_size = ctx->smoke() ? 8 : 16;
  hetero.horizon = ctx->smoke() ? 4 : 10;
  hetero.sparsity = 0.35;

  // Regime 1: uniform fleet — cohort batching collapses the fleet's
  // identical solves into one per release; the AoS baseline shows what
  // that saved.
  TCDP_ASSIGN_OR_RETURN(const FleetRun aos, RunAosBaseline(uniform));
  TCDP_ASSIGN_OR_RETURN(const FleetRun uncached,
                        RunFleet(uniform, /*use_cache=*/false, 1));
  TCDP_ASSIGN_OR_RETURN(const FleetRun cached,
                        RunFleet(uniform, /*use_cache=*/true, 1));
  TCDP_ASSIGN_OR_RETURN(const FleetRun cached_par,
                        RunFleet(uniform, /*use_cache=*/true, 0));
  ctx->Record("uniform_aos_baseline", Params(uniform, false, 1),
              Metrics(aos));
  ctx->Record("uniform_bank_uncached", Params(uniform, false, 1),
              Metrics(uncached));
  ctx->Record("uniform_bank_cached", Params(uniform, true, 1),
              Metrics(cached));
  ctx->Record("uniform_bank_cached_parallel", Params(uniform, true, 0),
              Metrics(cached_par));
  ctx->Derived("cached_speedup",
               aos.users_per_sec > 0.0
                   ? cached.users_per_sec / aos.users_per_sec
                   : 0.0);
  ctx->Derived("uniform_series_match",
               (cached.tpl_user0 == cached_par.tpl_user0 &&
                cached.overall_alpha == cached_par.overall_alpha)
                   ? 1.0
                   : 0.0);

  // Regime 2: heterogeneous cohorts + sparse schedules — the workload
  // where per-release work is real and parallelism must pay.
  const std::vector<std::size_t> thread_counts =
      ctx->smoke() ? std::vector<std::size_t>{1, 2}
                   : std::vector<std::size_t>{1, 2, 4};
  double serial_ups = 0.0;
  double best_parallel_ups = 0.0;
  std::vector<double> serial_tpl0;
  double serial_alpha = 0.0;
  bool hetero_match = true;
  for (std::size_t threads : thread_counts) {
    TCDP_ASSIGN_OR_RETURN(const FleetRun run,
                          RunFleet(hetero, /*use_cache=*/true, threads));
    ctx->Record("hetero_threads" + std::to_string(threads),
                Params(hetero, true, threads), Metrics(run));
    if (threads == 1) {
      serial_ups = run.users_per_sec;
      serial_tpl0 = run.tpl_user0;
      serial_alpha = run.overall_alpha;
    } else {
      best_parallel_ups = std::max(best_parallel_ups, run.users_per_sec);
      hetero_match &= run.tpl_user0 == serial_tpl0 &&
                      run.overall_alpha == serial_alpha;
    }
  }
  ctx->Derived("hetero_series_match", hetero_match ? 1.0 : 0.0);
  ctx->Derived("parallel_speedup",
               serial_ups > 0.0 ? best_parallel_ups / serial_ups : 0.0);

  // Regime 3: bulk enrollment. AddUser used to rebuild the flat-slot
  // offset table eagerly — O(cohorts) per user, O(users x cohorts) for
  // a fleet join — and now just marks it dirty (rebuilt lazily by the
  // first release). Enrolling 4x the users into 4x the cohorts must
  // therefore cost ~4x, not ~16x; the gate allows generous slack for
  // hashing noise but fails the quadratic regime outright.
  {
    const std::size_t base_users = ctx->smoke() ? 3000 : 12000;
    const std::size_t base_cohorts = ctx->smoke() ? 750 : 3000;
    double base_seconds = 0.0;
    double scaled_seconds = 0.0;
    for (const std::size_t scale : {std::size_t{1}, std::size_t{4}}) {
      const std::size_t users = base_users * scale;
      const std::size_t cohorts = base_cohorts * scale;
      // Distinct tiny matrices (built outside the timer) force one
      // cohort per profile; the timed loop is pure enrollment.
      std::vector<TemporalCorrelations> profiles;
      profiles.reserve(cohorts);
      Rng rng(20260808 + scale);
      for (std::size_t c = 0; c < cohorts; ++c) {
        const StochasticMatrix m = StochasticMatrix::Random(2, &rng);
        TCDP_ASSIGN_OR_RETURN(auto corr, TemporalCorrelations::Both(m, m));
        profiles.push_back(std::move(corr));
      }
      const double seconds = ctx->TimeBestOf([&] {
        AccountantBank bank;
        for (std::size_t u = 0; u < users; ++u) {
          bank.AddUser(profiles[u % cohorts]);
        }
      });
      ctx->Record("enroll_" + std::to_string(users) + "users",
                  {{"users", static_cast<double>(users)},
                   {"cohorts", static_cast<double>(cohorts)}},
                  {{"seconds", seconds},
                   {"users_per_sec",
                    seconds > 0.0 ? static_cast<double>(users) / seconds
                                  : 0.0}});
      if (scale == 1) {
        base_seconds = seconds;
      } else {
        scaled_seconds = seconds;
      }
    }
    // Linear enrollment -> ratio ~4; the old eager rebuild -> ~16.
    ctx->Derived("enroll_scaling_ratio",
                 base_seconds > 0.0 ? scaled_seconds / base_seconds : 0.0);
  }
  return Status::OK();
}

}  // namespace

void RegisterFleetSuite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "fleet";
  spec.description =
      "accountant-bank throughput: uniform cached fleet vs AoS baseline, "
      "heterogeneous sparse cohorts by thread count";
  spec.metric_policies = {
      {"users_per_sec", MetricPolicy::Throughput()},
      {"seconds", MetricPolicy::Latency()},
      {"overall_alpha", MetricPolicy::Exact()},
  };
  spec.gates = {
      // Bitwise determinism: parallel recording must not change any
      // series, in every mode.
      {"serial_parallel_bitwise",
       "uniform_series_match == 1 && hetero_series_match == 1"},
      // PR-1 acceptance bar: the cached bank stays >= 5x the per-user
      // AoS baseline (timing-based: full runs only).
      {"cached_speedup_vs_aos_baseline", "cached_speedup >= 5",
       /*min_cores=*/0, /*full_only=*/true},
      // ROADMAP success condition: parallelism pays on the hetero
      // workload — meaningless on a 1-core host, so the spec encodes
      // the requirement and the harness skips with a reason there.
      {"parallel_beats_serial", "parallel_speedup > 1",
       /*min_cores=*/2, /*full_only=*/true},
      // ISSUE 7 satellite: bulk enrollment is linear. 4x users into 4x
      // cohorts costs ~4x (the eager offset rebuild made it ~16x); 10
      // leaves room for allocator/hash noise while rejecting quadratic.
      {"enrollment_not_quadratic",
       "enroll_scaling_ratio > 0 && enroll_scaling_ratio < 10",
       /*min_cores=*/0, /*full_only=*/true},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
