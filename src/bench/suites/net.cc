// Network frontend throughput (ported from the standalone
// bench_net_throughput emitter): requests/sec over loopback TCP — by
// connection count and pipeline depth — against the same request
// stream dispatched in-process into the ShardedReleaseService.
//
//   * In-process baseline: Release() calls straight into the service
//     (shards=2), no sockets. The acceptance gate requires loopback
//     throughput within 5x of it at pipeline depth >= 8 (full runs on
//     >= 2 cores; single-core hosts timeslice the server loop, the
//     shard workers and the clients through one pipe).
//   * Determinism: single-connection configurations preserve the
//     baseline's request order, so their overall alpha must equal the
//     in-process run's bitwise (gated in every mode).

#include <algorithm>
#include <thread>
#include <vector>

#include "bench/suites/common.h"
#include "bench/suites/suites.h"
#include "common/timer.h"
#include "net/client.h"
#include "net/server.h"
#include "server/sharded_service.h"

namespace tcdp {
namespace bench {
namespace {

struct RunResult {
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double overall_alpha = 0.0;
};

constexpr std::size_t kShards = 2;
constexpr std::size_t kBatchWindow = 16;

/// The bar: the identical request stream applied without sockets.
StatusOr<RunResult> RunInProcess(const ServiceWorkload& workload) {
  const auto profiles = MakeServiceProfiles(workload);
  const auto requests = MakeServiceRequests(workload);
  server::ShardedServiceOptions options;
  options.num_shards = kShards;
  options.batch_window = kBatchWindow;
  TCDP_ASSIGN_OR_RETURN(auto service,
                        server::ShardedReleaseService::Create("", options));
  for (std::size_t u = 0; u < workload.users; ++u) {
    TCDP_RETURN_IF_ERROR(
        service->Join(BenchUserName(u), profiles[u % workload.profiles]));
  }
  TCDP_RETURN_IF_ERROR(service->Flush());
  WallTimer timer;
  for (const ReleaseRequest& request : requests) {
    TCDP_RETURN_IF_ERROR(
        service->Release(BenchUserName(request.user), request.epsilon));
  }
  TCDP_RETURN_IF_ERROR(service->Flush());
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  result.requests_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(requests.size()) / result.seconds
          : 0.0;
  TCDP_ASSIGN_OR_RETURN(result.overall_alpha, service->OverallAlpha());
  TCDP_RETURN_IF_ERROR(service->Close());
  return result;
}

/// The same stream over loopback TCP: \p connections client threads
/// (disjoint user slices, original order within a slice), each
/// pipelining \p depth requests.
StatusOr<RunResult> RunLoopback(const ServiceWorkload& workload,
                                std::size_t connections, std::size_t depth) {
  const auto profiles = MakeServiceProfiles(workload);
  const auto requests = MakeServiceRequests(workload);
  server::ShardedServiceOptions options;
  options.num_shards = kShards;
  options.batch_window = kBatchWindow;
  TCDP_ASSIGN_OR_RETURN(auto service,
                        server::ShardedReleaseService::Create("", options));
  TCDP_ASSIGN_OR_RETURN(auto net_server,
                        net::NetServer::Listen(service.get()));
  Status serve_status;
  std::thread serve_thread(
      [&net_server, &serve_status] { serve_status = net_server->Serve(); });

  auto connect = [&](std::size_t pipeline) {
    net::NetClientOptions client_options;
    client_options.pipeline_depth = pipeline;
    return net::NetClient::Connect("127.0.0.1", net_server->port(),
                                   client_options);
  };

  Status inner = Status::OK();
  {
    auto setup = connect(depth);
    if (!setup.ok()) inner = setup.status();
    for (std::size_t u = 0; inner.ok() && u < workload.users; ++u) {
      inner = (*setup)->Join(BenchUserName(u),
                             profiles[u % workload.profiles]);
    }
    if (inner.ok()) inner = (*setup)->Flush();
  }

  RunResult result;
  if (inner.ok()) {
    WallTimer timer;
    std::vector<std::thread> threads;
    std::vector<Status> thread_status(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        auto client = connect(depth);
        if (!client.ok()) {
          thread_status[c] = client.status();
          return;
        }
        for (const ReleaseRequest& request : requests) {
          if (request.user % connections != c) continue;
          const Status released = (*client)->Release(
              BenchUserName(request.user), request.epsilon);
          if (!released.ok()) {
            thread_status[c] = released;
            return;
          }
        }
        thread_status[c] = (*client)->Drain();
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (const Status& status : thread_status) {
      if (inner.ok() && !status.ok()) inner = status;
    }
    auto control = connect(1);
    if (inner.ok() && !control.ok()) inner = control.status();
    if (inner.ok()) inner = (*control)->Flush();
    result.seconds = timer.ElapsedSeconds();
    if (control.ok()) (void)(*control)->Shutdown();
  } else {
    // Setup failed: still unblock the serve loop before joining.
    auto control = connect(1);
    if (control.ok()) (void)(*control)->Shutdown();
  }
  serve_thread.join();
  TCDP_RETURN_IF_ERROR(inner);
  TCDP_RETURN_IF_ERROR(serve_status);
  result.requests_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(requests.size()) / result.seconds
          : 0.0;
  TCDP_ASSIGN_OR_RETURN(result.overall_alpha, service->OverallAlpha());
  TCDP_RETURN_IF_ERROR(service->Close());
  return result;
}

Status RunSuite(SuiteContext* ctx) {
  ServiceWorkload workload;
  workload.users = ctx->smoke() ? 32 : 128;
  workload.profiles = ctx->smoke() ? 4 : 8;
  workload.matrix_size = ctx->smoke() ? 6 : 8;
  workload.requests = ctx->smoke() ? 200 : 1500;

  struct Config {
    std::size_t connections;
    std::size_t depth;
  };
  const std::vector<Config> configs =
      ctx->smoke() ? std::vector<Config>{{1, 1}, {1, 8}}
                   : std::vector<Config>{{1, 1}, {1, 8}, {1, 32}, {4, 8}};

  auto params = [&](std::size_t connections, std::size_t depth) {
    return std::map<std::string, double>{
        {"users", static_cast<double>(workload.users)},
        {"requests", static_cast<double>(workload.requests)},
        {"shards", static_cast<double>(kShards)},
        {"batch_window", static_cast<double>(kBatchWindow)},
        {"connections", static_cast<double>(connections)},
        {"pipeline_depth", static_cast<double>(depth)}};
  };
  auto metrics = [](const RunResult& run) {
    return std::map<std::string, double>{
        {"seconds", run.seconds},
        {"requests_per_sec", run.requests_per_sec}};
  };

  TCDP_ASSIGN_OR_RETURN(const RunResult in_process, RunInProcess(workload));
  ctx->Record("in_process", params(0, 0), metrics(in_process));

  bool alpha_match = true;
  double best_deep_loopback = 0.0;
  for (const Config& config : configs) {
    TCDP_ASSIGN_OR_RETURN(
        const RunResult run,
        RunLoopback(workload, config.connections, config.depth));
    ctx->Record("loopback_c" + std::to_string(config.connections) + "_d" +
                    std::to_string(config.depth),
                params(config.connections, config.depth), metrics(run));
    if (config.depth >= 8) {
      best_deep_loopback = std::max(best_deep_loopback, run.requests_per_sec);
    }
    // Single-connection runs preserve the baseline's request order, so
    // the fleet's overall alpha must match bitwise: the wire moved the
    // requests, it did not change the accounting.
    if (config.connections == 1) {
      alpha_match &= run.overall_alpha == in_process.overall_alpha;
    }
  }
  ctx->Derived("alpha_match", alpha_match ? 1.0 : 0.0);
  ctx->Derived("loopback_slowdown_depth8",
               best_deep_loopback > 0.0
                   ? in_process.requests_per_sec / best_deep_loopback
                   : 0.0);
  return Status::OK();
}

}  // namespace

void RegisterNetSuite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "net";
  spec.description =
      "network frontend: loopback TCP requests/sec by connection count and "
      "pipeline depth vs in-process dispatch";
  spec.metric_policies = {
      {"requests_per_sec", MetricPolicy::Throughput()},
      {"seconds", MetricPolicy::Latency()},
  };
  spec.gates = {
      // Determinism: the wire moves requests, it does not change the
      // accounting.
      {"alpha_bitwise_invariant", "alpha_match == 1"},
      // ISSUE 4 acceptance: pipelined loopback within 5x of in-process
      // dispatch at depth >= 8. Timing-based and meaningless when the
      // server loop, shard workers and clients share one core.
      {"loopback_within_5x_in_process", "loopback_slowdown_depth8 <= 5",
       /*min_cores=*/2, /*full_only=*/true},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
