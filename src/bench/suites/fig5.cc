// Paper Figure 5: runtime of the privacy-quantification routes —
// Algorithm 1 (polynomial) vs the generic-LFP baselines (simplex
// Charnes-Cooper in the Gurobi role, Dinkelbach in the lp_solve role;
// DESIGN.md "Deviations").
//
// Expected *shape* (the paper's finding, measured at 11 s vs 47 min vs
// 38 h at n = 150): Algorithm 1 stays fast as n grows; the generic
// solvers blow up quickly, so they run at much smaller n. Absolute
// milliseconds are informational; the gate compares routes on the SAME
// host within one run.

#include <map>
#include <string>
#include <vector>

#include "bench/suites/suites.h"
#include "common/random.h"
#include "core/privacy_loss.h"
#include "lp/tpl_lfp.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {
namespace bench {
namespace {

StochasticMatrix MakeMatrix(std::size_t n) {
  Rng rng(20170416 + n);
  return StochasticMatrix::Random(n, &rng);
}

Status RunSuite(SuiteContext* ctx) {
  const double alpha = 10.0;

  // (a) runtime vs n at alpha = 10. Algorithm 1 covers the paper's
  // range; the generic baselines stop where they already blow up.
  const std::vector<std::size_t> a1_sizes =
      ctx->smoke() ? std::vector<std::size_t>{25, 50}
                   : std::vector<std::size_t>{25, 50, 100, 150, 250};
  for (std::size_t n : a1_sizes) {
    const StochasticMatrix matrix = MakeMatrix(n);
    TemporalLossFunction loss(matrix);
    volatile double sink = 0.0;
    const double seconds =
        ctx->TimeBestOf([&] { sink = loss.Evaluate(alpha); });
    ctx->Record("algorithm1_n" + std::to_string(n),
                {{"n", static_cast<double>(n)}, {"alpha", alpha}},
                {{"ms", seconds * 1e3}, {"loss", sink}});
  }
  const std::vector<std::size_t> lfp_sizes =
      ctx->smoke() ? std::vector<std::size_t>{5}
                   : std::vector<std::size_t>{5, 10, 15};
  double a1_seconds_n10 = 0.0;
  double cc_seconds_n10 = 0.0;
  double dk_seconds_n10 = 0.0;
  for (std::size_t n : lfp_sizes) {
    const StochasticMatrix matrix = MakeMatrix(n);
    TemporalLossFunction reference(matrix);
    volatile double sink = 0.0;
    const double a1_seconds =
        ctx->TimeBestOf([&] { sink = reference.Evaluate(alpha); });
    Status solver_status;
    double cc_loss = 0.0;
    const double cc_seconds = ctx->TimeBestOf([&] {
      auto loss = TemporalLossViaLfp(matrix, alpha,
                                     LfpMethod::kCharnesCooper,
                                     LfpFormulation::kPairwise);
      if (!loss.ok()) {
        solver_status = loss.status();
      } else {
        cc_loss = *loss;
      }
    });
    TCDP_RETURN_IF_ERROR(solver_status);
    double dk_loss = 0.0;
    const double dk_seconds = ctx->TimeBestOf([&] {
      auto loss = TemporalLossViaLfp(matrix, alpha, LfpMethod::kDinkelbach,
                                     LfpFormulation::kPairwise);
      if (!loss.ok()) {
        solver_status = loss.status();
      } else {
        dk_loss = *loss;
      }
    });
    TCDP_RETURN_IF_ERROR(solver_status);
    const std::map<std::string, double> params = {
        {"n", static_cast<double>(n)}, {"alpha", alpha}};
    ctx->Record("charnes_cooper_n" + std::to_string(n), params,
                {{"ms", cc_seconds * 1e3}, {"loss", cc_loss}});
    ctx->Record("dinkelbach_n" + std::to_string(n), params,
                {{"ms", dk_seconds * 1e3}, {"loss", dk_loss}});
    const std::size_t gate_n = ctx->smoke() ? 5 : 10;
    if (n == gate_n) {
      a1_seconds_n10 = a1_seconds;
      cc_seconds_n10 = cc_seconds;
      dk_seconds_n10 = dk_seconds;
    }
  }
  ctx->Derived("a1_vs_charnes_cooper",
               a1_seconds_n10 > 0.0 ? cc_seconds_n10 / a1_seconds_n10 : 0.0);
  ctx->Derived("a1_vs_dinkelbach",
               a1_seconds_n10 > 0.0 ? dk_seconds_n10 / a1_seconds_n10 : 0.0);

  // (b) runtime vs alpha at fixed n = 50 (Algorithm 1 only; the
  // baselines' alpha sweep hits the generic-solver precision failure
  // the paper reports for lp_solve at alpha >= 10).
  const std::vector<double> alphas =
      ctx->smoke() ? std::vector<double>{0.1, 1.0}
                   : std::vector<double>{0.001, 0.01, 0.1, 1.0, 10.0, 20.0};
  const StochasticMatrix matrix50 = MakeMatrix(50);
  TemporalLossFunction loss50(matrix50);
  for (double a : alphas) {
    volatile double sink = 0.0;
    const double seconds = ctx->TimeBestOf([&] { sink = loss50.Evaluate(a); });
    const auto milli = static_cast<long long>(a * 1000.0 + 0.5);
    ctx->Record("algorithm1_n50_alpha_milli" + std::to_string(milli),
                {{"n", 50.0}, {"alpha", a}},
                {{"ms", seconds * 1e3}, {"loss", sink}});
  }
  return Status::OK();
}

}  // namespace

void RegisterFig5Suite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "fig5";
  spec.description =
      "paper Figure 5: quantification runtime — Algorithm 1 vs generic "
      "LFP baselines (Charnes-Cooper simplex, Dinkelbach) by n and alpha";
  spec.repetitions = 3;
  spec.metric_policies = {
      {"ms", MetricPolicy::Latency()},
      {"loss", MetricPolicy::Exact()},
  };
  spec.gates = {
      // The paper's headline: the polynomial algorithm dominates both
      // generic routes. Same-host, same-run comparison, so enforced in
      // every mode.
      {"algorithm1_beats_generic_solvers",
       "a1_vs_charnes_cooper > 1 && a1_vs_dinkelbach > 1"},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
