// Observability overhead suite (ISSUE 8): the sharded service runs the
// deterministic release workload twice — instrumentation fully on
// (metrics registry + trace ring) and fully off (`--no-metrics`
// equivalent) — and the suite gates two claims:
//
//   * accounting is bitwise invariant: every user's TPL series and the
//     fleet alpha are identical with instrumentation on or off
//     (always enforced — the obs layer must never touch arithmetic);
//   * the instrumented run keeps >= 95% of the uninstrumented
//     throughput (full runs on >= 2 cores only: smoke workloads are
//     too short to time, and a 1-core host timeslices the comparison).
//
// Each mode runs `reps` times interleaved and keeps its best
// requests/sec, which filters scheduler noise the same way the kernel
// suite does.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/suites/common.h"
#include "bench/suites/suites.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "server/sharded_service.h"

namespace tcdp {
namespace bench {
namespace {

struct ObsRunResult {
  double requests_per_sec = 0.0;
  double overall_alpha = 0.0;
  std::vector<std::vector<double>> tpl_series;  // per user, in order
};

/// Restores the process-global instrumentation switches on every exit
/// path (the registry is shared with whatever suite runs next).
struct ObsStateGuard {
  ~ObsStateGuard() {
    obs::SetMetricsEnabled(true);
    obs::DefaultTrace().Stop();
  }
};

StatusOr<ObsRunResult> RunOnce(const ServiceWorkload& workload,
                               std::size_t batch_window, bool instrumented) {
  obs::SetMetricsEnabled(instrumented);
  if (instrumented) {
    obs::DefaultTrace().Start(4096);
  } else {
    obs::DefaultTrace().Stop();
  }
  // The instrumented run carries the full PR-9 diagnostics stack too:
  // an active watchdog scanning the shard heartbeats while the
  // workload drives them, so the 5% overhead gate prices in the scans.
  obs::Watchdog watchdog(
      {/*interval_ms=*/50, /*stall_ticks=*/3, /*wal_fsync_p99_factor=*/8.0,
       /*flight_recorder=*/nullptr});
  if (instrumented) {
    TCDP_RETURN_IF_ERROR(watchdog.Start());
  }
  const auto profiles = MakeServiceProfiles(workload);
  const auto requests = MakeServiceRequests(workload);
  server::ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = batch_window;
  TCDP_ASSIGN_OR_RETURN(auto service,
                        server::ShardedReleaseService::Create("", options));
  for (std::size_t u = 0; u < workload.users; ++u) {
    TCDP_RETURN_IF_ERROR(
        service->Join(BenchUserName(u), profiles[u % workload.profiles]));
  }
  TCDP_RETURN_IF_ERROR(service->Flush());
  WallTimer timer;
  for (const ReleaseRequest& request : requests) {
    TCDP_RETURN_IF_ERROR(
        service->Release(BenchUserName(request.user), request.epsilon));
  }
  TCDP_RETURN_IF_ERROR(service->Flush());
  const double seconds = timer.ElapsedSeconds();
  ObsRunResult result;
  result.requests_per_sec =
      seconds > 0.0 ? static_cast<double>(requests.size()) / seconds : 0.0;
  TCDP_ASSIGN_OR_RETURN(result.overall_alpha, service->OverallAlpha());
  result.tpl_series.reserve(workload.users);
  for (std::size_t u = 0; u < workload.users; ++u) {
    TCDP_ASSIGN_OR_RETURN(auto report, service->Query(BenchUserName(u)));
    result.tpl_series.push_back(std::move(report.tpl_series));
  }
  TCDP_RETURN_IF_ERROR(service->Close());
  return result;
}

Status RunSuite(SuiteContext* ctx) {
  ObsStateGuard restore;
  ServiceWorkload workload;
  workload.users = ctx->smoke() ? 32 : 192;
  workload.profiles = ctx->smoke() ? 4 : 12;
  workload.matrix_size = ctx->smoke() ? 6 : 12;
  workload.requests = ctx->smoke() ? 120 : 800;
  const std::size_t batch_window = 8;
  const int reps = ctx->smoke() ? 1 : 3;

  double best_on = 0.0;
  double best_off = 0.0;
  ObsRunResult reference_on;
  ObsRunResult reference_off;
  for (int rep = 0; rep < reps; ++rep) {
    TCDP_ASSIGN_OR_RETURN(ObsRunResult on,
                          RunOnce(workload, batch_window, true));
    TCDP_ASSIGN_OR_RETURN(ObsRunResult off,
                          RunOnce(workload, batch_window, false));
    best_on = std::max(best_on, on.requests_per_sec);
    best_off = std::max(best_off, off.requests_per_sec);
    if (rep == 0) {
      reference_on = std::move(on);
      reference_off = std::move(off);
    }
  }

  // Bitwise: identical per-user series element for element, identical
  // fleet alpha. operator== on doubles is the point — any arithmetic
  // perturbation from the obs layer must trip this.
  bool tpl_match =
      reference_on.overall_alpha == reference_off.overall_alpha &&
      reference_on.tpl_series == reference_off.tpl_series;

  // The instrumented run must actually have instrumented something:
  // bank steps recorded, trace spans captured. Guards against the
  // suite silently comparing two uninstrumented runs.
  std::uint64_t bank_steps = 0;
  for (const auto& [name, hist] :
       obs::Registry::Default().Snapshot().histograms) {
    if (name == "tcdp_bank_step_seconds") bank_steps = hist.count();
  }
  const std::uint64_t spans = obs::DefaultTrace().recorded();

  ctx->Record("instrumented",
              {{"users", static_cast<double>(workload.users)},
               {"requests", static_cast<double>(workload.requests)},
               {"reps", static_cast<double>(reps)}},
              {{"requests_per_sec", best_on}});
  ctx->Record("uninstrumented",
              {{"users", static_cast<double>(workload.users)},
               {"requests", static_cast<double>(workload.requests)},
               {"reps", static_cast<double>(reps)}},
              {{"requests_per_sec", best_off}});
  ctx->Derived("tpl_match", tpl_match ? 1.0 : 0.0);
  ctx->Derived("metrics_populated",
               bank_steps > 0 && spans > 0 ? 1.0 : 0.0);
  ctx->Derived("overhead_ratio",
               best_off > 0.0 ? best_on / best_off : 0.0);
  return Status::OK();
}

}  // namespace

void RegisterObsSuite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "obs";
  spec.description =
      "observability overhead: instrumented vs uninstrumented sharded "
      "service throughput, bitwise TPL invariance";
  spec.metric_policies = {
      {"requests_per_sec", MetricPolicy::Throughput()},
  };
  spec.gates = {
      // The obs layer must never perturb accounting arithmetic.
      {"tpl_bitwise_invariant", "tpl_match == 1"},
      // Nor silently fail to record anything.
      {"obs_instruments_populated", "metrics_populated == 1"},
      // ISSUE 8 acceptance: full instrumentation keeps >= 95% of the
      // uninstrumented throughput. Timing-sensitive, so full runs on
      // multi-core hosts only.
      {"obs_overhead_within_5pct", "overhead_ratio >= 0.95",
       /*min_cores=*/2, /*full_only=*/true},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
