// Paper Figure 7: per-time-point privacy leakage of the data release
// algorithms with a 1-DP_T target, T = 30, P^B = (0.8 0.2; 0.2 0.8),
// P^F = (0.8 0.2; 0.1 0.9).
//
//  (a) Algorithm 2 (upper bound): leakage rises toward alpha but stays
//      strictly below it.
//  (b) Algorithm 3 (quantification): leakage pinned at alpha at every
//      time point.

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "bench/suites/suites.h"
#include "core/budget_allocation.h"
#include "core/tpl_accountant.h"

namespace tcdp {
namespace bench {
namespace {

constexpr double kAlpha = 1.0;
constexpr std::size_t kHorizon = 30;

Status RecordSchedule(SuiteContext* ctx, const std::string& case_name,
                      const TemporalCorrelations& corr,
                      const std::vector<double>& schedule) {
  TplAccountant acc(corr);
  for (double e : schedule) {
    TCDP_RETURN_IF_ERROR(acc.RecordRelease(e));
  }
  // How tightly the realized TPL tracks the alpha target: max TPL and
  // the largest |TPL(t) - alpha| across the horizon.
  double tpl_dev_max = 0.0;
  for (std::size_t t = 1; t <= schedule.size(); ++t) {
    TCDP_ASSIGN_OR_RETURN(const double tpl, acc.Tpl(t));
    tpl_dev_max = std::max(tpl_dev_max, std::fabs(tpl - kAlpha));
  }
  TCDP_ASSIGN_OR_RETURN(const double tpl_t1, acc.Tpl(1));
  ctx->Record(case_name,
              {{"alpha", kAlpha}, {"horizon", static_cast<double>(kHorizon)}},
              {{"max_tpl", acc.MaxTpl()},
               {"tpl_t1", tpl_t1},
               {"tpl_dev_max", tpl_dev_max},
               {"eps_t1", schedule.front()},
               {"eps_t30", schedule.back()}});
  return Status::OK();
}

Status RunSuite(SuiteContext* ctx) {
  TCDP_ASSIGN_OR_RETURN(
      auto corr,
      TemporalCorrelations::Both(
          StochasticMatrix::FromRows({{0.8, 0.2}, {0.2, 0.8}}),
          StochasticMatrix::FromRows({{0.8, 0.2}, {0.1, 0.9}})));
  TCDP_ASSIGN_OR_RETURN(auto alloc, BudgetAllocator::Create(corr, kAlpha));
  ctx->Derived("eps_steady", alloc.budget().eps_steady);

  TCDP_RETURN_IF_ERROR(RecordSchedule(ctx, "upper_bound", corr,
                                      alloc.UpperBoundSchedule(kHorizon)));
  TCDP_ASSIGN_OR_RETURN(const auto quantified,
                        alloc.QuantifiedSchedule(kHorizon));
  TCDP_RETURN_IF_ERROR(RecordSchedule(ctx, "quantified", corr, quantified));
  return Status::OK();
}

}  // namespace

void RegisterFig7Suite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "fig7";
  spec.description =
      "paper Figure 7: budget allocation under a 1-DP_T target — "
      "Algorithm 2 (upper bound) vs Algorithm 3 (quantification)";
  spec.gates = {
      // (a): the conservative schedule never violates the target.
      {"upper_bound_respects_target",
       "upper_bound.max_tpl <= 1 + 1e-9"},
      // (b): Algorithm 3 pins the TPL at alpha at EVERY time point.
      {"quantified_pins_tpl_at_alpha",
       "quantified.tpl_dev_max <= 1e-6"},
      // Algorithm 3 spends at least as much budget everywhere, which
      // is exactly why it is less wasteful for short horizons.
      {"quantified_spends_more",
       "quantified.eps_t1 >= upper_bound.eps_t1 - 1e-12 && "
       "quantified.max_tpl >= upper_bound.max_tpl - 1e-12"},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
