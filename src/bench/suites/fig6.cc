// Paper Figure 6: impact of the degree of temporal correlation
// (Laplacian smoothing s, Eq. 25) on BPL over time.
//
// Findings reproduced in shape and gated: stronger correlation
// (smaller s) gives a sharper, longer growth and a higher plateau;
// larger n under the same s weakens the effective correlation.

#include <map>
#include <string>
#include <vector>

#include "bench/suites/suites.h"
#include "core/tpl_accountant.h"
#include "markov/smoothing.h"

namespace tcdp {
namespace bench {
namespace {

Status RecordCase(SuiteContext* ctx, const std::string& case_name,
                  std::size_t n, double s, double eps,
                  std::size_t horizon) {
  StochasticMatrix matrix;
  if (s <= 0.0) {
    matrix = StrongestCorrelationMatrix(n);
  } else {
    TCDP_ASSIGN_OR_RETURN(matrix, SmoothedCorrelationMatrix(n, s));
  }
  TplAccountant acc(TemporalCorrelations::BackwardOnly(std::move(matrix)));
  TCDP_RETURN_IF_ERROR(acc.RecordUniformReleases(eps, horizon));
  std::map<std::string, double> metrics;
  TCDP_ASSIGN_OR_RETURN(metrics["bpl_t1"], acc.Bpl(1));
  TCDP_ASSIGN_OR_RETURN(metrics["bpl_mid"], acc.Bpl(horizon / 2));
  TCDP_ASSIGN_OR_RETURN(metrics["bpl_end"], acc.Bpl(horizon));
  ctx->Record(case_name,
              {{"n", static_cast<double>(n)},
               {"s", s},
               {"epsilon", eps},
               {"horizon", static_cast<double>(horizon)}},
              metrics);
  return Status::OK();
}

Status RunSuite(SuiteContext* ctx) {
  // Panel (a): eps = 1, short horizon. Smoke trims n (the accountant's
  // per-step cost grows with the matrix) but keeps the s contrast.
  const std::size_t n = ctx->smoke() ? 20 : 50;
  const std::size_t horizon_a = 14;
  TCDP_RETURN_IF_ERROR(RecordCase(ctx, "a_s0", n, -1.0, 1.0, horizon_a));
  TCDP_RETURN_IF_ERROR(
      RecordCase(ctx, "a_s0005", n, 0.005, 1.0, horizon_a));
  TCDP_RETURN_IF_ERROR(RecordCase(ctx, "a_s005", n, 0.05, 1.0, horizon_a));

  // Panel (b): eps = 0.1 delays the growth ~10x.
  const std::size_t horizon_b = ctx->smoke() ? 60 : 140;
  TCDP_RETURN_IF_ERROR(
      RecordCase(ctx, "b_s0005", n, 0.005, 0.1, horizon_b));
  TCDP_RETURN_IF_ERROR(RecordCase(ctx, "b_s005", n, 0.05, 0.1, horizon_b));

  // The n-effect: the same s at larger n (the costly series; full runs
  // only).
  if (!ctx->smoke()) {
    TCDP_RETURN_IF_ERROR(
        RecordCase(ctx, "a_s0005_n200", 200, 0.005, 1.0, horizon_a));
  } else {
    ctx->Skip("a_s0005_n200", "n=200 series runs in full mode only");
  }
  return Status::OK();
}

}  // namespace

void RegisterFig6Suite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "fig6";
  spec.description =
      "paper Figure 6: BPL vs degree of temporal correlation (Laplacian "
      "smoothing s) across eps and n";
  spec.gates = {
      // Smaller s (stronger correlation) ends higher: s=0 dominates
      // s=0.005 dominates s=0.05 at the end of panel (a).
      {"stronger_correlation_higher_plateau",
       "a_s0.bpl_end > a_s0005.bpl_end && "
       "a_s0005.bpl_end > a_s005.bpl_end"},
      // s=0 grows linearly (t*eps at every t); the smoothed series
      // stay strictly below it.
      {"strongest_grows_linearly", "abs(a_s0.bpl_end - 14.0) < 1e-9"},
      // The same ordering must survive the smaller eps of panel (b).
      {"ordering_survives_small_eps", "b_s0005.bpl_end > b_s005.bpl_end"},
      // Larger n under equal s = weaker effective correlation (the
      // n=200 series runs in full mode only).
      {"larger_n_weaker_correlation",
       "a_s0005_n200.bpl_end < a_s0005.bpl_end",
       /*min_cores=*/0, /*full_only=*/true},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
