// Paper Table II: the privacy guarantee of eps-DP mechanisms at event
// level, w-event level and user level, on independent vs temporally
// correlated data — every cell computed with the library's accountant,
// not transcribed:
//
//                    independent      temporally correlated
//   event-level      eps-DP           alpha-DP_T (alpha >= eps)
//   w-event          w*eps-DP         Theorem 2 composition
//   user-level       T*eps-DP         T*eps-DP_T (Corollary 1)

#include <algorithm>
#include <map>
#include <string>

#include "bench/suites/suites.h"
#include "core/tpl_accountant.h"
#include "dp/budget.h"

namespace tcdp {
namespace bench {
namespace {

constexpr double kEps = 0.1;
constexpr std::size_t kHorizon = 10;  // T
constexpr std::size_t kW = 3;

Status RecordGuarantees(SuiteContext* ctx, const std::string& case_name,
                        const TemporalCorrelations& corr) {
  TplAccountant acc(corr);
  TCDP_RETURN_IF_ERROR(acc.RecordUniformReleases(kEps, kHorizon));
  // Event level: max single-t TPL. w-event: max over windows of w
  // consecutive releases (Theorem 2). User level: the whole timeline.
  double wevent = 0.0;
  for (std::size_t t = 1; t + kW - 1 <= kHorizon; ++t) {
    TCDP_ASSIGN_OR_RETURN(const double v, acc.SequenceTpl(t, kW - 1));
    wevent = std::max(wevent, v);
  }
  TCDP_ASSIGN_OR_RETURN(const double user, acc.SequenceTpl(1, kHorizon - 1));
  ctx->Record(case_name,
              {{"epsilon", kEps},
               {"horizon", static_cast<double>(kHorizon)},
               {"w", static_cast<double>(kW)}},
              {{"event", acc.MaxTpl()}, {"wevent", wevent}, {"user", user}});
  return Status::OK();
}

Status RunSuite(SuiteContext* ctx) {
  // Correlated column: the paper's P = (0.8 0.2; 0 1).
  const auto p = StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
  TCDP_ASSIGN_OR_RETURN(const auto corr, TemporalCorrelations::Both(p, p));
  TCDP_RETURN_IF_ERROR(RecordGuarantees(ctx, "correlated", corr));
  // Independent column: the classical DP adversary.
  TCDP_RETURN_IF_ERROR(
      RecordGuarantees(ctx, "independent", TemporalCorrelations::None()));
  // The extreme case called out under Table II: strongest correlation
  // blurs event-level into user-level.
  TCDP_ASSIGN_OR_RETURN(
      const auto strongest,
      TemporalCorrelations::Both(StochasticMatrix::Identity(2),
                                 StochasticMatrix::Identity(2)));
  TCDP_RETURN_IF_ERROR(RecordGuarantees(ctx, "extreme", strongest));

  // Classical ledger cross-check for the independent column.
  BudgetLedger ledger;
  for (std::size_t t = 0; t < kHorizon; ++t) {
    TCDP_RETURN_IF_ERROR(ledger.Spend(kEps));
  }
  TCDP_ASSIGN_OR_RETURN(const double window, ledger.WindowSpend(kW));
  ctx->Derived("ledger_wevent", window);
  ctx->Derived("ledger_user", ledger.TotalSpent());
  return Status::OK();
}

}  // namespace

void RegisterTable2Suite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "table2";
  spec.description =
      "paper Table II: event / w-event / user-level guarantees on "
      "independent vs temporally correlated data";
  spec.gates = {
      // Correlations inflate event-level leakage (alpha >= eps)...
      {"correlations_inflate_event_level",
       "correlated.event > independent.event && "
       "abs(independent.event - 0.1) < 1e-9"},
      // ...and the w-event window (Theorem 2 dominates the plain sum,
      // which the ledger reproduces)...
      {"theorem2_dominates_window_sum",
       "correlated.wevent >= independent.wevent && "
       "abs(independent.wevent - ledger_wevent) < 1e-9"},
      // ...but NOT user-level DP (Corollary 1: both equal T*eps).
      {"user_level_unchanged",
       "abs(correlated.user - independent.user) < 1e-9 && "
       "abs(correlated.user - 1.0) < 1e-9 && "
       "abs(ledger_user - 1.0) < 1e-9"},
      // Extreme case: P = I collapses event level into user level.
      {"extreme_event_equals_user_level",
       "abs(extreme.event - 1.0) < 1e-9"},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
