// Kernel-layer microbenchmarks (src/kernels/): the scalar reference vs
// the best backend the host supports, timed through the same Backend
// function-pointer table the production call sites use (so nothing
// here can be constant-folded away), plus a bitwise scalar/vector
// equivalence sweep over tail-heavy sizes.
//
// The speedup gates carry `min_simd_width = 4`: on hosts whose best
// backend is narrower (NEON = 2 doubles, scalar-only = 1) the harness
// skips them with a reason instead of failing — a vector-vs-scalar bar
// is meaningless where the vector backend IS scalar. The bitwise gate
// is enforced everywhere, in every mode.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench/suites/suites.h"
#include "common/random.h"
#include "kernels/kernels.h"

namespace tcdp {
namespace bench {
namespace {

using kernels::Backend;

/// Deterministic inputs shaped like the production hot paths: q/d are
/// stochastic-matrix-row-like positives, `add` is a sparse mask
/// expansion (zeros and one epsilon value), x/out are dense row data.
struct KernelInputs {
  std::vector<double> q, d, loss, add, x, out;
  explicit KernelInputs(std::size_t n, std::uint64_t seed)
      : q(n), d(n), loss(n), add(n), x(n), out(n) {
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      q[i] = rng.Uniform() + 1e-3;
      d[i] = rng.Uniform() + 1e-3;
      loss[i] = rng.Uniform();
      add[i] = rng.Uniform() < 0.4 ? 0.0 : 0.1;
      x[i] = rng.Uniform() * 2.0 - 1.0;
      out[i] = rng.Uniform();
    }
  }
};

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Runs every dispatched kernel once under both backends on the same
/// inputs and demands bitwise-equal outputs. One size, one seed.
bool BackendsMatchAt(const Backend& s, const Backend& v, std::size_t n,
                     std::uint64_t seed) {
  const KernelInputs in(n, seed);

  std::vector<double> bpl_s(n, -1.0), bpl_v(n, -1.0);
  std::vector<double> es_s = in.out, es_v = in.out;
  s.fused_loss_add(in.loss.data(), in.add.data(), bpl_s.data(), es_s.data(),
                   n);
  v.fused_loss_add(in.loss.data(), in.add.data(), bpl_v.data(), es_v.data(),
                   n);
  if (!SameBits(bpl_s, bpl_v) || !SameBits(es_s, es_v)) return false;

  es_s = in.out;
  es_v = in.out;
  s.fused_loss_add_uniform(in.loss.data(), 0.1, bpl_s.data(), es_s.data(), n);
  v.fused_loss_add_uniform(in.loss.data(), 0.1, bpl_v.data(), es_v.data(), n);
  if (!SameBits(bpl_s, bpl_v) || !SameBits(es_s, es_v)) return false;

  es_s = in.out;
  es_v = in.out;
  s.fused_fill_add(in.add.data(), bpl_s.data(), es_s.data(), n);
  v.fused_fill_add(in.add.data(), bpl_v.data(), es_v.data(), n);
  if (!SameBits(bpl_s, bpl_v) || !SameBits(es_s, es_v)) return false;

  es_s = in.out;
  es_v = in.out;
  s.fused_fill_uniform(0.1, bpl_s.data(), es_s.data(), n);
  v.fused_fill_uniform(0.1, bpl_v.data(), es_v.data(), n);
  if (!SameBits(bpl_s, bpl_v) || !SameBits(es_s, es_v)) return false;

  std::vector<double> out_s = in.out, out_v = in.out;
  s.axpy(0.7, in.x.data(), out_s.data(), n);
  v.axpy(0.7, in.x.data(), out_v.data(), n);
  if (!SameBits(out_s, out_v)) return false;

  if (!SameBits(s.dot(in.q.data(), in.d.data(), n),
                v.dot(in.q.data(), in.d.data(), n))) {
    return false;
  }

  std::vector<std::uint32_t> idx_s(n), idx_v(n);
  const std::size_t m_s =
      s.select_greater(in.q.data(), in.d.data(), n, idx_s.data());
  const std::size_t m_v =
      v.select_greater(in.q.data(), in.d.data(), n, idx_v.data());
  if (m_s != m_v ||
      std::memcmp(idx_s.data(), idx_v.data(),
                  m_s * sizeof(std::uint32_t)) != 0) {
    return false;
  }

  double qs_s = 0.0, ds_s = 0.0, qs_v = 0.0, ds_v = 0.0;
  s.gather_pair_sums(in.q.data(), in.d.data(), idx_s.data(), m_s, &qs_s,
                     &ds_s);
  v.gather_pair_sums(in.q.data(), in.d.data(), idx_v.data(), m_v, &qs_v,
                     &ds_v);
  if (!SameBits(qs_s, qs_v) || !SameBits(ds_s, ds_v)) return false;

  std::vector<double> val_s(in.x.begin(), in.x.begin() + m_s);
  std::vector<double> val_v = val_s;
  std::vector<std::uint32_t> fidx_s(idx_s.begin(), idx_s.begin() + m_s);
  std::vector<std::uint32_t> fidx_v = fidx_s;
  const std::size_t k_s = s.filter_gt(val_s.data(), fidx_s.data(), m_s, 0.1);
  const std::size_t k_v = v.filter_gt(val_v.data(), fidx_v.data(), m_s, 0.1);
  if (k_s != k_v ||
      std::memcmp(val_s.data(), val_v.data(), k_s * sizeof(double)) != 0 ||
      std::memcmp(fidx_s.data(), fidx_v.data(),
                  k_s * sizeof(std::uint32_t)) != 0) {
    return false;
  }
  return true;
}

bool BackendsMatch(const Backend& s, const Backend& v) {
  // Tail-heavy sweep: everything below one vector register, the lane
  // widths themselves, odd sizes just past them, and larger blocks.
  const std::size_t sizes[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 67, 1000};
  std::uint64_t seed = 20260808;
  for (const std::size_t n : sizes) {
    if (!BackendsMatchAt(s, v, n, seed++)) return false;
  }
  return true;
}

struct TimedCase {
  double scalar_seconds = 0.0;
  double vector_seconds = 0.0;
  double speedup = 0.0;
};

/// Times `fn(backend)` for the scalar reference and the best backend.
template <typename Fn>
TimedCase TimeBoth(SuiteContext* ctx, const Fn& fn) {
  const Backend& s = kernels::ScalarBackend();
  const Backend& v = kernels::BestBackend();
  TimedCase timed;
  timed.scalar_seconds = ctx->TimeBestOf([&] { fn(s); });
  timed.vector_seconds =
      &v == &s ? timed.scalar_seconds : ctx->TimeBestOf([&] { fn(v); });
  timed.speedup = timed.vector_seconds > 0.0
                      ? timed.scalar_seconds / timed.vector_seconds
                      : 1.0;
  return timed;
}

Status RunSuite(SuiteContext* ctx) {
  // One slot column's worth of doubles: big enough to amortize the
  // dispatch call, small enough that every working set stays
  // L1-resident so the gates measure ALU width, not memory bandwidth.
  const std::size_t n = ctx->smoke() ? 512 : 512;
  const std::size_t iters = ctx->smoke() ? 800 : 8000;
  KernelInputs in(n, 20260808);

  auto params = [&] {
    return std::map<std::string, double>{
        {"n", static_cast<double>(n)},
        {"iters", static_cast<double>(iters)},
        {"simd_width", static_cast<double>(kernels::HostSimdWidth())}};
  };
  auto metrics = [](const TimedCase& timed) {
    return std::map<std::string, double>{
        {"scalar_seconds", timed.scalar_seconds},
        {"vector_seconds", timed.vector_seconds},
        {"speedup", timed.speedup}};
  };

  // (a) the bank's fused BPL column update, dense (everyone
  // participates, uniform epsilon) and masked (per-slot adds staged by
  // ExpandMaskEpsilon) flavors.
  std::vector<double> bpl(n, 0.0), eps_sum(n, 0.0);
  const TimedCase fused_dense = TimeBoth(ctx, [&](const Backend& k) {
    for (std::size_t it = 0; it < iters; ++it) {
      k.fused_loss_add_uniform(in.loss.data(), 0.1, bpl.data(),
                               eps_sum.data(), n);
    }
  });
  ctx->Record("fused_bpl_dense", params(),
              metrics(fused_dense));

  const TimedCase fused_masked = TimeBoth(ctx, [&](const Backend& k) {
    for (std::size_t it = 0; it < iters; ++it) {
      k.fused_loss_add(in.loss.data(), in.add.data(), bpl.data(),
                       eps_sum.data(), n);
    }
  });
  ctx->Record("fused_bpl_masked", params(),
              metrics(fused_masked));

  // (c) dense row ops behind Markov propagation.
  std::vector<double> out = in.out;
  const TimedCase axpy = TimeBoth(ctx, [&](const Backend& k) {
    for (std::size_t it = 0; it < iters; ++it) {
      k.axpy(0.7, in.x.data(), out.data(), n);
    }
  });
  ctx->Record("axpy", params(), metrics(axpy));

  double dot_sink = 0.0;
  const TimedCase dot = TimeBoth(ctx, [&](const Backend& k) {
    for (std::size_t it = 0; it < iters; ++it) {
      dot_sink += k.dot(in.q.data(), in.d.data(), n);
    }
  });
  ctx->Record("dot", params(), metrics(dot));

  // (b) one Algorithm-1 pair-scan round: candidate selection, subset
  // sums, log-ratio filter — chained the way PairLossIterativeCore
  // chains them.
  std::vector<std::uint32_t> idx(n);
  std::vector<double> logr(n);
  const TimedCase pair_scan = TimeBoth(ctx, [&](const Backend& k) {
    for (std::size_t it = 0; it < iters; ++it) {
      const std::size_t m =
          k.select_greater(in.q.data(), in.d.data(), n, idx.data());
      double q_sum = 0.0, d_sum = 0.0;
      k.gather_pair_sums(in.q.data(), in.d.data(), idx.data(), m, &q_sum,
                         &d_sum);
      for (std::size_t i = 0; i < m; ++i) logr[i] = in.x[idx[i]];
      const double threshold =
          q_sum > 0.0 && d_sum > 0.0 ? std::log(q_sum / d_sum) : 0.0;
      dot_sink +=
          static_cast<double>(k.filter_gt(logr.data(), idx.data(), m,
                                          threshold));
    }
  });
  ctx->Record("pair_scan", params(), metrics(pair_scan));
  ctx->Derived("dot_checksum_finite", std::isfinite(dot_sink) ? 1.0 : 0.0);

  ctx->Derived("simd_width", static_cast<double>(kernels::HostSimdWidth()));
  ctx->Derived("bitwise_match",
               BackendsMatch(kernels::ScalarBackend(), kernels::BestBackend())
                   ? 1.0
                   : 0.0);
  ctx->Derived("fused_dense_speedup", fused_dense.speedup);
  ctx->Derived("fused_masked_speedup", fused_masked.speedup);
  ctx->Derived("axpy_speedup", axpy.speedup);
  ctx->Derived("dot_speedup", dot.speedup);
  ctx->Derived("pair_scan_speedup", pair_scan.speedup);
  return Status::OK();
}

}  // namespace

void RegisterKernelsSuite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "kernels";
  spec.description =
      "dispatched kernel microbenchmarks: scalar reference vs best "
      "backend (fused BPL update, axpy/dot, pair scan) + bitwise sweep";
  spec.repetitions = 5;
  spec.metric_policies = {
      {"scalar_seconds", MetricPolicy::Latency()},
      {"vector_seconds", MetricPolicy::Latency()},
      {"speedup", MetricPolicy::Throughput()},
  };
  spec.gates = {
      // The determinism contract (kernels.h): every backend bitwise
      // equal to the scalar reference. Enforced everywhere, always.
      {"scalar_vector_bitwise",
       "bitwise_match == 1 && dot_checksum_finite == 1"},
      // ISSUE 7 acceptance: vector >= 2x scalar on >= 4-wide hosts for
      // the fused BPL column update, the tentpole hot path;
      // skip-with-reason on narrower hosts. Timing bars, full only.
      {"vector_fused_speedup",
       "fused_dense_speedup >= 2 && fused_masked_speedup >= 2",
       /*min_cores=*/0, /*full_only=*/true, /*min_simd_width=*/4},
      // axpy/dot/scan cap out near 2x under the blocked-4 contract:
      // the scalar reference already carries 4-way ILP, and all three
      // are load/store-port bound at ~1 element/cycle either way, so
      // the honest bar is 1.5x (measured 1.7-1.95 on the ref host).
      {"vector_row_op_speedup", "axpy_speedup >= 1.5 && dot_speedup >= 1.5",
       /*min_cores=*/0, /*full_only=*/true, /*min_simd_width=*/4},
      {"vector_pair_scan_speedup", "pair_scan_speedup >= 1.5",
       /*min_cores=*/0, /*full_only=*/true, /*min_simd_width=*/4},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
