// Paper Figure 8: data utility (expected absolute Laplace noise) of
// the 2-DP_T mechanisms.
//
//  (a) vs T in {5, 10, 50} at n = 50, s = 0.001 (strong correlation):
//      Algorithm 2's noise is flat in T; Algorithm 3 is cheaper for
//      short T and converges to Algorithm 2.
//  (b) vs s in {0.01, 0.1, 1} at T = 10: both decay toward the
//      no-correlation line E|noise| = 1/alpha.

#include <map>
#include <string>
#include <vector>

#include "bench/suites/suites.h"
#include "core/budget_allocation.h"
#include "markov/smoothing.h"
#include "release/release_engine.h"

namespace tcdp {
namespace bench {
namespace {

constexpr double kAlpha = 2.0;

Status RecordPoint(SuiteContext* ctx, const std::string& case_name,
                   std::size_t n, double s, std::size_t horizon) {
  TCDP_ASSIGN_OR_RETURN(const auto matrix, SmoothedCorrelationMatrix(n, s));
  TCDP_ASSIGN_OR_RETURN(const auto corr,
                        TemporalCorrelations::Both(matrix, matrix));
  TCDP_ASSIGN_OR_RETURN(auto alloc, BudgetAllocator::Create(corr, kAlpha));
  const double noise_a2 = ExpectedAbsNoise(alloc.UpperBoundSchedule(horizon));
  TCDP_ASSIGN_OR_RETURN(const auto quantified,
                        alloc.QuantifiedSchedule(horizon));
  const double noise_a3 = ExpectedAbsNoise(quantified);
  ctx->Record(case_name,
              {{"n", static_cast<double>(n)},
               {"s", s},
               {"alpha", kAlpha},
               {"horizon", static_cast<double>(horizon)}},
              {{"noise_a2", noise_a2}, {"noise_a3", noise_a3}});
  return Status::OK();
}

Status RunSuite(SuiteContext* ctx) {
  const std::size_t n = ctx->smoke() ? 20 : 50;
  // (a) utility vs T under strong correlation.
  const double strong_s = 0.001;
  TCDP_RETURN_IF_ERROR(RecordPoint(ctx, "a_T5", n, strong_s, 5));
  TCDP_RETURN_IF_ERROR(RecordPoint(ctx, "a_T10", n, strong_s, 10));
  TCDP_RETURN_IF_ERROR(RecordPoint(ctx, "a_T50", n, strong_s, 50));
  // (b) utility vs s at T = 10.
  TCDP_RETURN_IF_ERROR(RecordPoint(ctx, "b_s001", n, 0.01, 10));
  TCDP_RETURN_IF_ERROR(RecordPoint(ctx, "b_s01", n, 0.1, 10));
  TCDP_RETURN_IF_ERROR(RecordPoint(ctx, "b_s1", n, 1.0, 10));
  return Status::OK();
}

}  // namespace

void RegisterFig8Suite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "fig8";
  spec.description =
      "paper Figure 8: expected |Laplace noise| of the 2-DP_T "
      "mechanisms vs horizon T and correlation degree s";
  spec.gates = {
      // (a): Algorithm 3 beats Algorithm 2 at short horizons and
      // approaches it as T grows.
      {"quantified_cheaper_short_T",
       "a_T5.noise_a3 < a_T5.noise_a2 && a_T10.noise_a3 < a_T10.noise_a2"},
      {"algorithms_converge_large_T",
       "a_T50.noise_a3 <= a_T50.noise_a2 + 1e-9 && "
       "a_T50.noise_a2 - a_T50.noise_a3 < a_T5.noise_a2 - a_T5.noise_a3"},
      // (a): Algorithm 2's noise is flat in T (steady-state schedule).
      {"upper_bound_flat_in_T",
       "abs(a_T5.noise_a2 - a_T50.noise_a2) < 1e-6"},
      // (b): weaker correlations cost less noise, decaying toward the
      // no-correlation line 1/alpha = 0.5.
      {"noise_decays_with_s",
       "b_s001.noise_a2 > b_s01.noise_a2 && "
       "b_s01.noise_a2 > b_s1.noise_a2 && b_s1.noise_a2 >= 0.5 - 1e-9"},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
