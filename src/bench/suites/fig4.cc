// Paper Figure 4: the maximum BPL over time for four (transition
// matrix, eps) configurations, with the Theorem 5 supremum when it
// exists.
//
//  (a) P = I (q=1, d=0),            eps=0.23 -> no supremum (linear)
//  (b) P = (0.8 .2; 0 1),           eps=0.23 -> no supremum
//  (c) P = (0.8 .2; .1 .9),         eps=0.23 -> sup ~ 0.79
//  (d) P = (0.8 .2; 0 1),           eps=0.15 -> sup ~ 1.19

#include <map>
#include <string>

#include "bench/suites/suites.h"
#include "core/supremum.h"
#include "core/tpl_accountant.h"

namespace tcdp {
namespace bench {
namespace {

constexpr std::size_t kHorizon = 100;

Status Panel(SuiteContext* ctx, const std::string& case_name,
             const StochasticMatrix& p, double eps) {
  TplAccountant acc(TemporalCorrelations::BackwardOnly(p));
  TCDP_RETURN_IF_ERROR(acc.RecordUniformReleases(eps, kHorizon));
  TemporalLossFunction loss(p);
  TCDP_ASSIGN_OR_RETURN(const auto sup, ComputeSupremum(loss, eps));
  std::map<std::string, double> metrics;
  metrics["sup_exists"] = sup.exists ? 1.0 : 0.0;
  metrics["sup_value"] = sup.exists ? sup.value : 0.0;
  TCDP_ASSIGN_OR_RETURN(metrics["bpl_t10"], acc.Bpl(10));
  TCDP_ASSIGN_OR_RETURN(metrics["bpl_t100"], acc.Bpl(kHorizon));
  ctx->Record(case_name,
              {{"epsilon", eps},
               {"horizon", static_cast<double>(kHorizon)}},
              metrics);
  return Status::OK();
}

Status RunSuite(SuiteContext* ctx) {
  TCDP_RETURN_IF_ERROR(
      Panel(ctx, "a_identity", StochasticMatrix::Identity(2), 0.23));
  const auto absorbing =
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
  TCDP_RETURN_IF_ERROR(Panel(ctx, "b_absorbing_eps023", absorbing, 0.23));
  TCDP_RETURN_IF_ERROR(
      Panel(ctx, "c_mixing_eps023",
            StochasticMatrix::FromRows({{0.8, 0.2}, {0.1, 0.9}}), 0.23));
  TCDP_RETURN_IF_ERROR(Panel(ctx, "d_absorbing_eps015", absorbing, 0.15));
  return Status::OK();
}

}  // namespace

void RegisterFig4Suite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "fig4";
  spec.description =
      "paper Figure 4: maximum BPL over t=1..100 with the Theorem 5 "
      "supremum per panel";
  spec.gates = {
      // Existence pattern across the four panels: (a) and (b) grow
      // without bound, (c) and (d) plateau.
      {"supremum_existence_pattern",
       "a_identity.sup_exists == 0 && b_absorbing_eps023.sup_exists == 0 "
       "&& c_mixing_eps023.sup_exists == 1 && "
       "d_absorbing_eps015.sup_exists == 1"},
      // (a): under P = I the BPL is exactly t*eps — 23 at t=100.
      {"identity_bpl_linear",
       "abs(a_identity.bpl_t100 - 23.0) < 1e-9"},
      // (c)/(d): the paper's plateau values (~0.79 and ~1.19).
      {"plateaus_match_paper",
       "abs(c_mixing_eps023.sup_value - 0.79) < 0.02 && "
       "abs(d_absorbing_eps015.sup_value - 1.19) < 0.02"},
      // The recurrence respects Theorem 5: trajectories never exceed
      // an existing supremum.
      {"trajectory_below_supremum",
       "c_mixing_eps023.bpl_t100 <= c_mixing_eps023.sup_value + 1e-9 && "
       "d_absorbing_eps015.bpl_t100 <= d_absorbing_eps015.sup_value + 1e-9"},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
