#ifndef TCDP_BENCH_SUITES_COMMON_H_
#define TCDP_BENCH_SUITES_COMMON_H_

/// \file
/// Workload builders shared by the fleet/shard/net throughput suites:
/// the same deterministic profile, request and micro-batch streams the
/// pre-harness BENCH_* emitters used (seed 20260728), so the ported
/// suites measure the identical workloads.

#include <cstdint>
#include <string>
#include <vector>

#include "core/temporal_correlations.h"

namespace tcdp {
namespace bench {

struct ServiceWorkload {
  std::size_t users = 0;
  std::size_t profiles = 0;     // distinct matrix pairs
  std::size_t matrix_size = 0;  // n
  std::size_t requests = 0;     // per-user release requests
  std::uint64_t seed = 20260728;
};

struct ReleaseRequest {
  std::size_t user = 0;
  double epsilon = 0.0;
};

/// The deterministic micro-batch semantics, applied offline: the exact
/// global (eps, participants) sequence the sharded service dispatches.
struct GlobalRelease {
  double epsilon = 0.0;
  std::vector<std::size_t> participants;
};

std::vector<TemporalCorrelations> MakeServiceProfiles(
    const ServiceWorkload& workload);
std::vector<ReleaseRequest> MakeServiceRequests(
    const ServiceWorkload& workload);
std::vector<GlobalRelease> BatchServiceRequests(
    const std::vector<ReleaseRequest>& requests, std::size_t batch_window);

inline std::string BenchUserName(std::size_t u) {
  return "user-" + std::to_string(u);
}

}  // namespace bench
}  // namespace tcdp

#endif  // TCDP_BENCH_SUITES_COMMON_H_
