// Replication throughput + failover (ISSUE 10): how fast a follower
// can drain a primary's WAL stream over loopback TCP, and how long
// promotion takes, against the local ingest rate as the bar.
//
//   * ingest: a durable 2-shard service applies the workload locally —
//     the rate the replication stream has to keep up with.
//   * stream: a follower bootstraps from the finished directory over
//     the log stream (deep pipelining: the primary pushes batches up
//     to its write-buffer bound without waiting for acks, >= 8 batches
//     in flight). The acceptance gate requires >= 50% of the local
//     ingest record rate (full runs on >= 2 cores — the tailer,
//     follower and its fdatasyncs timeslice one core otherwise).
//   * live_tail: the same follower shape attached DURING ingest —
//     convergence measured end to end (reported, not gated: it is
//     bounded by the slower of the two sides).
//   * failover: the primary dies, the follower promotes through crash
//     recovery; gated at a generous wall-clock bound.
//   * Correctness rides along in every mode: after convergence the
//     replica directory must be byte-identical to the primary's.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/suites/common.h"
#include "bench/suites/suites.h"
#include "common/timer.h"
#include "replication/follower.h"
#include "replication/log_stream.h"
#include "server/event_log.h"
#include "server/sharded_service.h"

namespace tcdp {
namespace bench {
namespace {

constexpr std::size_t kShards = 2;
constexpr std::size_t kBatchWindow = 16;

std::string ShardWal(const std::string& dir, std::size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".wal";
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::NotFound("cannot read " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

StatusOr<std::vector<std::uint64_t>> WalRecordCounts(
    const std::string& dir) {
  std::vector<std::uint64_t> counts;
  for (std::size_t s = 0; s < kShards; ++s) {
    TCDP_ASSIGN_OR_RETURN(auto read, server::ReadEventLog(ShardWal(dir, s)));
    counts.push_back(read.records.size());
  }
  return counts;
}

/// Applies the workload to a durable service at \p dir. Returns the
/// wall seconds for the timed request phase.
StatusOr<double> RunIngest(const ServiceWorkload& workload,
                           const std::string& dir) {
  std::filesystem::remove_all(dir);
  const auto profiles = MakeServiceProfiles(workload);
  const auto requests = MakeServiceRequests(workload);
  server::ShardedServiceOptions options;
  options.num_shards = kShards;
  options.batch_window = kBatchWindow;
  TCDP_ASSIGN_OR_RETURN(auto service,
                        server::ShardedReleaseService::Create(dir, options));
  for (std::size_t u = 0; u < workload.users; ++u) {
    TCDP_RETURN_IF_ERROR(
        service->Join(BenchUserName(u), profiles[u % workload.profiles]));
  }
  TCDP_RETURN_IF_ERROR(service->Flush());
  WallTimer timer;
  for (const ReleaseRequest& request : requests) {
    TCDP_RETURN_IF_ERROR(
        service->Release(BenchUserName(request.user), request.epsilon));
  }
  TCDP_RETURN_IF_ERROR(service->Flush());
  const double seconds = timer.ElapsedSeconds();
  TCDP_RETURN_IF_ERROR(service->Close());
  return seconds;
}

Status AwaitConverged(replication::Follower* follower,
                      const std::vector<std::uint64_t>& want) {
  for (int i = 0; i < 12000; ++i) {  // ~2 min ceiling
    const replication::FollowerStatus status = follower->status();
    if (status.diverged) {
      return Status::Internal("follower diverged: " +
                              status.last_error.message());
    }
    if (status.durable_records == want) return Status::OK();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Status::Internal("follower never converged");
}

Status ExpectBitwiseIdentical(const std::string& primary,
                              const std::string& replica, bool* identical) {
  TCDP_ASSIGN_OR_RETURN(const std::string manifest_a,
                        ReadFileBytes(primary + "/MANIFEST"));
  TCDP_ASSIGN_OR_RETURN(const std::string manifest_b,
                        ReadFileBytes(replica + "/MANIFEST"));
  *identical = manifest_a == manifest_b;
  for (std::size_t s = 0; *identical && s < kShards; ++s) {
    TCDP_ASSIGN_OR_RETURN(const std::string a,
                          ReadFileBytes(ShardWal(primary, s)));
    TCDP_ASSIGN_OR_RETURN(const std::string b,
                          ReadFileBytes(ShardWal(replica, s)));
    *identical = a == b;
  }
  return Status::OK();
}

struct StreamResult {
  double seconds = 0.0;          ///< subscribe -> fully acked
  double failover_seconds = 0.0; ///< Promote() wall time
  bool bitwise_identical = false;
};

/// Bootstraps a follower from \p primary_dir over a live log stream,
/// then kills the stream and promotes.
StatusOr<StreamResult> RunStream(const std::string& primary_dir,
                                 const std::string& replica_dir) {
  std::filesystem::remove_all(replica_dir);
  TCDP_ASSIGN_OR_RETURN(const std::vector<std::uint64_t> want,
                        WalRecordCounts(primary_dir));
  replication::LogStreamOptions stream_options;
  stream_options.log_dir = primary_dir;
  TCDP_ASSIGN_OR_RETURN(auto stream,
                        replication::LogStreamServer::Listen(stream_options));
  Status serve_status;
  std::thread serve_thread(
      [&stream, &serve_status] { serve_status = stream->Serve(); });

  replication::FollowerOptions options;
  options.primary_port = stream->port();
  options.log_dir = replica_dir;
  StreamResult result;
  Status inner = Status::OK();
  auto follower = replication::Follower::Open(options);
  if (!follower.ok()) inner = follower.status();
  if (inner.ok()) {
    WallTimer timer;
    inner = (*follower)->Start();
    if (inner.ok()) inner = AwaitConverged(follower->get(), want);
    result.seconds = timer.ElapsedSeconds();
  }
  stream->Stop();
  serve_thread.join();
  TCDP_RETURN_IF_ERROR(inner);
  TCDP_RETURN_IF_ERROR(serve_status);

  TCDP_RETURN_IF_ERROR(ExpectBitwiseIdentical(primary_dir, replica_dir,
                                              &result.bitwise_identical));
  // The primary is gone; promote the replica through crash recovery.
  WallTimer failover;
  TCDP_ASSIGN_OR_RETURN(auto promoted, (*follower)->Promote());
  result.failover_seconds = failover.ElapsedSeconds();
  TCDP_RETURN_IF_ERROR(promoted->Close());
  return result;
}

/// Ingest with the follower attached from the start: end-to-end
/// seconds until the replica has acked everything.
StatusOr<double> RunLiveTail(const ServiceWorkload& workload,
                             const std::string& primary_dir,
                             const std::string& replica_dir) {
  std::filesystem::remove_all(primary_dir);
  std::filesystem::remove_all(replica_dir);
  const auto profiles = MakeServiceProfiles(workload);
  const auto requests = MakeServiceRequests(workload);
  server::ShardedServiceOptions options;
  options.num_shards = kShards;
  options.batch_window = kBatchWindow;
  TCDP_ASSIGN_OR_RETURN(
      auto service,
      server::ShardedReleaseService::Create(primary_dir, options));
  replication::LogStreamOptions stream_options;
  stream_options.log_dir = primary_dir;
  TCDP_ASSIGN_OR_RETURN(auto stream,
                        replication::LogStreamServer::Listen(stream_options));
  Status serve_status;
  std::thread serve_thread(
      [&stream, &serve_status] { serve_status = stream->Serve(); });
  replication::FollowerOptions follower_options;
  follower_options.primary_port = stream->port();
  follower_options.log_dir = replica_dir;
  double seconds = 0.0;
  Status inner = Status::OK();
  auto follower = replication::Follower::Open(follower_options);
  if (!follower.ok()) inner = follower.status();
  if (inner.ok()) inner = (*follower)->Start();
  if (inner.ok()) {
    WallTimer timer;
    for (std::size_t u = 0; inner.ok() && u < workload.users; ++u) {
      inner = service->Join(BenchUserName(u),
                            profiles[u % workload.profiles]);
    }
    if (inner.ok()) inner = service->Flush();
    for (const ReleaseRequest& request : requests) {
      if (!inner.ok()) break;
      inner = service->Release(BenchUserName(request.user), request.epsilon);
    }
    if (inner.ok()) inner = service->Flush();
    if (inner.ok()) {
      auto want = WalRecordCounts(primary_dir);
      if (!want.ok()) {
        inner = want.status();
      } else {
        inner = AwaitConverged(follower->get(), *want);
      }
    }
    seconds = timer.ElapsedSeconds();
    (*follower)->Stop();
  }
  stream->Stop();
  serve_thread.join();
  TCDP_RETURN_IF_ERROR(inner);
  TCDP_RETURN_IF_ERROR(serve_status);
  TCDP_RETURN_IF_ERROR(service->Close());
  return seconds;
}

Status RunSuite(SuiteContext* ctx) {
  ServiceWorkload workload;
  workload.users = ctx->smoke() ? 16 : 64;
  workload.profiles = ctx->smoke() ? 4 : 8;
  workload.matrix_size = ctx->smoke() ? 6 : 8;
  workload.requests = ctx->smoke() ? 200 : 1500;

  const std::string base =
      (std::filesystem::temp_directory_path() / "tcdp_bench_repl").string();
  const std::string primary_dir = base + "_primary";
  const std::string replica_dir = base + "_replica";
  const std::string live_primary_dir = base + "_live_primary";
  const std::string live_replica_dir = base + "_live_replica";

  // The stream pushes batches up to its write-buffer bound without
  // waiting for acks: the effective pipeline depth in batches.
  const replication::LogStreamOptions defaults;
  const double pipeline_depth = static_cast<double>(
      defaults.max_write_buffer / defaults.max_batch_bytes);

  auto params = [&](double extra_depth) {
    return std::map<std::string, double>{
        {"users", static_cast<double>(workload.users)},
        {"requests", static_cast<double>(workload.requests)},
        {"shards", static_cast<double>(kShards)},
        {"batch_window", static_cast<double>(kBatchWindow)},
        {"pipeline_depth", extra_depth}};
  };

  TCDP_ASSIGN_OR_RETURN(const double ingest_seconds,
                        RunIngest(workload, primary_dir));
  TCDP_ASSIGN_OR_RETURN(const std::vector<std::uint64_t> counts,
                        WalRecordCounts(primary_dir));
  double total_records = 0.0;
  for (std::uint64_t count : counts) {
    total_records += static_cast<double>(count);
  }
  const double ingest_rate =
      ingest_seconds > 0.0 ? total_records / ingest_seconds : 0.0;
  ctx->Record("ingest", params(0),
              {{"seconds", ingest_seconds},
               {"records_per_sec", ingest_rate}});

  TCDP_ASSIGN_OR_RETURN(const StreamResult stream,
                        RunStream(primary_dir, replica_dir));
  const double stream_rate =
      stream.seconds > 0.0 ? total_records / stream.seconds : 0.0;
  ctx->Record("stream", params(pipeline_depth),
              {{"seconds", stream.seconds},
               {"records_per_sec", stream_rate},
               {"failover_seconds", stream.failover_seconds}});

  TCDP_ASSIGN_OR_RETURN(
      const double live_seconds,
      RunLiveTail(workload, live_primary_dir, live_replica_dir));
  ctx->Record("live_tail", params(pipeline_depth),
              {{"seconds", live_seconds},
               {"records_per_sec",
                live_seconds > 0.0 ? total_records / live_seconds : 0.0}});

  ctx->Derived("repl_throughput_ratio",
               ingest_rate > 0.0 ? stream_rate / ingest_rate : 0.0);
  ctx->Derived("failover_seconds", stream.failover_seconds);
  ctx->Derived("bitwise_identical", stream.bitwise_identical ? 1.0 : 0.0);
  ctx->Derived("stream_pipeline_depth", pipeline_depth);

  for (const std::string& dir :
       {primary_dir, replica_dir, live_primary_dir, live_replica_dir}) {
    std::filesystem::remove_all(dir);
  }
  return Status::OK();
}

}  // namespace

void RegisterReplSuite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "repl";
  spec.description =
      "WAL-streaming replication: follower drain rate vs local ingest, "
      "byte-identical convergence, and failover (promotion) time";
  spec.metric_policies = {
      {"records_per_sec", MetricPolicy::Throughput()},
      {"seconds", MetricPolicy::Latency()},
      {"failover_seconds", MetricPolicy::Latency()},
  };
  spec.gates = {
      // Correctness in every mode: the replica is the primary's bytes.
      {"follower_bitwise_identical", "bitwise_identical == 1"},
      // The stream must admit a deep pipeline (>= 8 batches in flight).
      {"stream_pipeline_at_least_8", "stream_pipeline_depth >= 8"},
      // ISSUE 10 acceptance: streaming sustains >= 50% of local ingest
      // at pipeline depth >= 8. Timing-based — meaningless when the
      // tailer, follower, and both fdatasync paths share one core.
      {"stream_at_least_half_of_ingest", "repl_throughput_ratio >= 0.5",
       /*min_cores=*/2, /*full_only=*/true},
      // Promotion is crash recovery over a small replica: a generous
      // absolute bound still catches a promotion path that re-streams
      // or re-derives the world.
      {"failover_under_five_seconds", "failover_seconds <= 5"},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
