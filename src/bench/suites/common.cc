#include "bench/suites/common.h"

#include "common/random.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {
namespace bench {

std::vector<TemporalCorrelations> MakeServiceProfiles(
    const ServiceWorkload& workload) {
  Rng rng(workload.seed);
  std::vector<TemporalCorrelations> profiles;
  profiles.reserve(workload.profiles);
  for (std::size_t p = 0; p < workload.profiles; ++p) {
    const StochasticMatrix m =
        StochasticMatrix::Random(workload.matrix_size, &rng);
    profiles.push_back(TemporalCorrelations::Both(m, m).value());
  }
  return profiles;
}

std::vector<ReleaseRequest> MakeServiceRequests(
    const ServiceWorkload& workload) {
  Rng rng(workload.seed + 1);
  const double epsilons[] = {0.05, 0.1, 0.2};
  std::vector<ReleaseRequest> requests(workload.requests);
  for (auto& request : requests) {
    request.user = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(workload.users) - 1));
    request.epsilon = epsilons[rng.UniformInt(0, 2)];
  }
  return requests;
}

std::vector<GlobalRelease> BatchServiceRequests(
    const std::vector<ReleaseRequest>& requests, std::size_t batch_window) {
  std::vector<GlobalRelease> releases;
  std::vector<GlobalRelease> window;
  std::size_t count = 0;
  auto flush = [&] {
    for (auto& group : window) releases.push_back(std::move(group));
    window.clear();
    count = 0;
  };
  for (const ReleaseRequest& request : requests) {
    GlobalRelease* group = nullptr;
    for (auto& candidate : window) {
      if (candidate.epsilon == request.epsilon) group = &candidate;
    }
    if (group == nullptr) {
      window.push_back(GlobalRelease{request.epsilon, {}});
      group = &window.back();
    }
    bool seen = false;
    for (std::size_t u : group->participants) seen |= u == request.user;
    if (!seen) group->participants.push_back(request.user);
    if (++count >= batch_window) flush();
  }
  flush();
  return releases;
}

}  // namespace bench
}  // namespace tcdp
