#include "bench/suites/suites.h"

namespace tcdp {
namespace bench {

void RegisterAllSuites(Harness* harness) {
  // Paper reproductions first (seconds-scale, deterministic), then the
  // systems throughput suites (the slow part of a full run).
  RegisterFig3Suite(harness);
  RegisterFig4Suite(harness);
  RegisterFig5Suite(harness);
  RegisterFig6Suite(harness);
  RegisterFig7Suite(harness);
  RegisterFig8Suite(harness);
  RegisterTable2Suite(harness);
  RegisterWEventSuite(harness);
  RegisterAblationSuite(harness);
  RegisterKernelsSuite(harness);
  RegisterFleetSuite(harness);
  RegisterShardSuite(harness);
  RegisterNetSuite(harness);
  RegisterReplSuite(harness);
  RegisterObsSuite(harness);
}

}  // namespace bench
}  // namespace tcdp
