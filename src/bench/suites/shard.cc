// Sharded release service throughput + recovery (ported from the
// standalone bench_shard_service emitter):
//
//   * requests/sec over a shard-count x batch-window grid against the
//     single-shard FleetEngine path driven with the identical batched
//     event sequence (PR 3 acceptance: best multi-shard beats the
//     baseline on >= 2 cores, full runs only).
//   * recovery time and disk footprint vs WAL length: full replay vs
//     snapshot + suffix vs a compacted log — compaction must shrink
//     the on-disk WAL in every mode (the workload is deterministic).
//
// Bitwise service/baseline alpha equality is gated in every mode.

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/suites/common.h"
#include "bench/suites/suites.h"
#include "common/timer.h"
#include "server/sharded_service.h"
#include "service/fleet_engine.h"

namespace tcdp {
namespace bench {
namespace {

struct RunResult {
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double overall_alpha = 0.0;
  std::size_t global_releases = 0;
};

/// PR 2's engine, single shard, no queue, no WAL: the bar the sharded
/// service has to clear.
StatusOr<RunResult> RunFleetEngineBaseline(const ServiceWorkload& workload,
                                           std::size_t batch_window) {
  const auto profiles = MakeServiceProfiles(workload);
  const auto requests = MakeServiceRequests(workload);
  const auto releases = BatchServiceRequests(requests, batch_window);
  FleetEngineOptions options;
  options.num_threads = 1;
  FleetEngine engine(options);
  for (std::size_t u = 0; u < workload.users; ++u) {
    engine.AddUser(BenchUserName(u), profiles[u % workload.profiles]);
  }
  WallTimer timer;
  for (const GlobalRelease& release : releases) {
    TCDP_RETURN_IF_ERROR(
        engine.RecordRelease(release.epsilon, release.participants));
  }
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  result.requests_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(requests.size()) / result.seconds
          : 0.0;
  result.overall_alpha = engine.OverallAlpha();
  result.global_releases = releases.size();
  return result;
}

StatusOr<RunResult> RunService(const ServiceWorkload& workload,
                               std::size_t shards, std::size_t batch_window,
                               const std::string& log_dir,
                               std::size_t threads_per_shard = 1) {
  const auto profiles = MakeServiceProfiles(workload);
  const auto requests = MakeServiceRequests(workload);
  server::ShardedServiceOptions options;
  options.num_shards = shards;
  options.batch_window = batch_window;
  options.threads_per_shard = threads_per_shard;
  TCDP_ASSIGN_OR_RETURN(
      auto service, server::ShardedReleaseService::Create(log_dir, options));
  for (std::size_t u = 0; u < workload.users; ++u) {
    TCDP_RETURN_IF_ERROR(
        service->Join(BenchUserName(u), profiles[u % workload.profiles]));
  }
  TCDP_RETURN_IF_ERROR(service->Flush());  // joins applied before timing
  WallTimer timer;
  for (const ReleaseRequest& request : requests) {
    TCDP_RETURN_IF_ERROR(
        service->Release(BenchUserName(request.user), request.epsilon));
  }
  TCDP_RETURN_IF_ERROR(service->Flush());
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  result.requests_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(requests.size()) / result.seconds
          : 0.0;
  TCDP_ASSIGN_OR_RETURN(result.overall_alpha, service->OverallAlpha());
  result.global_releases = service->stats().global_releases;
  TCDP_RETURN_IF_ERROR(service->Close());
  return result;
}

Status RunSuite(SuiteContext* ctx) {
  ServiceWorkload workload;
  workload.users = ctx->smoke() ? 32 : 256;
  workload.profiles = ctx->smoke() ? 4 : 16;
  workload.matrix_size = ctx->smoke() ? 6 : 16;
  workload.requests = ctx->smoke() ? 120 : 1000;

  const std::size_t batch_window = ctx->smoke() ? 8 : 16;
  const std::vector<std::size_t> shard_counts =
      ctx->smoke() ? std::vector<std::size_t>{1, 2}
                   : std::vector<std::size_t>{1, 2, 4};
  const std::vector<std::size_t> windows =
      ctx->smoke() ? std::vector<std::size_t>{batch_window}
                   : std::vector<std::size_t>{batch_window, 64};

  auto params = [&](std::size_t shards, std::size_t window,
                    std::size_t threads_per_shard = 1) {
    return std::map<std::string, double>{
        {"users", static_cast<double>(workload.users)},
        {"profiles", static_cast<double>(workload.profiles)},
        {"matrix_size", static_cast<double>(workload.matrix_size)},
        {"requests", static_cast<double>(workload.requests)},
        {"shards", static_cast<double>(shards)},
        {"batch_window", static_cast<double>(window)},
        {"threads_per_shard", static_cast<double>(threads_per_shard)}};
  };
  auto metrics = [](const RunResult& run) {
    return std::map<std::string, double>{
        {"seconds", run.seconds},
        {"requests_per_sec", run.requests_per_sec},
        {"global_releases", static_cast<double>(run.global_releases)}};
  };

  TCDP_ASSIGN_OR_RETURN(const RunResult baseline,
                        RunFleetEngineBaseline(workload, batch_window));
  ctx->Record("fleet_engine_baseline", params(1, batch_window),
              metrics(baseline));

  bool alpha_match = true;
  double best_multi_shard = 0.0;
  for (std::size_t window : windows) {
    for (std::size_t shards : shard_counts) {
      TCDP_ASSIGN_OR_RETURN(const RunResult run,
                            RunService(workload, shards, window, ""));
      ctx->Record("service_shards" + std::to_string(shards) + "_window" +
                      std::to_string(window),
                  params(shards, window), metrics(run));
      // Only same-window runs count toward the gate: a coarser window
      // does less accounting work per request and would flatter the
      // comparison.
      if (shards > 1 && window == batch_window) {
        best_multi_shard = std::max(best_multi_shard, run.requests_per_sec);
      }
      // Determinism: every same-window configuration must agree with
      // the baseline on the fleet's overall alpha, bitwise.
      if (window == batch_window) {
        alpha_match &= run.overall_alpha == baseline.overall_alpha;
      }
    }
  }
  // Hybrid shard x bank parallelism: fixed shard count, per-shard bank
  // pools of K threads. Every hybrid run joins the bitwise alpha gate;
  // the speedup gate compares against the K=1 run of the SAME shard
  // count (the shard-count speedup is gated separately above).
  const std::size_t hybrid_shards = 2;
  const std::vector<std::size_t> hybrid_threads =
      ctx->smoke() ? std::vector<std::size_t>{1, 2}
                   : std::vector<std::size_t>{1, 2, 4};
  double hybrid_single = 0.0;
  double hybrid_best = 0.0;
  for (std::size_t tps : hybrid_threads) {
    TCDP_ASSIGN_OR_RETURN(
        const RunResult run,
        RunService(workload, hybrid_shards, batch_window, "", tps));
    ctx->Record("service_hybrid_shards" + std::to_string(hybrid_shards) +
                    "_tps" + std::to_string(tps),
                params(hybrid_shards, batch_window, tps), metrics(run));
    alpha_match &= run.overall_alpha == baseline.overall_alpha;
    if (tps == 1) {
      hybrid_single = run.requests_per_sec;
    } else {
      hybrid_best = std::max(hybrid_best, run.requests_per_sec);
    }
  }
  ctx->Derived("alpha_match", alpha_match ? 1.0 : 0.0);
  ctx->Derived("multi_shard_speedup",
               baseline.requests_per_sec > 0.0
                   ? best_multi_shard / baseline.requests_per_sec
                   : 0.0);
  ctx->Derived("hybrid_speedup",
               hybrid_single > 0.0 ? hybrid_best / hybrid_single : 0.0);

  // Durable run + recovery scaling: half and full logs, full log with
  // snapshots cutting the replay, and the snapshotted log after a WAL
  // compaction.
  const std::string base_dir =
      (std::filesystem::temp_directory_path() / "tcdp_bench_shard_logs")
          .string();
  struct RecoveryCase {
    const char* name;
    std::size_t requests;
    std::size_t snapshot_every;
    bool compact;
  };
  const RecoveryCase cases[] = {
      {"half_log", workload.requests / 2, 0, false},
      {"full_log", workload.requests, 0, false},
      {"full_log_snapshots", workload.requests, 25, false},
      {"full_log_compacted", workload.requests, 25, true},
  };
  std::uint64_t snapshotted_bytes = 0;
  std::uint64_t compacted_bytes = 0;
  for (const RecoveryCase& c : cases) {
    std::filesystem::remove_all(base_dir);
    ServiceWorkload durable = workload;
    durable.requests = c.requests;
    double compact_seconds = 0.0;
    {
      const auto profiles = MakeServiceProfiles(durable);
      const auto requests = MakeServiceRequests(durable);
      server::ShardedServiceOptions options;
      options.num_shards = 2;
      options.batch_window = batch_window;
      options.snapshot_every = c.snapshot_every;
      TCDP_ASSIGN_OR_RETURN(
          auto service,
          server::ShardedReleaseService::Create(base_dir, options));
      for (std::size_t u = 0; u < durable.users; ++u) {
        TCDP_RETURN_IF_ERROR(
            service->Join(BenchUserName(u), profiles[u % durable.profiles]));
      }
      for (const ReleaseRequest& request : requests) {
        TCDP_RETURN_IF_ERROR(
            service->Release(BenchUserName(request.user), request.epsilon));
      }
      if (c.compact) {
        TCDP_RETURN_IF_ERROR(service->Flush());
        WallTimer compact_timer;
        TCDP_RETURN_IF_ERROR(service->Compact());
        compact_seconds = compact_timer.ElapsedSeconds();
      }
      TCDP_RETURN_IF_ERROR(service->Close());
    }
    std::uint64_t wal_records = 0;
    std::uint64_t wal_physical_records = 0;
    std::uint64_t wal_bytes = 0;
    {
      TCDP_ASSIGN_OR_RETURN(auto probe,
                            server::ShardedReleaseService::Recover(base_dir));
      for (std::size_t s = 0; s < probe->num_shards(); ++s) {
        const server::ShardStats stats = probe->shard_stats(s);
        wal_records += stats.wal_records;
        wal_physical_records += stats.wal_physical_records;
        wal_bytes += stats.wal_bytes;
      }
      TCDP_RETURN_IF_ERROR(probe->Close());
    }
    if (std::string(c.name) == "full_log_snapshots") {
      snapshotted_bytes = wal_bytes;
    }
    if (c.compact) compacted_bytes = wal_bytes;
    WallTimer recover_timer;
    TCDP_ASSIGN_OR_RETURN(auto recovered,
                          server::ShardedReleaseService::Recover(base_dir));
    const double recover_seconds = recover_timer.ElapsedSeconds();
    TCDP_RETURN_IF_ERROR(recovered->Close());
    ctx->Record(
        std::string("recovery_") + c.name,
        {{"requests", static_cast<double>(c.requests)},
         {"snapshot_every", static_cast<double>(c.snapshot_every)},
         {"compacted", c.compact ? 1.0 : 0.0}},
        {{"wal_records", static_cast<double>(wal_records)},
         {"wal_physical_records", static_cast<double>(wal_physical_records)},
         {"wal_bytes", static_cast<double>(wal_bytes)},
         {"recover_seconds", recover_seconds},
         {"compact_seconds", compact_seconds}});
  }
  std::filesystem::remove_all(base_dir);
  ctx->Derived("uncompacted_wal_bytes",
               static_cast<double>(snapshotted_bytes));
  ctx->Derived("compacted_wal_bytes", static_cast<double>(compacted_bytes));
  return Status::OK();
}

}  // namespace

void RegisterShardSuite(Harness* harness) {
  SuiteSpec spec;
  spec.name = "shard";
  spec.description =
      "sharded release service: requests/sec vs the FleetEngine baseline "
      "over a shard x batch-window grid, WAL recovery and compaction";
  spec.metric_policies = {
      {"requests_per_sec", MetricPolicy::Throughput()},
      {"seconds", MetricPolicy::Latency()},
      {"recover_seconds", MetricPolicy::Latency()},
      {"compact_seconds", MetricPolicy::Latency()},
      // The workload is deterministic, so the log layout is too.
      {"global_releases", MetricPolicy::Exact()},
      {"wal_records", MetricPolicy::Exact()},
      {"wal_physical_records", MetricPolicy::Exact()},
      {"wal_bytes", MetricPolicy::Exact()},
  };
  spec.gates = {
      // Determinism: sharding must not change the fleet's accounting.
      {"alpha_bitwise_invariant", "alpha_match == 1"},
      // ISSUE 5 acceptance: a compacted log is strictly smaller than
      // the same log uncompacted. Deterministic, so always enforced.
      {"compaction_shrinks_wal",
       "compacted_wal_bytes > 0 && "
       "compacted_wal_bytes < uncompacted_wal_bytes"},
      // ISSUE 3 acceptance: best multi-shard beats the single-shard
      // FleetEngine path. Meaningless on a 1-core host (workers and
      // the ingest loop timeslice one pipe) — min_cores makes the
      // harness skip with that reason instead of failing.
      {"multi_shard_beats_fleet_engine", "multi_shard_speedup > 1",
       /*min_cores=*/2, /*full_only=*/true},
      // ISSUE 7 acceptance: per-shard bank pools pay — S shards x K
      // bank threads beats the same shard count at K=1 by >= 1.5x.
      // Needs S x K real cores to mean anything; skipped below 4.
      {"hybrid_beats_single_thread_per_shard", "hybrid_speedup >= 1.5",
       /*min_cores=*/4, /*full_only=*/true},
  };
  harness->Register(std::move(spec), RunSuite);
}

}  // namespace bench
}  // namespace tcdp
