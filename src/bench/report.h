#ifndef TCDP_BENCH_REPORT_H_
#define TCDP_BENCH_REPORT_H_

/// \file
/// The unified BENCH.json report: one run-over-run schema for every
/// suite (docs/BENCHMARKING.md documents it field by field). Replaces
/// the three per-bench BENCH_{fleet,shard,net}.json shapes.

#include <map>
#include <string>
#include <vector>

#include "bench/env.h"
#include "bench/json.h"
#include "bench/spec.h"
#include "common/status.h"

namespace tcdp {
namespace bench {

/// Schema identifier; bump on incompatible changes and teach
/// ReportFromJson to read the old one.
inline constexpr char kReportSchema[] = "tcdp-bench-v1";

/// One measured case: the unit of baseline comparison. Matched across
/// runs by (suite, case, mode, params).
struct BenchRecord {
  std::string suite;
  std::string case_name;
  std::string mode;  ///< "smoke" or "full"
  std::map<std::string, double> params;
  std::map<std::string, double> metrics;
  double timestamp_unix = 0.0;
  std::string timestamp_iso;
};

/// Outcome of one acceptance gate.
struct GateResult {
  std::string suite;
  std::string name;
  std::string expression;
  bool enforced = false;
  bool passed = false;    ///< meaningful only when enforced
  std::string reason;     ///< skip reason, or failure detail
};

/// A case (or gate) the harness skipped, with the reason — so a
/// baseline case absent from this run is distinguishable from a lost
/// one.
struct SkipEntry {
  std::string suite;
  std::string case_name;
  std::string reason;
};

struct BenchReport {
  std::string schema = kReportSchema;
  bool smoke = false;
  HardwareInfo hardware;
  BuildInfo build;
  double started_unix = 0.0;
  double finished_unix = 0.0;
  std::string started_iso;
  std::vector<std::string> suites_run;
  std::vector<BenchRecord> records;
  /// Suite -> derived gate inputs (speedups, match flags, ...).
  std::map<std::string, std::map<std::string, double>> derived;
  std::vector<GateResult> gates;
  std::vector<SkipEntry> skips;
  /// Suite -> metric -> comparison policy, embedded so the comparator
  /// (and external tooling) needs no out-of-band knowledge.
  std::map<std::string, std::map<std::string, MetricPolicy>> policies;

  const char* mode() const { return smoke ? "smoke" : "full"; }
  bool AllGatesPassed() const {
    for (const GateResult& gate : gates) {
      if (gate.enforced && !gate.passed) return false;
    }
    return true;
  }
  bool HasSkip(const std::string& suite, const std::string& case_name) const {
    for (const SkipEntry& skip : skips) {
      if (skip.suite == suite && skip.case_name == case_name) return true;
    }
    return false;
  }
};

/// Serializes the report. Each record embeds the run's hardware, build
/// and its own timestamps, so a single record is self-describing even
/// when extracted from the file.
Json ReportToJson(const BenchReport& report);

/// Parses and structurally validates a report (any error names the
/// offending key).
StatusOr<BenchReport> ReportFromJson(const Json& json);

/// Structural schema check used by tests and `tcdp bench` before
/// writing: every record carries suite/case/mode/params/metrics/
/// hardware/build/timestamps, gates and skips are well-formed.
Status ValidateReportJson(const Json& json);

}  // namespace bench
}  // namespace tcdp

#endif  // TCDP_BENCH_REPORT_H_
