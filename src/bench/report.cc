#include "bench/report.h"

namespace tcdp {
namespace bench {
namespace {

Json NumberMapToJson(const std::map<std::string, double>& map) {
  JsonObject object;
  for (const auto& [key, value] : map) object.Set(key, Json(value));
  return Json(std::move(object));
}

StatusOr<std::map<std::string, double>> NumberMapFromJson(const Json& json,
                                                          const char* where) {
  if (!json.is_object()) {
    return Status::InvalidArgument(std::string(where) + ": not an object");
  }
  std::map<std::string, double> map;
  for (const auto& [key, value] : json.as_object().items()) {
    if (!value.is_number()) {
      return Status::InvalidArgument(std::string(where) + "." + key +
                                     ": not a number");
    }
    map[key] = value.as_number();
  }
  return map;
}

Json HardwareToJson(const HardwareInfo& hardware) {
  JsonObject object;
  object.Set("cores", Json(hardware.cores));
  object.Set("cpu_mhz", Json(hardware.cpu_mhz));
  object.Set("hostname", Json(hardware.hostname));
  return Json(std::move(object));
}

StatusOr<HardwareInfo> HardwareFromJson(const Json& json) {
  HardwareInfo hardware;
  TCDP_ASSIGN_OR_RETURN(double cores, GetNumber(json, "cores"));
  hardware.cores = static_cast<std::size_t>(cores);
  TCDP_ASSIGN_OR_RETURN(hardware.cpu_mhz, GetNumber(json, "cpu_mhz"));
  TCDP_ASSIGN_OR_RETURN(hardware.hostname, GetString(json, "hostname"));
  return hardware;
}

Json BuildToJson(const BuildInfo& build) {
  JsonObject object;
  object.Set("git_sha", Json(build.git_sha));
  object.Set("flags", Json(build.flags));
  object.Set("build_type", Json(build.build_type));
  object.Set("compiler", Json(build.compiler));
  return Json(std::move(object));
}

StatusOr<BuildInfo> BuildFromJson(const Json& json) {
  BuildInfo build;
  TCDP_ASSIGN_OR_RETURN(build.git_sha, GetString(json, "git_sha"));
  TCDP_ASSIGN_OR_RETURN(build.flags, GetString(json, "flags"));
  TCDP_ASSIGN_OR_RETURN(build.build_type, GetString(json, "build_type"));
  TCDP_ASSIGN_OR_RETURN(build.compiler, GetString(json, "compiler"));
  return build;
}

const char* DirectionName(MetricPolicy::Direction direction) {
  switch (direction) {
    case MetricPolicy::Direction::kExact:
      return "exact";
    case MetricPolicy::Direction::kHigherIsBetter:
      return "higher_is_better";
    case MetricPolicy::Direction::kLowerIsBetter:
      return "lower_is_better";
  }
  return "exact";
}

StatusOr<MetricPolicy::Direction> DirectionFromName(const std::string& name) {
  if (name == "exact") return MetricPolicy::Direction::kExact;
  if (name == "higher_is_better") {
    return MetricPolicy::Direction::kHigherIsBetter;
  }
  if (name == "lower_is_better") {
    return MetricPolicy::Direction::kLowerIsBetter;
  }
  return Status::InvalidArgument("unknown metric direction '" + name + "'");
}

}  // namespace

Json ReportToJson(const BenchReport& report) {
  JsonObject root;
  root.Set("schema", Json(report.schema));
  root.Set("smoke", Json(report.smoke));
  root.Set("hardware", HardwareToJson(report.hardware));
  root.Set("build", BuildToJson(report.build));
  {
    JsonObject timestamps;
    timestamps.Set("started_unix", Json(report.started_unix));
    timestamps.Set("finished_unix", Json(report.finished_unix));
    timestamps.Set("started_iso", Json(report.started_iso));
    root.Set("timestamps", Json(std::move(timestamps)));
  }
  {
    JsonArray suites;
    for (const std::string& suite : report.suites_run) {
      suites.push_back(Json(suite));
    }
    root.Set("suites_run", Json(std::move(suites)));
  }
  {
    JsonArray records;
    for (const BenchRecord& record : report.records) {
      JsonObject r;
      r.Set("suite", Json(record.suite));
      r.Set("case", Json(record.case_name));
      r.Set("mode", Json(record.mode));
      r.Set("params", NumberMapToJson(record.params));
      r.Set("metrics", NumberMapToJson(record.metrics));
      r.Set("hardware", HardwareToJson(report.hardware));
      r.Set("build", BuildToJson(report.build));
      JsonObject timestamps;
      timestamps.Set("unix", Json(record.timestamp_unix));
      timestamps.Set("iso", Json(record.timestamp_iso));
      r.Set("timestamps", Json(std::move(timestamps)));
      records.push_back(Json(std::move(r)));
    }
    root.Set("records", Json(std::move(records)));
  }
  {
    JsonObject derived;
    for (const auto& [suite, values] : report.derived) {
      derived.Set(suite, NumberMapToJson(values));
    }
    root.Set("derived", Json(std::move(derived)));
  }
  {
    JsonArray gates;
    for (const GateResult& gate : report.gates) {
      JsonObject g;
      g.Set("suite", Json(gate.suite));
      g.Set("name", Json(gate.name));
      g.Set("expression", Json(gate.expression));
      g.Set("enforced", Json(gate.enforced));
      g.Set("passed", Json(gate.passed));
      g.Set("reason", Json(gate.reason));
      gates.push_back(Json(std::move(g)));
    }
    root.Set("gates", Json(std::move(gates)));
  }
  {
    JsonArray skips;
    for (const SkipEntry& skip : report.skips) {
      JsonObject s;
      s.Set("suite", Json(skip.suite));
      s.Set("case", Json(skip.case_name));
      s.Set("reason", Json(skip.reason));
      skips.push_back(Json(std::move(s)));
    }
    root.Set("skips", Json(std::move(skips)));
  }
  {
    JsonObject policies;
    for (const auto& [suite, metrics] : report.policies) {
      JsonObject suite_policies;
      for (const auto& [metric, policy] : metrics) {
        JsonObject p;
        p.Set("direction", Json(DirectionName(policy.direction)));
        p.Set("noise_frac", Json(policy.noise_frac));
        p.Set("informational", Json(policy.informational));
        suite_policies.Set(metric, Json(std::move(p)));
      }
      policies.Set(suite, Json(std::move(suite_policies)));
    }
    root.Set("metric_policies", Json(std::move(policies)));
  }
  return Json(std::move(root));
}

StatusOr<BenchReport> ReportFromJson(const Json& json) {
  BenchReport report;
  TCDP_ASSIGN_OR_RETURN(report.schema, GetString(json, "schema"));
  if (report.schema != kReportSchema) {
    return Status::InvalidArgument("unsupported BENCH.json schema '" +
                                   report.schema + "' (expected " +
                                   kReportSchema + ")");
  }
  TCDP_ASSIGN_OR_RETURN(report.smoke, GetBool(json, "smoke"));
  TCDP_ASSIGN_OR_RETURN(const Json* hardware, GetMember(json, "hardware"));
  TCDP_ASSIGN_OR_RETURN(report.hardware, HardwareFromJson(*hardware));
  TCDP_ASSIGN_OR_RETURN(const Json* build, GetMember(json, "build"));
  TCDP_ASSIGN_OR_RETURN(report.build, BuildFromJson(*build));
  TCDP_ASSIGN_OR_RETURN(const Json* timestamps,
                        GetMember(json, "timestamps"));
  TCDP_ASSIGN_OR_RETURN(report.started_unix,
                        GetNumber(*timestamps, "started_unix"));
  TCDP_ASSIGN_OR_RETURN(report.finished_unix,
                        GetNumber(*timestamps, "finished_unix"));
  TCDP_ASSIGN_OR_RETURN(report.started_iso,
                        GetString(*timestamps, "started_iso"));

  TCDP_ASSIGN_OR_RETURN(const Json* suites, GetMember(json, "suites_run"));
  if (!suites->is_array()) {
    return Status::InvalidArgument("suites_run: not an array");
  }
  for (const Json& suite : suites->as_array()) {
    if (!suite.is_string()) {
      return Status::InvalidArgument("suites_run: non-string entry");
    }
    report.suites_run.push_back(suite.as_string());
  }

  TCDP_ASSIGN_OR_RETURN(const Json* records, GetMember(json, "records"));
  if (!records->is_array()) {
    return Status::InvalidArgument("records: not an array");
  }
  for (const Json& r : records->as_array()) {
    BenchRecord record;
    TCDP_ASSIGN_OR_RETURN(record.suite, GetString(r, "suite"));
    TCDP_ASSIGN_OR_RETURN(record.case_name, GetString(r, "case"));
    TCDP_ASSIGN_OR_RETURN(record.mode, GetString(r, "mode"));
    if (record.mode != "smoke" && record.mode != "full") {
      return Status::InvalidArgument("record " + record.suite + "/" +
                                     record.case_name + ": bad mode '" +
                                     record.mode + "'");
    }
    TCDP_ASSIGN_OR_RETURN(const Json* params, GetMember(r, "params"));
    TCDP_ASSIGN_OR_RETURN(record.params,
                          NumberMapFromJson(*params, "params"));
    TCDP_ASSIGN_OR_RETURN(const Json* metrics, GetMember(r, "metrics"));
    TCDP_ASSIGN_OR_RETURN(record.metrics,
                          NumberMapFromJson(*metrics, "metrics"));
    // Per-record hardware/build must be present (schema) but the
    // run-level copies are authoritative.
    TCDP_RETURN_IF_ERROR(GetMember(r, "hardware").status());
    TCDP_RETURN_IF_ERROR(GetMember(r, "build").status());
    TCDP_ASSIGN_OR_RETURN(const Json* ts, GetMember(r, "timestamps"));
    TCDP_ASSIGN_OR_RETURN(record.timestamp_unix, GetNumber(*ts, "unix"));
    TCDP_ASSIGN_OR_RETURN(record.timestamp_iso, GetString(*ts, "iso"));
    report.records.push_back(std::move(record));
  }

  TCDP_ASSIGN_OR_RETURN(const Json* derived, GetMember(json, "derived"));
  if (!derived->is_object()) {
    return Status::InvalidArgument("derived: not an object");
  }
  for (const auto& [suite, values] : derived->as_object().items()) {
    TCDP_ASSIGN_OR_RETURN(report.derived[suite],
                          NumberMapFromJson(values, "derived"));
  }

  TCDP_ASSIGN_OR_RETURN(const Json* gates, GetMember(json, "gates"));
  if (!gates->is_array()) {
    return Status::InvalidArgument("gates: not an array");
  }
  for (const Json& g : gates->as_array()) {
    GateResult gate;
    TCDP_ASSIGN_OR_RETURN(gate.suite, GetString(g, "suite"));
    TCDP_ASSIGN_OR_RETURN(gate.name, GetString(g, "name"));
    TCDP_ASSIGN_OR_RETURN(gate.expression, GetString(g, "expression"));
    TCDP_ASSIGN_OR_RETURN(gate.enforced, GetBool(g, "enforced"));
    TCDP_ASSIGN_OR_RETURN(gate.passed, GetBool(g, "passed"));
    TCDP_ASSIGN_OR_RETURN(gate.reason, GetString(g, "reason"));
    report.gates.push_back(std::move(gate));
  }

  TCDP_ASSIGN_OR_RETURN(const Json* skips, GetMember(json, "skips"));
  if (!skips->is_array()) {
    return Status::InvalidArgument("skips: not an array");
  }
  for (const Json& s : skips->as_array()) {
    SkipEntry skip;
    TCDP_ASSIGN_OR_RETURN(skip.suite, GetString(s, "suite"));
    TCDP_ASSIGN_OR_RETURN(skip.case_name, GetString(s, "case"));
    TCDP_ASSIGN_OR_RETURN(skip.reason, GetString(s, "reason"));
    report.skips.push_back(std::move(skip));
  }

  TCDP_ASSIGN_OR_RETURN(const Json* policies,
                        GetMember(json, "metric_policies"));
  if (!policies->is_object()) {
    return Status::InvalidArgument("metric_policies: not an object");
  }
  for (const auto& [suite, suite_policies] : policies->as_object().items()) {
    if (!suite_policies.is_object()) {
      return Status::InvalidArgument("metric_policies." + suite +
                                     ": not an object");
    }
    for (const auto& [metric, p] : suite_policies.as_object().items()) {
      MetricPolicy policy;
      TCDP_ASSIGN_OR_RETURN(std::string direction,
                            GetString(p, "direction"));
      TCDP_ASSIGN_OR_RETURN(policy.direction, DirectionFromName(direction));
      TCDP_ASSIGN_OR_RETURN(policy.noise_frac, GetNumber(p, "noise_frac"));
      TCDP_ASSIGN_OR_RETURN(policy.informational,
                            GetBool(p, "informational"));
      report.policies[suite][metric] = policy;
    }
  }
  return report;
}

Status ValidateReportJson(const Json& json) {
  return ReportFromJson(json).status();
}

}  // namespace bench
}  // namespace tcdp
