#ifndef TCDP_BENCH_SPEC_H_
#define TCDP_BENCH_SPEC_H_

/// \file
/// Declarative benchmark workload specs (docs/BENCHMARKING.md).
///
/// A suite declares its name, default repetitions, per-metric
/// comparison policies, and acceptance gates; the harness owns running
/// it, evaluating the gates, writing the unified BENCH.json, and
/// diffing against a committed baseline. Host requirements (min cores)
/// live in the spec so the harness can skip-with-reason instead of a
/// gate silently passing (or noisily failing) on an undersized host.

#include <cstddef>
#include <map>
#include <string>

namespace tcdp {
namespace bench {

/// How the comparator treats one metric when diffing a run against a
/// baseline (docs/BENCHMARKING.md "Gate semantics and noise bands").
struct MetricPolicy {
  enum class Direction {
    kExact,           ///< two-sided: |cur - base| must stay inside the band
    kHigherIsBetter,  ///< regression = cur below base by more than the band
    kLowerIsBetter,   ///< regression = cur above base by more than the band
  };
  Direction direction = Direction::kExact;
  /// Relative noise band (0.15 = +-15%). For kExact metrics near zero
  /// the band is also used as an absolute tolerance.
  double noise_frac = 0.15;
  /// Informational metrics (host-dependent absolute timings) are
  /// diffed and reported but never fail the comparison; regression
  /// gating for them only means something when the baseline was
  /// produced on the same reference host — see docs/BENCHMARKING.md.
  bool informational = false;

  static MetricPolicy Exact(double noise = 1e-6) {
    MetricPolicy p;
    p.direction = Direction::kExact;
    p.noise_frac = noise;
    return p;
  }
  static MetricPolicy Throughput() {
    MetricPolicy p;
    p.direction = Direction::kHigherIsBetter;
    p.informational = true;
    return p;
  }
  static MetricPolicy Latency() {
    MetricPolicy p;
    p.direction = Direction::kLowerIsBetter;
    p.informational = true;
    return p;
  }
};

/// One acceptance gate: a boolean expression (bench/gate_expr.h) over
/// the suite's derived values and `case.metric` variables.
struct GateSpec {
  std::string name;
  std::string expression;
  /// Enforced only when the host has at least this many hardware
  /// threads; otherwise the harness records a skip with this reason
  /// (e.g. multi-thread-beats-serial on a 1-core box is meaningless).
  std::size_t min_cores = 0;
  /// Enforced only on full (non --smoke) runs; seconds-scale smoke
  /// grids are too small for timing-based acceptance bars.
  bool full_only = false;
  /// Enforced only when the host's best kernel backend is at least this
  /// many doubles wide (kernels::HostSimdWidth(): 4 on AVX2, 2 on NEON,
  /// 1 scalar-only); otherwise skip-with-reason — a vector-vs-scalar
  /// speedup bar is meaningless where the vector backend IS scalar.
  std::size_t min_simd_width = 0;
};

/// The declarative part of a suite.
struct SuiteSpec {
  std::string name;
  std::string description;
  /// Default repetitions for timing loops (CLI --reps overrides).
  std::size_t repetitions = 1;
  std::map<std::string, MetricPolicy> metric_policies;
  std::vector<GateSpec> gates;
};

/// Options for one harness invocation.
struct RunOptions {
  bool smoke = false;
  std::size_t cores = 0;        ///< 0 = probe the host
  std::size_t repetitions = 0;  ///< 0 = per-suite default
};

}  // namespace bench
}  // namespace tcdp

#endif  // TCDP_BENCH_SPEC_H_
