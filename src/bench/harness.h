#ifndef TCDP_BENCH_HARNESS_H_
#define TCDP_BENCH_HARNESS_H_

/// \file
/// The unified benchmark harness behind `tcdp bench` (modeled on
/// mxnet's opperf: one runner, declarative workload specs, one output
/// schema, run-over-run comparison).
///
/// Suites register a SuiteSpec plus a run function. The harness runs
/// the selected suites, collects records/derived values/skips through
/// a SuiteContext, evaluates the spec's gates (skipping-with-reason
/// those whose host requirements or full-run requirements are not
/// met), and assembles the unified BenchReport.

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "bench/spec.h"
#include "common/status.h"

namespace tcdp {
namespace bench {

/// Handed to a suite's run function: where records, derived gate
/// inputs and skips go.
class SuiteContext {
 public:
  SuiteContext(std::string suite, const RunOptions& opts,
               std::size_t repetitions, BenchReport* report)
      : suite_(std::move(suite)),
        opts_(opts),
        repetitions_(repetitions),
        report_(report) {}

  const RunOptions& opts() const { return opts_; }
  bool smoke() const { return opts_.smoke; }
  std::size_t cores() const { return opts_.cores; }
  /// Resolved repetition count (CLI override or the spec default).
  std::size_t repetitions() const { return repetitions_; }

  /// Records one measured case.
  void Record(const std::string& case_name,
              std::map<std::string, double> params,
              std::map<std::string, double> metrics);

  /// Records that a case was intentionally not run, and why. The
  /// comparator treats a baseline case that is skipped here as absent
  /// for a reason, not as a lost case.
  void Skip(const std::string& case_name, const std::string& reason);

  /// Publishes a suite-level derived value; gate expressions see it
  /// under \p name (case metrics are also visible as `case.metric`).
  void Derived(const std::string& name, double value);

  /// Times \p fn (seconds) as the minimum over repetitions() runs.
  double TimeBestOf(const std::function<void()>& fn) const;

 private:
  std::string suite_;
  RunOptions opts_;
  std::size_t repetitions_;
  BenchReport* report_;
};

using SuiteRunFn = std::function<Status(SuiteContext*)>;

/// Registry + runner. Not thread-safe; build, register, run.
class Harness {
 public:
  /// Registration order is execution and report order.
  void Register(SuiteSpec spec, SuiteRunFn run);

  std::vector<std::string> SuiteNames() const;
  const SuiteSpec* FindSpec(const std::string& name) const;

  /// Runs \p suites (empty = all) and returns the assembled report.
  /// Progress and gate outcomes go to \p log. Gate failures do NOT
  /// make this return an error (the report records them); errors are
  /// reserved for broken invocations (unknown suite) and suite-internal
  /// failures.
  StatusOr<BenchReport> Run(const RunOptions& options,
                            const std::vector<std::string>& suites,
                            std::ostream& log) const;

 private:
  struct Entry {
    SuiteSpec spec;
    SuiteRunFn run;
  };
  std::vector<Entry> entries_;
};

/// Registers every built-in suite (fleet, shard, net, fig3..fig8,
/// table2, wevent, ablation) — implemented under src/bench/suites/.
void RegisterAllSuites(Harness* harness);

}  // namespace bench
}  // namespace tcdp

#endif  // TCDP_BENCH_HARNESS_H_
