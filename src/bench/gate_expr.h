#ifndef TCDP_BENCH_GATE_EXPR_H_
#define TCDP_BENCH_GATE_EXPR_H_

/// \file
/// The tiny expression language benchmark gates are written in.
///
/// A gate is a boolean expression over the suite's published variables
/// (suite-level derived values plus every case metric as
/// `case.metric`), e.g.
///
///   "cached_speedup >= 5.0"
///   "abs(quantified.tpl_dev_max) <= 1e-6"
///   "compacted_wal_bytes < uncompacted_wal_bytes"
///
/// Grammar (usual precedence, all values double; booleans are 1/0):
///
///   expr  := or
///   or    := and ("||" and)*
///   and   := cmp ("&&" cmp)*
///   cmp   := add (("<="|"<"|">="|">"|"=="|"!=") add)?
///   add   := mul (("+"|"-") mul)*
///   mul   := unary (("*"|"/") unary)*
///   unary := "-" unary | "!" unary | primary
///   primary := number | ident | ident "(" expr ("," expr)* ")"
///            | "(" expr ")"
///
/// Identifiers may contain dots (`moderate.bpl_t10`). Functions:
/// abs(x), min(a, b), max(a, b). Referencing an unbound variable is an
/// evaluation error (never a silent 0), so a typo in a gate fails the
/// run loudly.

#include <map>
#include <string>

#include "common/status.h"

namespace tcdp {
namespace bench {

/// Evaluates \p expression over \p variables; returns the numeric
/// result (for a comparison/boolean expression: 1.0 or 0.0).
StatusOr<double> EvalGateExpression(
    const std::string& expression,
    const std::map<std::string, double>& variables);

}  // namespace bench
}  // namespace tcdp

#endif  // TCDP_BENCH_GATE_EXPR_H_
