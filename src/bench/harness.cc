#include "bench/harness.h"

#include <algorithm>

#include "bench/gate_expr.h"
#include "common/timer.h"
#include "kernels/kernels.h"

namespace tcdp {
namespace bench {

void SuiteContext::Record(const std::string& case_name,
                          std::map<std::string, double> params,
                          std::map<std::string, double> metrics) {
  BenchRecord record;
  record.suite = suite_;
  record.case_name = case_name;
  record.mode = opts_.smoke ? "smoke" : "full";
  record.params = std::move(params);
  record.metrics = std::move(metrics);
  record.timestamp_unix = NowUnixSeconds();
  record.timestamp_iso = NowIso8601();
  report_->records.push_back(std::move(record));
}

void SuiteContext::Skip(const std::string& case_name,
                        const std::string& reason) {
  report_->skips.push_back(SkipEntry{suite_, case_name, reason});
}

void SuiteContext::Derived(const std::string& name, double value) {
  report_->derived[suite_][name] = value;
}

double SuiteContext::TimeBestOf(const std::function<void()>& fn) const {
  double best = -1.0;
  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, repetitions_);
       ++rep) {
    WallTimer timer;
    fn();
    const double seconds = timer.ElapsedSeconds();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  return best;
}

void Harness::Register(SuiteSpec spec, SuiteRunFn run) {
  entries_.push_back(Entry{std::move(spec), std::move(run)});
}

std::vector<std::string> Harness::SuiteNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.spec.name);
  return names;
}

const SuiteSpec* Harness::FindSpec(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.spec.name == name) return &entry.spec;
  }
  return nullptr;
}

StatusOr<BenchReport> Harness::Run(const RunOptions& options,
                                   const std::vector<std::string>& suites,
                                   std::ostream& log) const {
  RunOptions opts = options;
  if (opts.cores == 0) opts.cores = Hardware().cores;

  std::vector<const Entry*> selected;
  if (suites.empty()) {
    for (const Entry& entry : entries_) selected.push_back(&entry);
  } else {
    for (const std::string& name : suites) {
      const Entry* found = nullptr;
      for (const Entry& entry : entries_) {
        if (entry.spec.name == name) found = &entry;
      }
      if (found == nullptr) {
        return Status::NotFound("unknown bench suite '" + name +
                                "' (see `tcdp bench --list`)");
      }
      selected.push_back(found);
    }
  }

  BenchReport report;
  report.smoke = opts.smoke;
  report.hardware = Hardware();
  report.hardware.cores = opts.cores;
  report.build = Build();
  report.started_unix = NowUnixSeconds();
  report.started_iso = NowIso8601();

  for (const Entry* entry : selected) {
    const SuiteSpec& spec = entry->spec;
    report.suites_run.push_back(spec.name);
    report.policies[spec.name] = spec.metric_policies;
    log << "=== suite " << spec.name << " (" << report.mode() << "): "
        << spec.description << "\n";
    const std::size_t repetitions =
        opts.repetitions > 0 ? opts.repetitions : spec.repetitions;
    const std::size_t record_base = report.records.size();
    SuiteContext context(spec.name, opts, repetitions, &report);
    WallTimer suite_timer;
    TCDP_RETURN_IF_ERROR(entry->run(&context));

    // Gate variables: suite-level derived values plus every case
    // metric as `case.metric`.
    std::map<std::string, double> variables = report.derived[spec.name];
    for (std::size_t i = record_base; i < report.records.size(); ++i) {
      const BenchRecord& record = report.records[i];
      for (const auto& [metric, value] : record.metrics) {
        variables[record.case_name + "." + metric] = value;
      }
    }

    for (const GateSpec& gate : spec.gates) {
      GateResult result;
      result.suite = spec.name;
      result.name = gate.name;
      result.expression = gate.expression;
      if (gate.min_cores > opts.cores) {
        result.enforced = false;
        result.reason = "requires >= " + std::to_string(gate.min_cores) +
                        " cores, host has " + std::to_string(opts.cores);
      } else if (gate.min_simd_width > kernels::HostSimdWidth()) {
        result.enforced = false;
        result.reason =
            "requires SIMD width >= " + std::to_string(gate.min_simd_width) +
            " doubles, host best backend (" + kernels::BestBackend().name +
            ") is " + std::to_string(kernels::HostSimdWidth()) + " wide";
      } else if (gate.full_only && opts.smoke) {
        result.enforced = false;
        result.reason = "full-run gate, skipped in --smoke mode";
      } else {
        result.enforced = true;
        auto value = EvalGateExpression(gate.expression, variables);
        if (!value.ok()) {
          result.passed = false;
          result.reason = value.status().ToString();
        } else {
          result.passed = *value != 0.0;
          if (!result.passed) result.reason = "expression evaluated false";
        }
      }
      log << "    gate " << gate.name << ": "
          << (result.enforced ? (result.passed ? "PASS" : "FAIL")
                              : "SKIP (" + result.reason + ")")
          << "\n";
      report.gates.push_back(std::move(result));
    }
    log << "    " << (report.records.size() - record_base) << " cases in "
        << suite_timer.ElapsedSeconds() << "s\n";
  }

  report.finished_unix = NowUnixSeconds();
  return report;
}

}  // namespace bench
}  // namespace tcdp
