#include "linalg/matrix.h"

#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "kernels/kernels.h"

namespace tcdp {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  if (rows_ == 0) return;
  cols_ = rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_ && "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

StatusOr<Matrix> Matrix::FromFlat(std::size_t rows, std::size_t cols,
                                  std::vector<double> data) {
  if (data.size() != rows * cols) {
    return Status::InvalidArgument(
        "FromFlat: data size " + std::to_string(data.size()) +
        " != rows*cols " + std::to_string(rows * cols));
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

double& Matrix::At(std::size_t r, std::size_t c) {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::Row(std::size_t r) const {
  assert(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

std::vector<double> Matrix::Col(std::size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = At(r, c);
  return out;
}

void Matrix::SetRow(std::size_t r, const std::vector<double>& values) {
  assert(r < rows_ && values.size() == cols_);
  for (std::size_t c = 0; c < cols_; ++c) At(r, c) = values[c];
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

StatusOr<Matrix> Matrix::Multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument(
        "Multiply: shape mismatch (" + std::to_string(rows_) + "x" +
        std::to_string(cols_) + ") * (" + std::to_string(other.rows_) + "x" +
        std::to_string(other.cols_) + ")");
  }
  Matrix out(rows_, other.cols_, 0.0);
  // ikj order keeps both the source row of `other` and the destination
  // row contiguous, so each inner loop is one axpy kernel call.
  const auto& kern = kernels::ActiveBackend();
  for (std::size_t i = 0; i < rows_; ++i) {
    double* out_row = out.data_.data() + i * other.cols_;
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = At(i, k);
      if (aik == 0.0) continue;
      kern.axpy(aik, other.data_.data() + k * other.cols_, out_row,
                other.cols_);
    }
  }
  return out;
}

std::vector<double> Matrix::LeftMultiply(const std::vector<double>& v) const {
  assert(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  const auto& kern = kernels::ActiveBackend();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    kern.axpy(vr, data_.data() + r * cols_, out.data(), cols_);
  }
  return out;
}

std::vector<double> Matrix::RightMultiply(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  const auto& kern = kernels::ActiveBackend();
  for (std::size_t r = 0; r < rows_; ++r) {
    out[r] = kern.dot(data_.data() + r * cols_, v.data(), cols_);
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  return MaxAbsDiff(other) <= tol;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << At(r, c);
      if (c + 1 < cols_) os << ", ";
    }
    os << (r + 1 < rows_ ? "],\n" : "]]");
  }
  return os.str();
}

}  // namespace tcdp
