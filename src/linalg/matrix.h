#ifndef TCDP_LINALG_MATRIX_H_
#define TCDP_LINALG_MATRIX_H_

/// \file
/// Dense row-major matrix of doubles. This library's matrices are small
/// (transition matrices up to a few hundred rows), so a simple dense
/// representation without BLAS is the right tool.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcdp {

/// \brief Dense row-major matrix of doubles.
///
/// Indexing is unchecked in release builds (asserted in debug); fallible
/// construction paths return `StatusOr`.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix filled with \p fill.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer lists:
  ///   Matrix m({{1,2},{3,4}});
  /// All inner lists must have equal length (asserted).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds from flat row-major data. Returns InvalidArgument when
  /// data.size() != rows*cols.
  static StatusOr<Matrix> FromFlat(std::size_t rows, std::size_t cols,
                                   std::vector<double> data);

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Element access (unchecked bounds in release builds).
  double& At(std::size_t r, std::size_t c);
  double At(std::size_t r, std::size_t c) const;
  double& operator()(std::size_t r, std::size_t c) { return At(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return At(r, c); }

  /// Copies out row \p r.
  std::vector<double> Row(std::size_t r) const;
  /// Copies out column \p c.
  std::vector<double> Col(std::size_t c) const;
  /// Overwrites row \p r. `PRECONDITION: values.size() == cols()`.
  void SetRow(std::size_t r, const std::vector<double>& values);

  /// Flat row-major storage (size rows*cols).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Matrix transpose.
  Matrix Transposed() const;

  /// Matrix product this * other. Returns InvalidArgument on shape
  /// mismatch.
  StatusOr<Matrix> Multiply(const Matrix& other) const;

  /// Row-vector * matrix: returns v^T * this (length cols()).
  /// `PRECONDITION: v.size() == rows()`.
  std::vector<double> LeftMultiply(const std::vector<double>& v) const;

  /// Matrix * column-vector (length rows()).
  /// `PRECONDITION: v.size() == cols()`.
  std::vector<double> RightMultiply(const std::vector<double>& v) const;

  /// Elementwise maximum |a_ij - b_ij|; requires equal shapes (asserted).
  double MaxAbsDiff(const Matrix& other) const;

  /// True iff shapes and all entries match within \p tol.
  bool ApproxEquals(const Matrix& other, double tol = 1e-9) const;

  /// Multi-line human-readable rendering (for diagnostics).
  std::string ToString(int precision = 4) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace tcdp

#endif  // TCDP_LINALG_MATRIX_H_
