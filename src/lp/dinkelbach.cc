#include "lp/dinkelbach.h"

#include <cmath>
#include <string>

namespace tcdp {
namespace {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

StatusOr<LpSolution> SolveLfpByDinkelbach(
    const LinearFractionalProgram& lfp,
    const SimplexSolver::Options& lp_options,
    std::size_t max_outer_iterations, double tol) {
  const std::size_t n = lfp.num_variables();
  if (n == 0) return Status::InvalidArgument("Dinkelbach: empty LFP");
  if (lfp.denominator.size() != n) {
    return Status::InvalidArgument("Dinkelbach: arity mismatch");
  }

  LinearProgram lp;
  lp.maximize = true;
  lp.constraints = lfp.constraints;
  lp.objective.assign(n, 0.0);

  // Bootstrap lambda_0 from any feasible point: solve a feasibility LP
  // maximizing the denominator (also guards against D <= 0 regions).
  lp.objective = lfp.denominator;
  TCDP_ASSIGN_OR_RETURN(LpSolution feas, SimplexSolver::Solve(lp, lp_options));
  if (feas.status != SolveStatus::kOptimal) {
    LpSolution out;
    out.status = feas.status;
    out.iterations = feas.iterations;
    return out;
  }
  double denom0 = Dot(lfp.denominator, feas.x) + lfp.denominator_const;
  if (!(denom0 > 0.0)) {
    return Status::FailedPrecondition(
        "Dinkelbach: denominator not strictly positive on the feasible "
        "region");
  }
  double lambda =
      (Dot(lfp.numerator, feas.x) + lfp.numerator_const) / denom0;
  std::size_t total_pivots = feas.iterations;

  LpSolution best = feas;
  for (std::size_t k = 0; k < max_outer_iterations; ++k) {
    // Parametric objective Q(x) - lambda D(x); the constant part
    // (q0 - lambda d0) does not influence the argmax.
    for (std::size_t j = 0; j < n; ++j) {
      lp.objective[j] = lfp.numerator[j] - lambda * lfp.denominator[j];
    }
    TCDP_ASSIGN_OR_RETURN(LpSolution step, SimplexSolver::Solve(lp, lp_options));
    total_pivots += step.iterations;
    if (step.status != SolveStatus::kOptimal) {
      step.iterations = total_pivots;
      return step;
    }
    const double q_val = Dot(lfp.numerator, step.x) + lfp.numerator_const;
    const double d_val = Dot(lfp.denominator, step.x) + lfp.denominator_const;
    const double f_lambda = q_val - lambda * d_val;
    if (f_lambda <= tol * std::max(1.0, std::fabs(lambda))) {
      // F(lambda) = 0: lambda is the optimal ratio (Dinkelbach's
      // criterion). The argmax may be a denominator-zero point such as
      // x = 0; the previously recorded point attains the ratio.
      best.status = SolveStatus::kOptimal;
      best.objective_value = lambda;
      best.iterations = total_pivots;
      return best;
    }
    if (!(d_val > 0.0)) {
      // Positive parametric value on a zero denominator: the ratio is
      // unbounded above over the closure.
      best.status = SolveStatus::kUnbounded;
      best.iterations = total_pivots;
      return best;
    }
    best.x = step.x;
    best.objective_value = q_val / d_val;
    lambda = q_val / d_val;
  }
  best.status = SolveStatus::kIterationLimit;
  best.iterations = total_pivots;
  return best;
}

}  // namespace tcdp
