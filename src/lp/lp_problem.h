#ifndef TCDP_LP_LP_PROBLEM_H_
#define TCDP_LP_LP_PROBLEM_H_

/// \file
/// Model types for linear and linear-fractional programs.
///
/// All programs are over non-negative variables (x >= 0); bounds such as
/// x <= 1 are expressed as explicit constraints. This matches the
/// standard-form input expected by the simplex solver.

#include <cstddef>
#include <string>
#include <vector>

namespace tcdp {

/// Constraint sense.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// \brief One linear constraint `coeffs . x  <relation>  rhs`.
struct LinearConstraint {
  std::vector<double> coeffs;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// \brief Linear program: optimize `objective . x` subject to constraints,
/// x >= 0.
struct LinearProgram {
  std::vector<double> objective;
  std::vector<LinearConstraint> constraints;
  bool maximize = true;

  std::size_t num_variables() const { return objective.size(); }
};

/// \brief Linear-fractional program (Bajalinov [2] form):
/// maximize (numerator . x + numerator_const) /
///          (denominator . x + denominator_const)
/// subject to constraints, x >= 0. The denominator must be strictly
/// positive over the feasible region.
struct LinearFractionalProgram {
  std::vector<double> numerator;
  double numerator_const = 0.0;
  std::vector<double> denominator;
  double denominator_const = 0.0;
  std::vector<LinearConstraint> constraints;

  std::size_t num_variables() const { return numerator.size(); }
};

/// Solver termination condition.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* SolveStatusToString(SolveStatus s);

/// \brief Solution of an LP/LFP solve.
struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  std::vector<double> x;          ///< primal point (original variables)
  double objective_value = 0.0;   ///< objective at x (ratio for LFPs)
  std::size_t iterations = 0;     ///< pivot / outer-iteration count
};

}  // namespace tcdp

#endif  // TCDP_LP_LP_PROBLEM_H_
