#ifndef TCDP_LP_TPL_LFP_H_
#define TCDP_LP_TPL_LFP_H_

/// \file
/// Builders for the paper's linear-fractional program (18)–(20):
///
///   maximize  (q . x) / (d . x)
///   subject to  e^{-alpha} <= x_j / x_k <= e^{alpha}  for all j,k
///               0 < x_j < 1
///
/// where q and d are two rows of a transition matrix and alpha is the
/// previous BPL (or next FPL). The log of the optimum is the loss
/// increment L(alpha) for that row pair.
///
/// Two encodings of the ratio constraints are provided:
///  * kPairwise — the natural n(n-1) constraint form the paper feeds to
///    generic solvers (x_j - e^alpha x_k <= 0 for every ordered pair).
///  * kCompact — an equivalent 2n+1 constraint reformulation with two
///    auxiliary variables m <= x_j <= M, M <= e^alpha m (ablation; see
///    DESIGN.md Section 4).

#include "common/status.h"
#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// Ratio-constraint encoding.
enum class LfpFormulation { kPairwise, kCompact };

/// Generic LFP solution route.
enum class LfpMethod { kCharnesCooper, kDinkelbach };

/// \brief Builds the paper's LFP for one ordered row pair (q, d) using the
/// natural pairwise encoding. Variables: x_1..x_n.
/// Returns InvalidArgument if sizes mismatch, n < 2, or alpha < 0.
StatusOr<LinearFractionalProgram> BuildPairwiseTplLfp(
    const std::vector<double>& q, const std::vector<double>& d, double alpha);

/// \brief Same feasible region encoded with auxiliary bounds m, M
/// (variables x_1..x_n, m, M). The two extra variables do not enter the
/// objective.
StatusOr<LinearFractionalProgram> BuildCompactTplLfp(
    const std::vector<double>& q, const std::vector<double>& d, double alpha);

/// \brief Loss increment for one ordered row pair via a generic solver:
/// log of the LFP optimum. This is the slow baseline route of Figure 5.
StatusOr<double> PairLossViaLfp(const std::vector<double>& q,
                                const std::vector<double>& d, double alpha,
                                LfpMethod method, LfpFormulation formulation,
                                const SimplexSolver::Options& options = {});

/// \brief Full loss function L(alpha) for a transition matrix via a
/// generic solver: maximum pair loss over all ordered pairs of distinct
/// rows. O(n^2) LFP solves — exactly what feeding the problem to
/// Gurobi/lp_solve entails. Serves as the correctness oracle for
/// Algorithm 1 in property tests.
StatusOr<double> TemporalLossViaLfp(const StochasticMatrix& matrix,
                                    double alpha, LfpMethod method,
                                    LfpFormulation formulation,
                                    const SimplexSolver::Options& options = {});

}  // namespace tcdp

#endif  // TCDP_LP_TPL_LFP_H_
