#include "lp/linear_fractional.h"

#include <cmath>
#include <string>

namespace tcdp {
namespace {

Status ValidateLfp(const LinearFractionalProgram& lfp) {
  const std::size_t n = lfp.num_variables();
  if (n == 0) return Status::InvalidArgument("LFP: empty numerator");
  if (lfp.denominator.size() != n) {
    return Status::InvalidArgument(
        "LFP: numerator/denominator arity mismatch");
  }
  for (std::size_t i = 0; i < lfp.constraints.size(); ++i) {
    if (lfp.constraints[i].coeffs.size() != n) {
      return Status::InvalidArgument(
          "LFP: constraint " + std::to_string(i) + " arity mismatch");
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<LpSolution> SolveLfpByCharnesCooper(
    const LinearFractionalProgram& lfp,
    const SimplexSolver::Options& options) {
  TCDP_RETURN_IF_ERROR(ValidateLfp(lfp));
  const std::size_t n = lfp.num_variables();

  LinearProgram lp;
  lp.maximize = true;
  lp.objective = lfp.numerator;
  lp.objective.push_back(lfp.numerator_const);  // coefficient of t

  lp.constraints.reserve(lfp.constraints.size() + 1);
  for (const auto& c : lfp.constraints) {
    LinearConstraint hc;
    hc.coeffs = c.coeffs;
    hc.coeffs.push_back(-c.rhs);  // A y - b t rel 0
    hc.relation = c.relation;
    hc.rhs = 0.0;
    lp.constraints.push_back(std::move(hc));
  }
  LinearConstraint norm;
  norm.coeffs = lfp.denominator;
  norm.coeffs.push_back(lfp.denominator_const);
  norm.relation = Relation::kEqual;
  norm.rhs = 1.0;
  lp.constraints.push_back(std::move(norm));

  TCDP_ASSIGN_OR_RETURN(LpSolution sol, SimplexSolver::Solve(lp, options));
  if (sol.status != SolveStatus::kOptimal) return sol;

  const double t = sol.x[n];
  if (!(t > 1e-12)) {
    return Status::FailedPrecondition(
        "Charnes-Cooper: t* ~ 0; ratio attained only in the limit "
        "(unbounded or denominator-degenerate feasible region)");
  }
  LpSolution out;
  out.status = SolveStatus::kOptimal;
  out.iterations = sol.iterations;
  out.objective_value = sol.objective_value;
  out.x.resize(n);
  for (std::size_t j = 0; j < n; ++j) out.x[j] = sol.x[j] / t;
  return out;
}

}  // namespace tcdp
