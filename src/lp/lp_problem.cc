#include "lp/lp_problem.h"

namespace tcdp {

const char* SolveStatusToString(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "Optimal";
    case SolveStatus::kInfeasible:
      return "Infeasible";
    case SolveStatus::kUnbounded:
      return "Unbounded";
    case SolveStatus::kIterationLimit:
      return "IterationLimit";
  }
  return "Unknown";
}

}  // namespace tcdp
