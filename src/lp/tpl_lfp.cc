#include "lp/tpl_lfp.h"

#include <cmath>
#include <string>

#include "common/math_util.h"
#include "lp/dinkelbach.h"
#include "lp/linear_fractional.h"

namespace tcdp {
namespace {

Status ValidatePair(const std::vector<double>& q, const std::vector<double>& d,
                    double alpha) {
  if (q.size() != d.size()) {
    return Status::InvalidArgument("TplLfp: |q| != |d|");
  }
  if (q.size() < 2) {
    return Status::InvalidArgument("TplLfp: need at least 2 variables");
  }
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument("TplLfp: alpha must be finite and >= 0");
  }
  return Status::OK();
}

}  // namespace

StatusOr<LinearFractionalProgram> BuildPairwiseTplLfp(
    const std::vector<double>& q, const std::vector<double>& d, double alpha) {
  TCDP_RETURN_IF_ERROR(ValidatePair(q, d, alpha));
  const std::size_t n = q.size();
  const double ratio = std::exp(alpha);

  LinearFractionalProgram lfp;
  lfp.numerator = q;
  lfp.denominator = d;
  lfp.constraints.reserve(n * (n - 1) + n);
  // x_j - e^alpha x_k <= 0 for every ordered pair (j, k), j != k.
  // Together the two orientations encode e^-alpha <= x_j/x_k <= e^alpha.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      if (j == k) continue;
      LinearConstraint c;
      c.coeffs.assign(n, 0.0);
      c.coeffs[j] = 1.0;
      c.coeffs[k] = -ratio;
      c.relation = Relation::kLessEqual;
      c.rhs = 0.0;
      lfp.constraints.push_back(std::move(c));
    }
  }
  // Unit box (closure of the paper's 0 < x_j < 1).
  for (std::size_t j = 0; j < n; ++j) {
    LinearConstraint c;
    c.coeffs.assign(n, 0.0);
    c.coeffs[j] = 1.0;
    c.relation = Relation::kLessEqual;
    c.rhs = 1.0;
    lfp.constraints.push_back(std::move(c));
  }
  return lfp;
}

StatusOr<LinearFractionalProgram> BuildCompactTplLfp(
    const std::vector<double>& q, const std::vector<double>& d, double alpha) {
  TCDP_RETURN_IF_ERROR(ValidatePair(q, d, alpha));
  const std::size_t n = q.size();
  const double ratio = std::exp(alpha);
  const std::size_t var_m = n;      // lower envelope
  const std::size_t var_cap = n + 1;  // upper envelope ("M")
  const std::size_t total = n + 2;

  LinearFractionalProgram lfp;
  lfp.numerator.assign(total, 0.0);
  lfp.denominator.assign(total, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    lfp.numerator[j] = q[j];
    lfp.denominator[j] = d[j];
  }
  auto zero_row = [&] {
    LinearConstraint c;
    c.coeffs.assign(total, 0.0);
    c.relation = Relation::kLessEqual;
    c.rhs = 0.0;
    return c;
  };
  for (std::size_t j = 0; j < n; ++j) {
    // m - x_j <= 0.
    LinearConstraint lo = zero_row();
    lo.coeffs[var_m] = 1.0;
    lo.coeffs[j] = -1.0;
    lfp.constraints.push_back(std::move(lo));
    // x_j - M <= 0.
    LinearConstraint hi = zero_row();
    hi.coeffs[j] = 1.0;
    hi.coeffs[var_cap] = -1.0;
    lfp.constraints.push_back(std::move(hi));
  }
  // M - e^alpha m <= 0.
  LinearConstraint link = zero_row();
  link.coeffs[var_cap] = 1.0;
  link.coeffs[var_m] = -ratio;
  lfp.constraints.push_back(std::move(link));
  // M <= 1 (unit box).
  LinearConstraint box = zero_row();
  box.coeffs[var_cap] = 1.0;
  box.rhs = 1.0;
  lfp.constraints.push_back(std::move(box));
  return lfp;
}

StatusOr<double> PairLossViaLfp(const std::vector<double>& q,
                                const std::vector<double>& d, double alpha,
                                LfpMethod method, LfpFormulation formulation,
                                const SimplexSolver::Options& options) {
  StatusOr<LinearFractionalProgram> lfp =
      formulation == LfpFormulation::kPairwise
          ? BuildPairwiseTplLfp(q, d, alpha)
          : BuildCompactTplLfp(q, d, alpha);
  TCDP_RETURN_IF_ERROR(lfp.status());

  StatusOr<LpSolution> sol =
      method == LfpMethod::kCharnesCooper
          ? SolveLfpByCharnesCooper(*lfp, options)
          : SolveLfpByDinkelbach(*lfp, options);
  TCDP_RETURN_IF_ERROR(sol.status());
  if (sol->status != SolveStatus::kOptimal) {
    return Status::Internal(
        std::string("PairLossViaLfp: solver terminated with ") +
        SolveStatusToString(sol->status));
  }
  return SafeLog(sol->objective_value);
}

StatusOr<double> TemporalLossViaLfp(const StochasticMatrix& matrix,
                                    double alpha, LfpMethod method,
                                    LfpFormulation formulation,
                                    const SimplexSolver::Options& options) {
  const std::size_t n = matrix.size();
  if (n < 2) {
    return Status::InvalidArgument("TemporalLossViaLfp: need n >= 2");
  }
  double best = 0.0;
  for (std::size_t a = 0; a < n; ++a) {
    const std::vector<double> q = matrix.Row(a);
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const std::vector<double> d = matrix.Row(b);
      TCDP_ASSIGN_OR_RETURN(
          double loss, PairLossViaLfp(q, d, alpha, method, formulation,
                                      options));
      if (loss > best) best = loss;
    }
  }
  return best;
}

}  // namespace tcdp
