#include "lp/simplex.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace tcdp {
namespace {

/// Internal dense tableau. Column layout:
///   [0, n)            structural variables
///   [n, n+s)          slack/surplus variables
///   [n+s, n+s+a)      artificial variables
/// Row `i` stores the coefficients of basic-variable row i; `rhs_[i]` its
/// value. `basis_[i]` is the variable index basic in row i.
class Tableau {
 public:
  Tableau(const LinearProgram& lp, double tol) : tol_(tol) {
    const std::size_t n = lp.num_variables();
    const std::size_t m = lp.constraints.size();
    num_structural_ = n;

    // Count auxiliary columns.
    std::size_t num_slack = 0, num_artificial = 0;
    for (const auto& c : lp.constraints) {
      const bool flip = c.rhs < 0.0;
      Relation rel = c.relation;
      if (flip) {
        rel = rel == Relation::kLessEqual    ? Relation::kGreaterEqual
              : rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                               : Relation::kEqual;
      }
      if (rel == Relation::kLessEqual) {
        ++num_slack;
      } else if (rel == Relation::kGreaterEqual) {
        ++num_slack;  // surplus
        ++num_artificial;
      } else {
        ++num_artificial;
      }
    }
    num_cols_ = n + num_slack + num_artificial;
    first_artificial_ = n + num_slack;
    rows_.assign(m, std::vector<double>(num_cols_, 0.0));
    rhs_.assign(m, 0.0);
    basis_.assign(m, 0);

    std::size_t slack_cursor = n;
    std::size_t art_cursor = first_artificial_;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& c = lp.constraints[i];
      const bool flip = c.rhs < 0.0;
      const double sign = flip ? -1.0 : 1.0;
      Relation rel = c.relation;
      if (flip) {
        rel = rel == Relation::kLessEqual    ? Relation::kGreaterEqual
              : rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                               : Relation::kEqual;
      }
      for (std::size_t j = 0; j < n; ++j) rows_[i][j] = sign * c.coeffs[j];
      rhs_[i] = sign * c.rhs;
      if (rel == Relation::kLessEqual) {
        rows_[i][slack_cursor] = 1.0;
        basis_[i] = slack_cursor++;
      } else if (rel == Relation::kGreaterEqual) {
        rows_[i][slack_cursor++] = -1.0;  // surplus
        rows_[i][art_cursor] = 1.0;
        basis_[i] = art_cursor++;
      } else {
        rows_[i][art_cursor] = 1.0;
        basis_[i] = art_cursor++;
      }
    }
  }

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return num_cols_; }
  std::size_t first_artificial() const { return first_artificial_; }
  bool has_artificials() const { return first_artificial_ < num_cols_; }
  const std::vector<std::size_t>& basis() const { return basis_; }

  /// Runs simplex on objective `maximize cost . all_vars` starting from the
  /// current basis. `barred_from` excludes columns >= that index from
  /// entering (used to bar artificials in phase 2). Returns the final
  /// status; pivots are counted into *iterations.
  SolveStatus Optimize(const std::vector<double>& cost, std::size_t barred_from,
                       std::size_t max_iterations, bool dantzig,
                       std::size_t* iterations) {
    // Reduced-cost row: z_j - c_j form. We maintain `obj_[j]` such that
    // entering any column with obj_[j] < -tol improves the maximization.
    // Start from obj_ = -cost then add back basic rows' contributions.
    obj_.assign(num_cols_, 0.0);
    for (std::size_t j = 0; j < num_cols_ && j < cost.size(); ++j) {
      obj_[j] = -cost[j];
    }
    obj_value_ = 0.0;
    for (std::size_t i = 0; i < num_rows(); ++i) {
      const double cb = basis_[i] < cost.size() ? cost[basis_[i]] : 0.0;
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j < num_cols_; ++j) {
        obj_[j] += cb * rows_[i][j];
      }
      obj_value_ += cb * rhs_[i];
    }
    // obj_[j] now equals z_j - c_j; optimal when all >= -tol.

    std::size_t stall = 0;
    while (true) {
      if (*iterations >= max_iterations) return SolveStatus::kIterationLimit;
      // Pricing: choose entering column.
      std::size_t enter = num_cols_;
      if (dantzig && stall < kStallSwitch) {
        double best = -tol_;
        for (std::size_t j = 0; j < barred_from; ++j) {
          if (obj_[j] < best) {
            best = obj_[j];
            enter = j;
          }
        }
      } else {  // Bland: smallest eligible index.
        for (std::size_t j = 0; j < barred_from; ++j) {
          if (obj_[j] < -tol_) {
            enter = j;
            break;
          }
        }
      }
      if (enter == num_cols_) return SolveStatus::kOptimal;

      // Ratio test.
      std::size_t leave = num_rows();
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < num_rows(); ++i) {
        const double a = rows_[i][enter];
        if (a > tol_) {
          const double ratio = rhs_[i] / a;
          if (ratio < best_ratio - tol_ ||
              (ratio < best_ratio + tol_ && leave < num_rows() &&
               basis_[i] < basis_[leave])) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == num_rows()) return SolveStatus::kUnbounded;
      if (best_ratio <= tol_) {
        ++stall;  // degenerate pivot; consider switching to Bland
      } else {
        stall = 0;
      }
      Pivot(leave, enter);
      ++*iterations;
    }
  }

  /// Gauss-Jordan pivot making column `enter` basic in row `leave`.
  void Pivot(std::size_t leave, std::size_t enter) {
    std::vector<double>& prow = rows_[leave];
    const double p = prow[enter];
    assert(std::fabs(p) > 0.0);
    const double inv = 1.0 / p;
    for (double& v : prow) v *= inv;
    rhs_[leave] *= inv;
    prow[enter] = 1.0;  // exact
    for (std::size_t i = 0; i < num_rows(); ++i) {
      if (i == leave) continue;
      const double f = rows_[i][enter];
      if (f == 0.0) continue;
      std::vector<double>& row = rows_[i];
      for (std::size_t j = 0; j < num_cols_; ++j) row[j] -= f * prow[j];
      row[enter] = 0.0;  // exact
      rhs_[i] -= f * rhs_[leave];
      if (std::fabs(rhs_[i]) < 1e-13) rhs_[i] = 0.0;
    }
    const double fo = obj_[enter];
    if (fo != 0.0) {
      for (std::size_t j = 0; j < num_cols_; ++j) obj_[j] -= fo * prow[j];
      obj_[enter] = 0.0;
      obj_value_ -= fo * rhs_[leave];
    }
    basis_[leave] = enter;
  }

  /// After phase 1: pivot artificial variables out of the basis where
  /// possible; rows where no structural/slack pivot exists are redundant
  /// and zeroed.
  void DriveOutArtificials(std::size_t* iterations) {
    for (std::size_t i = 0; i < num_rows(); ++i) {
      if (basis_[i] < first_artificial_) continue;
      // Find any eligible non-artificial column with nonzero coefficient.
      std::size_t enter = num_cols_;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::fabs(rows_[i][j]) > tol_) {
          enter = j;
          break;
        }
      }
      if (enter == num_cols_) {
        // Redundant constraint (rhs must be ~0 after feasible phase 1).
        continue;
      }
      Pivot(i, enter);
      ++*iterations;
    }
  }

  double objective_value() const { return obj_value_; }
  double rhs(std::size_t i) const { return rhs_[i]; }

  /// Extracts structural-variable values from the basis.
  std::vector<double> ExtractPrimal() const {
    std::vector<double> x(num_structural_, 0.0);
    for (std::size_t i = 0; i < num_rows(); ++i) {
      if (basis_[i] < num_structural_) x[basis_[i]] = rhs_[i];
    }
    return x;
  }

 private:
  static constexpr std::size_t kStallSwitch = 64;

  double tol_;
  std::size_t num_structural_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t first_artificial_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> rhs_;
  std::vector<std::size_t> basis_;
  std::vector<double> obj_;
  double obj_value_ = 0.0;
};

Status ValidateLp(const LinearProgram& lp) {
  if (lp.objective.empty()) {
    return Status::InvalidArgument("Simplex: empty objective");
  }
  for (double c : lp.objective) {
    if (!std::isfinite(c)) {
      return Status::InvalidArgument("Simplex: non-finite objective coeff");
    }
  }
  for (std::size_t i = 0; i < lp.constraints.size(); ++i) {
    const auto& c = lp.constraints[i];
    if (c.coeffs.size() != lp.num_variables()) {
      return Status::InvalidArgument(
          "Simplex: constraint " + std::to_string(i) + " arity " +
          std::to_string(c.coeffs.size()) + " != num variables " +
          std::to_string(lp.num_variables()));
    }
    if (!std::isfinite(c.rhs)) {
      return Status::InvalidArgument("Simplex: non-finite rhs");
    }
    for (double a : c.coeffs) {
      if (!std::isfinite(a)) {
        return Status::InvalidArgument("Simplex: non-finite coefficient");
      }
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<LpSolution> SimplexSolver::Solve(const LinearProgram& lp,
                                          const Options& options) {
  TCDP_RETURN_IF_ERROR(ValidateLp(lp));

  Tableau tableau(lp, options.tol);
  LpSolution solution;
  solution.iterations = 0;

  // Phase 1: maximize -(sum of artificials) until it reaches 0.
  if (tableau.has_artificials()) {
    std::vector<double> phase1(tableau.num_cols(), 0.0);
    for (std::size_t j = tableau.first_artificial(); j < tableau.num_cols();
         ++j) {
      phase1[j] = -1.0;
    }
    SolveStatus s =
        tableau.Optimize(phase1, tableau.num_cols(), options.max_iterations,
                         options.dantzig_pricing, &solution.iterations);
    if (s == SolveStatus::kIterationLimit) {
      solution.status = s;
      return solution;
    }
    // Unbounded is impossible in phase 1 (objective bounded above by 0).
    if (tableau.objective_value() < -1e-7) {
      solution.status = SolveStatus::kInfeasible;
      return solution;
    }
    tableau.DriveOutArtificials(&solution.iterations);
  }

  // Phase 2: the real objective over structural columns, artificials
  // barred from entering.
  std::vector<double> cost(tableau.num_cols(), 0.0);
  const double sign = lp.maximize ? 1.0 : -1.0;
  for (std::size_t j = 0; j < lp.num_variables(); ++j) {
    cost[j] = sign * lp.objective[j];
  }
  SolveStatus s =
      tableau.Optimize(cost, tableau.first_artificial(),
                       options.max_iterations, options.dantzig_pricing,
                       &solution.iterations);
  solution.status = s;
  if (s == SolveStatus::kOptimal) {
    solution.x = tableau.ExtractPrimal();
    solution.objective_value = sign * tableau.objective_value();
  }
  return solution;
}

}  // namespace tcdp
