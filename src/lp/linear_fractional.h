#ifndef TCDP_LP_LINEAR_FRACTIONAL_H_
#define TCDP_LP_LINEAR_FRACTIONAL_H_

/// \file
/// Linear-fractional programming via the Charnes–Cooper transformation:
///
///   max (q.x + q0)/(d.x + d0)  s.t.  A x rel b, x >= 0
///
/// becomes, with y = t*x and the normalization d.y + d0*t = 1,
///
///   max q.y + q0*t  s.t.  A y - b t rel 0,  d.y + d0 t = 1,  y,t >= 0.
///
/// The optimal ratio is the LP optimum and x* = y*/t*. This is the
/// "convert into a sequence of linear programming problems" route the
/// paper attributes to generic solvers (Section IV-A).

#include "common/status.h"
#include "lp/lp_problem.h"
#include "lp/simplex.h"

namespace tcdp {

/// \brief Solves an LFP by Charnes–Cooper + two-phase simplex.
///
/// Requirements: the feasible region must be non-empty and bounded, and
/// the denominator strictly positive on it. A vanishing t* (ratio attained
/// only in the limit) yields FailedPrecondition.
StatusOr<LpSolution> SolveLfpByCharnesCooper(
    const LinearFractionalProgram& lfp,
    const SimplexSolver::Options& options = {});

}  // namespace tcdp

#endif  // TCDP_LP_LINEAR_FRACTIONAL_H_
