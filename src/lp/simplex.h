#ifndef TCDP_LP_SIMPLEX_H_
#define TCDP_LP_SIMPLEX_H_

/// \file
/// Dense two-phase primal simplex (Dantzig [10]) with Bland's anti-cycling
/// rule. This is the generic-solver baseline of the paper's Figure 5: the
/// stand-in for Gurobi/lp_solve in an offline environment (see DESIGN.md,
/// "Deviations").
///
/// The implementation is tableau-based and intentionally straightforward:
/// correctness and faithful asymptotics over micro-optimization.

#include "common/status.h"
#include "lp/lp_problem.h"

namespace tcdp {

/// Options for the simplex solver.
struct SimplexOptions {
  /// Pivot limit across both phases.
  std::size_t max_iterations = 200000;
  /// Numerical tolerance for reduced costs / feasibility.
  double tol = 1e-9;
  /// Use Dantzig's most-negative rule until stalling, then Bland.
  /// Pure Bland (false) is slower but provably cycle-free.
  bool dantzig_pricing = true;
};

/// \brief Two-phase dense simplex solver.
class SimplexSolver {
 public:
  using Options = SimplexOptions;

  /// Solves \p lp. Returns InvalidArgument on malformed input (empty
  /// objective, constraint arity mismatch, non-finite coefficients).
  /// Infeasibility/unboundedness are reported in LpSolution::status, not
  /// as errors.
  static StatusOr<LpSolution> Solve(const LinearProgram& lp,
                                    const Options& options = {});
};

}  // namespace tcdp

#endif  // TCDP_LP_SIMPLEX_H_
