#ifndef TCDP_LP_DINKELBACH_H_
#define TCDP_LP_DINKELBACH_H_

/// \file
/// Dinkelbach's parametric algorithm for linear-fractional programs
/// (Dinkelbach [11], cited by the paper's Theorem 6):
///
///   F(lambda) = max { Q(x) - lambda * D(x) : x feasible }
///
/// lambda* is the optimal ratio iff F(lambda*) = 0. The algorithm
/// iterates lambda_{k+1} = Q(x_k)/D(x_k) where x_k attains F(lambda_k);
/// convergence is superlinear. Each step is a plain LP solved with the
/// simplex baseline, making this the library's second generic-solver
/// stand-in for Figure 5.

#include "common/status.h"
#include "lp/lp_problem.h"
#include "lp/simplex.h"

namespace tcdp {

/// \brief Solves an LFP by Dinkelbach iteration.
///
/// \p max_outer_iterations bounds the number of parametric LP solves.
/// The returned LpSolution::iterations counts *total simplex pivots*
/// across all LP solves (comparable with the Charnes–Cooper route).
StatusOr<LpSolution> SolveLfpByDinkelbach(
    const LinearFractionalProgram& lfp,
    const SimplexSolver::Options& lp_options = {},
    std::size_t max_outer_iterations = 100, double tol = 1e-10);

}  // namespace tcdp

#endif  // TCDP_LP_DINKELBACH_H_
