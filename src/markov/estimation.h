#ifndef TCDP_MARKOV_ESTIMATION_H_
#define TCDP_MARKOV_ESTIMATION_H_

/// \file
/// Learning temporal correlations from observed trajectories — the
/// adversary's knowledge-acquisition step the paper points to in
/// Section III-A ("Maximum Likelihood estimation (supervised)").
///
/// Forward estimation counts t-1 -> t transitions; backward estimation
/// counts t -> t-1 transitions (equivalently, MLE on reversed
/// trajectories).

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "markov/markov_chain.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// Options for transition-matrix MLE.
struct EstimationOptions {
  /// Additive (add-k / Laplace) smoothing applied to every count.
  /// 0 = raw MLE; rows with no observations become uniform.
  double additive_smoothing = 0.0;
};

/// \brief MLE of the forward transition matrix Pr(l^t | l^{t-1}).
///
/// Returns InvalidArgument if \p num_states is 0, any trajectory contains
/// a state index >= num_states, or all trajectories are shorter than 2.
StatusOr<StochasticMatrix> EstimateForwardTransition(
    const std::vector<Trajectory>& trajectories, std::size_t num_states,
    const EstimationOptions& options = {});

/// \brief MLE of the backward transition matrix Pr(l^{t-1} | l^t):
/// identical machinery on time-reversed trajectories.
StatusOr<StochasticMatrix> EstimateBackwardTransition(
    const std::vector<Trajectory>& trajectories, std::size_t num_states,
    const EstimationOptions& options = {});

/// \brief Empirical distribution of first states (with optional additive
/// smoothing). Returns InvalidArgument on empty input or bad indices.
StatusOr<std::vector<double>> EstimateInitialDistribution(
    const std::vector<Trajectory>& trajectories, std::size_t num_states,
    const EstimationOptions& options = {});

}  // namespace tcdp

#endif  // TCDP_MARKOV_ESTIMATION_H_
