#ifndef TCDP_MARKOV_REVERSAL_H_
#define TCDP_MARKOV_REVERSAL_H_

/// \file
/// Bayesian time reversal (paper Section III-A): deriving the backward
/// temporal correlation Pr(l^{t-1} | l^t) from the forward correlation
/// Pr(l^t | l^{t-1}) and a distribution over l^{t-1}.
///
///   Pr(l^{t-1}=j | l^t=k) = P^F(j,k) * prior(j) / sum_j' P^F(j',k) prior(j')

#include <vector>

#include "common/status.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// \brief Derives P^B from P^F and a prior over the *earlier* time point.
///
/// Row r of the result is the distribution of l^{t-1} conditioned on
/// l^t = r. Returns InvalidArgument on size mismatch or if the prior is
/// not a probability vector, and FailedPrecondition if some value of l^t
/// has zero marginal probability (the conditional is undefined there).
StatusOr<StochasticMatrix> ReverseWithPrior(const StochasticMatrix& forward,
                                            const std::vector<double>& prior);

/// \brief Derives P^B under the chain's stationary distribution.
///
/// For a reversible chain this equals the forward matrix. Returns
/// FailedPrecondition when the stationary distribution cannot be computed
/// or has zero mass somewhere.
StatusOr<StochasticMatrix> ReverseAtStationarity(
    const StochasticMatrix& forward);

}  // namespace tcdp

#endif  // TCDP_MARKOV_REVERSAL_H_
