#include "markov/reversal.h"

#include "common/math_util.h"
#include "linalg/matrix.h"
#include "markov/markov_chain.h"

namespace tcdp {

StatusOr<StochasticMatrix> ReverseWithPrior(
    const StochasticMatrix& forward, const std::vector<double>& prior) {
  const std::size_t n = forward.size();
  if (prior.size() != n) {
    return Status::InvalidArgument(
        "ReverseWithPrior: prior size mismatches matrix dimension");
  }
  if (!IsProbabilityVector(prior, 1e-6)) {
    return Status::InvalidArgument(
        "ReverseWithPrior: prior is not a probability vector");
  }
  // marginal(k) = Pr(l^t = k) = sum_j prior(j) * PF(j, k)
  std::vector<double> marginal = forward.Propagate(prior);
  Matrix back(n, n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {  // row of P^B: current value k
    if (marginal[k] <= 0.0) {
      return Status::FailedPrecondition(
          "ReverseWithPrior: value " + std::to_string(k) +
          " has zero marginal probability; backward conditional undefined");
    }
    for (std::size_t j = 0; j < n; ++j) {  // column: previous value j
      back.At(k, j) = forward.At(j, k) * prior[j] / marginal[k];
    }
  }
  return StochasticMatrix::Create(std::move(back));
}

StatusOr<StochasticMatrix> ReverseAtStationarity(
    const StochasticMatrix& forward) {
  MarkovChain chain = MarkovChain::WithUniformInitial(forward);
  TCDP_ASSIGN_OR_RETURN(auto pi, chain.StationaryDistribution());
  return ReverseWithPrior(forward, pi);
}

}  // namespace tcdp
