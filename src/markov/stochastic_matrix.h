#ifndef TCDP_MARKOV_STOCHASTIC_MATRIX_H_
#define TCDP_MARKOV_STOCHASTIC_MATRIX_H_

/// \file
/// Validated row-stochastic matrices — the representation of the paper's
/// temporal correlations (Definition 3).
///
/// Orientation conventions used throughout the library:
///  * Forward correlation P^F: row = value at time t-1, column = value at
///    time t; entry (r,c) = Pr(l^t = c | l^{t-1} = r).
///  * Backward correlation P^B: row = value at time t, column = value at
///    time t-1; entry (r,c) = Pr(l^{t-1} = c | l^t = r).
/// Both are plain row-stochastic matrices; the semantics live at use
/// sites (see tcdp::core::TemporalCorrelations).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace tcdp {

/// \brief A square matrix whose rows are probability distributions.
///
/// Construction validates shape, entry ranges, and row sums; the class
/// then guarantees the invariant for its lifetime.
class StochasticMatrix {
 public:
  /// Default: empty (0x0). Useful only as a placeholder before assignment.
  StochasticMatrix() = default;

  /// Validates and wraps \p m. Returns InvalidArgument when \p m is not
  /// square, has an entry outside [0,1] (tolerance \p tol), or has a row
  /// not summing to 1 within \p tol. Rows are re-normalized exactly.
  static StatusOr<StochasticMatrix> Create(Matrix m, double tol = 1e-6);

  /// Validates like Create but preserves every entry's exact bit
  /// pattern — no clamping, no row renormalization. This is the
  /// round-trip path for machine-written matrices (accountant blobs,
  /// WAL/snapshot records), where Create's forgiving `/ sum`
  /// renormalization would shift entries by ULPs on every
  /// serialize/parse cycle and break bitwise replay.
  static StatusOr<StochasticMatrix> CreateExact(Matrix m,
                                                double tol = 1e-6);

  /// Convenience for tests/examples: builds from an initializer list and
  /// asserts validity.
  static StochasticMatrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);

  /// The n x n matrix with every entry 1/n (no correlation).
  static StochasticMatrix Uniform(std::size_t n);

  /// Identity transition (the paper's "strongest" self-correlation,
  /// Examples 2 and 3).
  static StochasticMatrix Identity(std::size_t n);

  /// Permutation transition: row i has probability 1 at column perm[i].
  /// This is the generic "strongest correlation" matrix of Section VI
  /// ("probability 1.0 at each row but for different columns").
  /// Returns InvalidArgument if perm is not a permutation of [0, n).
  static StatusOr<StochasticMatrix> Permutation(
      const std::vector<std::size_t>& perm);

  /// Random matrix with entries drawn Uniform[0,1) then row-normalized
  /// (the Fig 5 runtime workload).
  static StochasticMatrix Random(std::size_t n, Rng* rng);

  std::size_t size() const { return matrix_.rows(); }
  bool empty() const { return matrix_.empty(); }
  const Matrix& matrix() const { return matrix_; }
  double At(std::size_t r, std::size_t c) const { return matrix_.At(r, c); }
  std::vector<double> Row(std::size_t r) const { return matrix_.Row(r); }

  /// Chapman–Kolmogorov: k-step transition matrix (this^k). k = 0 yields
  /// the identity.
  StochasticMatrix PowerK(std::size_t k) const;

  /// Applies one step to a distribution: returns dist * P.
  /// `PRECONDITION: dist.size() == size()`.
  std::vector<double> Propagate(const std::vector<double>& dist) const;

  /// True iff every entry matches \p other within \p tol.
  bool ApproxEquals(const StochasticMatrix& other, double tol = 1e-9) const {
    return matrix_.ApproxEquals(other.matrix_, tol);
  }

  std::string ToString(int precision = 4) const {
    return matrix_.ToString(precision);
  }

 private:
  explicit StochasticMatrix(Matrix m) : matrix_(std::move(m)) {}
  Matrix matrix_;
};

/// \brief FNV-1a over the matrix dimension and raw entry bit patterns.
///
/// Content identity for interning/cohorting: equal-bit matrices hash
/// equal; callers must still compare contents exactly on collision
/// (see ExactlyEquals).
std::uint64_t FingerprintStochasticMatrix(const StochasticMatrix& matrix);

/// \brief True iff both matrices have bit-identical entries (stricter
/// than ApproxEquals, which the fingerprint cannot certify alone).
bool ExactlyEquals(const StochasticMatrix& a, const StochasticMatrix& b);

}  // namespace tcdp

#endif  // TCDP_MARKOV_STOCHASTIC_MATRIX_H_
