#ifndef TCDP_MARKOV_IO_H_
#define TCDP_MARKOV_IO_H_

/// \file
/// Text I/O for correlation matrices and trajectories, so deployments can
/// plug in real traces and externally estimated models:
///
///  * matrices: one row per line, comma- or whitespace-separated
///    probabilities (a "#" prefix comments a line);
///  * trajectories: one user per line, comma/whitespace-separated
///    0-based state indices.

#include <string>
#include <vector>

#include "common/status.h"
#include "markov/markov_chain.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// \brief Parses a stochastic matrix from text. Returns InvalidArgument
/// on ragged rows, non-numeric fields, or rows violating stochasticity.
/// Rows are forgivingly renormalized (Create semantics) — right for
/// hand-authored files, wrong for bitwise round-trips.
StatusOr<StochasticMatrix> ParseStochasticMatrix(const std::string& text);

/// \brief Parses with CreateExact semantics: entries keep their exact
/// bit patterns (no renormalization). The round-trip path for
/// machine-written matrices — accountant blobs and the release
/// service's WAL/snapshots parse through this so replayed accounting
/// stays bitwise identical.
StatusOr<StochasticMatrix> ParseStochasticMatrixExact(
    const std::string& text);

/// \brief Serializes with full double precision, one row per line.
std::string SerializeStochasticMatrix(const StochasticMatrix& matrix,
                                      char separator = ',');

/// \brief Reads a matrix from a file. NotFound if unreadable.
StatusOr<StochasticMatrix> LoadStochasticMatrix(const std::string& path);

/// \brief Writes a matrix to a file (overwrites).
Status SaveStochasticMatrix(const StochasticMatrix& matrix,
                            const std::string& path);

/// \brief Parses trajectories: one line per user, indices separated by
/// commas and/or whitespace. \p num_states = 0 infers the domain as
/// max index + 1; otherwise indices must be < num_states.
StatusOr<std::vector<Trajectory>> ParseTrajectories(
    const std::string& text, std::size_t num_states = 0);

/// \brief Serializes trajectories, one per line.
std::string SerializeTrajectories(const std::vector<Trajectory>& trajectories,
                                  char separator = ',');

/// \brief Reads trajectories from a file.
StatusOr<std::vector<Trajectory>> LoadTrajectories(
    const std::string& path, std::size_t num_states = 0);

/// \brief Writes trajectories to a file (overwrites).
Status SaveTrajectories(const std::vector<Trajectory>& trajectories,
                        const std::string& path);

}  // namespace tcdp

#endif  // TCDP_MARKOV_IO_H_
