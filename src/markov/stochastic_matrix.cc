#include "markov/stochastic_matrix.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <string>

#include "common/math_util.h"

namespace tcdp {

StatusOr<StochasticMatrix> StochasticMatrix::Create(Matrix m, double tol) {
  if (m.rows() != m.cols()) {
    return Status::InvalidArgument(
        "StochasticMatrix: matrix must be square, got " +
        std::to_string(m.rows()) + "x" + std::to_string(m.cols()));
  }
  if (m.rows() == 0) {
    return Status::InvalidArgument("StochasticMatrix: empty matrix");
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double v = m.At(r, c);
      if (!IsProbability(v, tol)) {
        return Status::InvalidArgument(
            "StochasticMatrix: entry (" + std::to_string(r) + "," +
            std::to_string(c) + ")=" + std::to_string(v) +
            " outside [0,1]");
      }
      sum += v;
    }
    if (std::fabs(sum - 1.0) > tol) {
      return Status::InvalidArgument(
          "StochasticMatrix: row " + std::to_string(r) + " sums to " +
          std::to_string(sum) + ", expected 1");
    }
    // Re-normalize exactly and clamp tiny negatives introduced upstream.
    for (std::size_t c = 0; c < m.cols(); ++c) {
      m.At(r, c) = Clamp(m.At(r, c), 0.0, 1.0) / sum;
    }
  }
  return StochasticMatrix(std::move(m));
}

StatusOr<StochasticMatrix> StochasticMatrix::CreateExact(Matrix m,
                                                         double tol) {
  if (m.rows() != m.cols() || m.rows() == 0) {
    return Status::InvalidArgument(
        "StochasticMatrix::CreateExact: matrix must be square and "
        "non-empty");
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double v = m.At(r, c);
      if (!(v >= 0.0) || !(v <= 1.0)) {
        return Status::InvalidArgument(
            "StochasticMatrix::CreateExact: entry (" + std::to_string(r) +
            "," + std::to_string(c) + ") outside [0,1]");
      }
      sum += v;
    }
    if (std::fabs(sum - 1.0) > tol) {
      return Status::InvalidArgument(
          "StochasticMatrix::CreateExact: row " + std::to_string(r) +
          " sums to " + std::to_string(sum) + ", expected 1");
    }
  }
  return StochasticMatrix(std::move(m));
}

StochasticMatrix StochasticMatrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  auto result = Create(Matrix(rows));
  assert(result.ok() && "FromRows: invalid stochastic matrix literal");
  return std::move(result).value();
}

StochasticMatrix StochasticMatrix::Uniform(std::size_t n) {
  assert(n > 0);
  return StochasticMatrix(Matrix(n, n, 1.0 / static_cast<double>(n)));
}

StochasticMatrix StochasticMatrix::Identity(std::size_t n) {
  assert(n > 0);
  return StochasticMatrix(Matrix::Identity(n));
}

StatusOr<StochasticMatrix> StochasticMatrix::Permutation(
    const std::vector<std::size_t>& perm) {
  const std::size_t n = perm.size();
  if (n == 0) return Status::InvalidArgument("Permutation: empty");
  std::vector<bool> seen(n, false);
  for (std::size_t p : perm) {
    if (p >= n || seen[p]) {
      return Status::InvalidArgument("Permutation: not a permutation of [0,n)");
    }
    seen[p] = true;
  }
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m.At(i, perm[i]) = 1.0;
  return StochasticMatrix(std::move(m));
}

StochasticMatrix StochasticMatrix::Random(std::size_t n, Rng* rng) {
  assert(n > 0 && rng != nullptr);
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      // Strictly positive entries so rows always normalize.
      const double v = rng->Uniform() + 1e-12;
      m.At(r, c) = v;
      sum += v;
    }
    for (std::size_t c = 0; c < n; ++c) m.At(r, c) /= sum;
  }
  return StochasticMatrix(std::move(m));
}

StochasticMatrix StochasticMatrix::PowerK(std::size_t k) const {
  Matrix acc = Matrix::Identity(size());
  Matrix base = matrix_;
  while (k > 0) {
    if (k & 1u) {
      auto r = acc.Multiply(base);
      assert(r.ok());
      acc = std::move(r).value();
    }
    k >>= 1u;
    if (k > 0) {
      auto r = base.Multiply(base);
      assert(r.ok());
      base = std::move(r).value();
    }
  }
  return StochasticMatrix(std::move(acc));
}

std::vector<double> StochasticMatrix::Propagate(
    const std::vector<double>& dist) const {
  assert(dist.size() == size());
  return matrix_.LeftMultiply(dist);
}

std::uint64_t FingerprintStochasticMatrix(const StochasticMatrix& matrix) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(matrix.size());
  for (double entry : matrix.matrix().data()) {
    std::uint64_t bits;
    std::memcpy(&bits, &entry, sizeof(bits));
    mix(bits);
  }
  return h;
}

bool ExactlyEquals(const StochasticMatrix& a, const StochasticMatrix& b) {
  return a.size() == b.size() && a.matrix().data() == b.matrix().data();
}

}  // namespace tcdp
