#ifndef TCDP_MARKOV_MARKOV_CHAIN_H_
#define TCDP_MARKOV_MARKOV_CHAIN_H_

/// \file
/// Time-homogeneous first-order Markov chains over a finite value domain
/// (the paper's user-mobility model, Section III-A): simulation, k-step
/// marginals, stationary distributions, and structural checks.

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// A state trajectory l^1..l^T (values are indices into the domain).
using Trajectory = std::vector<std::size_t>;

/// \brief First-order Markov chain: initial distribution + forward
/// transition matrix.
class MarkovChain {
 public:
  /// Builds a chain. Returns InvalidArgument when the initial
  /// distribution's size differs from the transition dimension or is not
  /// a probability vector.
  static StatusOr<MarkovChain> Create(std::vector<double> initial,
                                      StochasticMatrix transition);

  /// Chain with uniform initial distribution.
  static MarkovChain WithUniformInitial(StochasticMatrix transition);

  std::size_t num_states() const { return transition_.size(); }
  const std::vector<double>& initial() const { return initial_; }
  const StochasticMatrix& transition() const { return transition_; }

  /// Samples the next state given the current one.
  std::size_t SampleNext(std::size_t state, Rng* rng) const;

  /// Samples a full trajectory of length \p horizon (>=1), starting from
  /// the initial distribution.
  Trajectory Simulate(std::size_t horizon, Rng* rng) const;

  /// Marginal distribution of l^t for t >= 1 (t=1 is the initial
  /// distribution).
  std::vector<double> MarginalAt(std::size_t t) const;

  /// Stationary distribution via power iteration. Returns
  /// FailedPrecondition if iteration does not converge within
  /// \p max_iters (e.g. periodic chains).
  StatusOr<std::vector<double>> StationaryDistribution(
      std::size_t max_iters = 100000, double tol = 1e-12) const;

  /// True iff every state can reach every other state (strong
  /// connectivity of the positive-transition digraph).
  bool IsIrreducible() const;

 private:
  MarkovChain(std::vector<double> initial, StochasticMatrix transition)
      : initial_(std::move(initial)), transition_(std::move(transition)) {}

  std::vector<double> initial_;
  StochasticMatrix transition_;
};

}  // namespace tcdp

#endif  // TCDP_MARKOV_MARKOV_CHAIN_H_
