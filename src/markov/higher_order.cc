#include "markov/higher_order.h"

#include <cassert>
#include <string>

#include "common/math_util.h"

namespace tcdp {

StatusOr<std::size_t> PowChecked(std::size_t base, std::size_t exp,
                                 std::size_t limit) {
  std::size_t result = 1;
  for (std::size_t i = 0; i < exp; ++i) {
    if (base != 0 && result > limit / base) {
      return Status::InvalidArgument(
          "PowChecked: " + std::to_string(base) + "^" + std::to_string(exp) +
          " exceeds the limit " + std::to_string(limit));
    }
    result *= base;
  }
  return result;
}

StatusOr<HigherOrderChain> HigherOrderChain::Create(std::size_t num_values,
                                                    std::size_t order,
                                                    Matrix table) {
  if (num_values < 2) {
    return Status::InvalidArgument("HigherOrderChain: need >= 2 values");
  }
  if (order < 1) {
    return Status::InvalidArgument("HigherOrderChain: order must be >= 1");
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t histories, PowChecked(num_values, order));
  if (table.rows() != histories || table.cols() != num_values) {
    return Status::InvalidArgument(
        "HigherOrderChain: table must be " + std::to_string(histories) +
        "x" + std::to_string(num_values) + ", got " +
        std::to_string(table.rows()) + "x" + std::to_string(table.cols()));
  }
  for (std::size_t r = 0; r < table.rows(); ++r) {
    if (!IsProbabilityVector(table.Row(r), 1e-6)) {
      return Status::InvalidArgument(
          "HigherOrderChain: row " + std::to_string(r) +
          " is not a probability vector");
    }
  }
  return HigherOrderChain(num_values, order, std::move(table));
}

StatusOr<HigherOrderChain> HigherOrderChain::Estimate(
    const std::vector<Trajectory>& trajectories, std::size_t num_values,
    std::size_t order, double additive_smoothing) {
  if (num_values < 2 || order < 1) {
    return Status::InvalidArgument("Estimate: bad num_values/order");
  }
  if (additive_smoothing < 0.0) {
    return Status::InvalidArgument("Estimate: negative smoothing");
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t histories, PowChecked(num_values, order));
  Matrix counts(histories, num_values, additive_smoothing);
  bool any = false;
  for (const auto& traj : trajectories) {
    for (std::size_t s : traj) {
      if (s >= num_values) {
        return Status::InvalidArgument("Estimate: state index out of range");
      }
    }
    if (traj.size() <= order) continue;
    // Sliding window: encode history, count the next value.
    for (std::size_t t = order; t < traj.size(); ++t) {
      std::size_t code = 0;
      for (std::size_t k = t - order; k < t; ++k) {
        code = code * num_values + traj[k];
      }
      counts.At(code, traj[t]) += 1.0;
      any = true;
    }
  }
  if (!any && additive_smoothing == 0.0) {
    return Status::InvalidArgument(
        "Estimate: no window of length order+1 observed and no smoothing");
  }
  for (std::size_t r = 0; r < histories; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < num_values; ++c) sum += counts.At(r, c);
    if (sum == 0.0) {
      for (std::size_t c = 0; c < num_values; ++c) {
        counts.At(r, c) = 1.0 / static_cast<double>(num_values);
      }
    } else {
      for (std::size_t c = 0; c < num_values; ++c) counts.At(r, c) /= sum;
    }
  }
  return HigherOrderChain(num_values, order, std::move(counts));
}

StatusOr<std::size_t> HigherOrderChain::EncodeHistory(
    const std::vector<std::size_t>& history) const {
  if (history.size() != order_) {
    return Status::OutOfRange("EncodeHistory: window size != order");
  }
  std::size_t code = 0;
  for (std::size_t v : history) {
    if (v >= num_values_) {
      return Status::OutOfRange("EncodeHistory: value outside domain");
    }
    code = code * num_values_ + v;
  }
  return code;
}

std::vector<std::size_t> HigherOrderChain::DecodeHistory(
    std::size_t index) const {
  std::vector<std::size_t> history(order_, 0);
  for (std::size_t k = order_; k-- > 0;) {
    history[k] = index % num_values_;
    index /= num_values_;
  }
  return history;
}

StatusOr<double> HigherOrderChain::TransitionProbability(
    const std::vector<std::size_t>& history, std::size_t next) const {
  if (next >= num_values_) {
    return Status::OutOfRange("TransitionProbability: next outside domain");
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t code, EncodeHistory(history));
  return table_.At(code, next);
}

StochasticMatrix HigherOrderChain::EmbedAsFirstOrder() const {
  const std::size_t histories = num_histories();
  Matrix embedded(histories, histories, 0.0);
  for (std::size_t code = 0; code < histories; ++code) {
    // Shifting the window drops the most significant value and appends
    // the new one: next_code = (code mod n^{k-1}) * n + next.
    const std::size_t shifted =
        (code % (histories / num_values_)) * num_values_;
    for (std::size_t next = 0; next < num_values_; ++next) {
      embedded.At(code, shifted + next) = table_.At(code, next);
    }
  }
  auto result = StochasticMatrix::Create(std::move(embedded));
  assert(result.ok());
  return std::move(result).value();
}

Trajectory HigherOrderChain::Simulate(std::size_t horizon, Rng* rng) const {
  assert(rng != nullptr && horizon >= order_);
  Trajectory traj;
  traj.reserve(horizon);
  for (std::size_t k = 0; k < order_ && k < horizon; ++k) {
    traj.push_back(static_cast<std::size_t>(
        rng->UniformInt(0, static_cast<std::int64_t>(num_values_) - 1)));
  }
  while (traj.size() < horizon) {
    std::size_t code = 0;
    for (std::size_t k = traj.size() - order_; k < traj.size(); ++k) {
      code = code * num_values_ + traj[k];
    }
    auto next = rng->Discrete(table_.Row(code));
    assert(next.ok());
    traj.push_back(next.value());
  }
  return traj;
}

}  // namespace tcdp
