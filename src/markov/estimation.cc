#include "markov/estimation.h"

#include <string>

#include "linalg/matrix.h"

namespace tcdp {
namespace {

Status ValidateTrajectories(const std::vector<Trajectory>& trajectories,
                            std::size_t num_states) {
  if (num_states == 0) {
    return Status::InvalidArgument("Estimate: num_states must be positive");
  }
  for (const auto& traj : trajectories) {
    for (std::size_t s : traj) {
      if (s >= num_states) {
        return Status::InvalidArgument(
            "Estimate: state index " + std::to_string(s) +
            " out of range [0," + std::to_string(num_states) + ")");
      }
    }
  }
  return Status::OK();
}

StatusOr<StochasticMatrix> EstimateFromCounts(
    const std::vector<Trajectory>& trajectories, std::size_t num_states,
    const EstimationOptions& options, bool backward) {
  TCDP_RETURN_IF_ERROR(ValidateTrajectories(trajectories, num_states));
  if (options.additive_smoothing < 0.0) {
    return Status::InvalidArgument(
        "Estimate: additive_smoothing must be >= 0");
  }
  Matrix counts(num_states, num_states, options.additive_smoothing);
  bool any_pair = false;
  for (const auto& traj : trajectories) {
    for (std::size_t t = 1; t < traj.size(); ++t) {
      any_pair = true;
      if (backward) {
        counts.At(traj[t], traj[t - 1]) += 1.0;
      } else {
        counts.At(traj[t - 1], traj[t]) += 1.0;
      }
    }
  }
  if (!any_pair && options.additive_smoothing == 0.0) {
    return Status::InvalidArgument(
        "Estimate: no transition pairs observed (all trajectories have "
        "length < 2) and no smoothing requested");
  }
  for (std::size_t r = 0; r < num_states; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < num_states; ++c) sum += counts.At(r, c);
    if (sum == 0.0) {
      // Unobserved state: fall back to the uniform row (max-entropy).
      for (std::size_t c = 0; c < num_states; ++c) {
        counts.At(r, c) = 1.0 / static_cast<double>(num_states);
      }
    } else {
      for (std::size_t c = 0; c < num_states; ++c) counts.At(r, c) /= sum;
    }
  }
  return StochasticMatrix::Create(std::move(counts));
}

}  // namespace

StatusOr<StochasticMatrix> EstimateForwardTransition(
    const std::vector<Trajectory>& trajectories, std::size_t num_states,
    const EstimationOptions& options) {
  return EstimateFromCounts(trajectories, num_states, options,
                            /*backward=*/false);
}

StatusOr<StochasticMatrix> EstimateBackwardTransition(
    const std::vector<Trajectory>& trajectories, std::size_t num_states,
    const EstimationOptions& options) {
  return EstimateFromCounts(trajectories, num_states, options,
                            /*backward=*/true);
}

StatusOr<std::vector<double>> EstimateInitialDistribution(
    const std::vector<Trajectory>& trajectories, std::size_t num_states,
    const EstimationOptions& options) {
  TCDP_RETURN_IF_ERROR(ValidateTrajectories(trajectories, num_states));
  if (options.additive_smoothing < 0.0) {
    return Status::InvalidArgument(
        "Estimate: additive_smoothing must be >= 0");
  }
  std::vector<double> counts(num_states, options.additive_smoothing);
  bool any = false;
  for (const auto& traj : trajectories) {
    if (!traj.empty()) {
      counts[traj.front()] += 1.0;
      any = true;
    }
  }
  if (!any && options.additive_smoothing == 0.0) {
    return Status::InvalidArgument(
        "EstimateInitialDistribution: no non-empty trajectories");
  }
  double sum = 0.0;
  for (double c : counts) sum += c;
  for (double& c : counts) c /= sum;
  return counts;
}

}  // namespace tcdp
