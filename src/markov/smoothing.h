#ifndef TCDP_MARKOV_SMOOTHING_H_
#define TCDP_MARKOV_SMOOTHING_H_

/// \file
/// The paper's synthetic correlation generator (Section VI, Equation 25):
/// start from a "strongest" transition matrix (one probability-1.0 cell
/// per row, different columns) and apply Laplacian smoothing
///
///   p_hat(j,k) = (p(j,k) + s) / sum_u (p(j,u) + s)
///
/// Smaller s => stronger temporal correlation. s values are only
/// comparable under the same domain size n.

#include <cstddef>

#include "common/random.h"
#include "common/status.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// \brief Applies Laplacian smoothing (Equation 25) with parameter s >= 0.
///
/// s = 0 returns the matrix unchanged. Returns InvalidArgument for
/// negative or non-finite s.
StatusOr<StochasticMatrix> LaplacianSmooth(const StochasticMatrix& matrix,
                                           double s);

/// \brief The "strongest correlation" seed matrix used by Section VI.
///
/// A cyclic-shift permutation matrix: row i transitions to state
/// (i + 1) mod n with probability 1. Rows have their 1.0 cells in
/// pairwise-different columns, matching the paper's construction and
/// maximizing the privacy-loss increment (Remark 1's upper bound).
StochasticMatrix StrongestCorrelationMatrix(std::size_t n);

/// \brief Random "strongest" seed: a uniformly random permutation matrix.
StochasticMatrix RandomStrongestCorrelationMatrix(std::size_t n, Rng* rng);

/// \brief One-call generator for the experiment sweeps: strongest seed
/// smoothed with parameter \p s (Section VI setting).
///
/// s = 0 yields the strongest correlation; growing s approaches the
/// uniform (no-correlation) matrix.
StatusOr<StochasticMatrix> SmoothedCorrelationMatrix(std::size_t n, double s);

/// \brief Degree-of-correlation diagnostic in [0, 1]: mean total-variation
/// distance between rows and the uniform distribution, normalized so the
/// strongest matrix scores 1 and the uniform matrix scores 0.
double CorrelationDegree(const StochasticMatrix& matrix);

}  // namespace tcdp

#endif  // TCDP_MARKOV_SMOOTHING_H_
