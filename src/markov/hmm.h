#ifndef TCDP_MARKOV_HMM_H_
#define TCDP_MARKOV_HMM_H_

/// \file
/// Hidden Markov model with Baum–Welch (EM) learning — the paper's
/// "unsupervised" route for an adversary to acquire temporal correlations
/// from data it cannot observe directly (Section III-A).
///
/// Scaled forward-backward recursions avoid underflow on long sequences.

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "markov/markov_chain.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// An observation sequence o^1..o^T (indices into the observation domain).
using ObservationSequence = std::vector<std::size_t>;

struct HmmFitResult;

/// \brief Discrete-emission HMM: initial distribution pi, hidden-state
/// transition A (row-stochastic), emission B (hidden x observed,
/// row-stochastic rows over observations).
class HiddenMarkovModel {
 public:
  /// Validates dimensions: pi.size() == A.size() == B.rows(); B rows must
  /// each be a probability vector over num_observations() symbols.
  static StatusOr<HiddenMarkovModel> Create(std::vector<double> initial,
                                            StochasticMatrix transition,
                                            Matrix emission);

  /// Random initialization for EM restarts.
  static HiddenMarkovModel Random(std::size_t num_states,
                                  std::size_t num_observations, Rng* rng);

  std::size_t num_states() const { return transition_.size(); }
  std::size_t num_observations() const { return emission_.cols(); }
  const std::vector<double>& initial() const { return initial_; }
  const StochasticMatrix& transition() const { return transition_; }
  const Matrix& emission() const { return emission_; }

  /// Log-likelihood of an observation sequence (scaled forward pass).
  /// Returns InvalidArgument on an out-of-range observation symbol, and
  /// FailedPrecondition if the sequence has probability zero.
  StatusOr<double> LogLikelihood(const ObservationSequence& obs) const;

  /// Samples hidden states and observations for \p horizon steps.
  void Sample(std::size_t horizon, Rng* rng, Trajectory* hidden,
              ObservationSequence* observed) const;

  /// Most likely hidden trajectory (Viterbi, log domain).
  StatusOr<Trajectory> Viterbi(const ObservationSequence& obs) const;

  /// Runs Baum–Welch EM from this model as the starting point.
  /// Stops after \p max_iters or when the log-likelihood improvement
  /// falls below \p tol. The log-likelihood is non-decreasing across
  /// iterations (EM guarantee) — property-tested.
  StatusOr<HmmFitResult> BaumWelch(
      const std::vector<ObservationSequence>& sequences,
      std::size_t max_iters = 100, double tol = 1e-6) const;

 private:
  HiddenMarkovModel(std::vector<double> initial, StochasticMatrix transition,
                    Matrix emission)
      : initial_(std::move(initial)),
        transition_(std::move(transition)),
        emission_(std::move(emission)) {}

  /// Scaled forward-backward pass. Outputs per-step scaling factors,
  /// alpha-hat, beta-hat. Returns the log-likelihood.
  StatusOr<double> ForwardBackward(const ObservationSequence& obs,
                                   Matrix* alpha, Matrix* beta,
                                   std::vector<double>* scale) const;

  std::vector<double> initial_;
  StochasticMatrix transition_;
  Matrix emission_;
};

/// \brief Result of Baum–Welch training.
struct HmmFitResult {
  HiddenMarkovModel model;
  std::vector<double> log_likelihoods;  ///< one entry per EM iteration
  bool converged = false;
};

}  // namespace tcdp

#endif  // TCDP_MARKOV_HMM_H_
