#include "markov/markov_chain.h"

#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace tcdp {

StatusOr<MarkovChain> MarkovChain::Create(std::vector<double> initial,
                                          StochasticMatrix transition) {
  if (transition.empty()) {
    return Status::InvalidArgument("MarkovChain: empty transition matrix");
  }
  if (initial.size() != transition.size()) {
    return Status::InvalidArgument(
        "MarkovChain: initial distribution size " +
        std::to_string(initial.size()) + " != number of states " +
        std::to_string(transition.size()));
  }
  if (!IsProbabilityVector(initial, 1e-6)) {
    return Status::InvalidArgument(
        "MarkovChain: initial distribution is not a probability vector");
  }
  NormalizeInPlace(&initial);
  return MarkovChain(std::move(initial), std::move(transition));
}

MarkovChain MarkovChain::WithUniformInitial(StochasticMatrix transition) {
  const std::size_t n = transition.size();
  assert(n > 0);
  std::vector<double> initial(n, 1.0 / static_cast<double>(n));
  return MarkovChain(std::move(initial), std::move(transition));
}

std::size_t MarkovChain::SampleNext(std::size_t state, Rng* rng) const {
  assert(state < num_states() && rng != nullptr);
  auto next = rng->Discrete(transition_.Row(state));
  assert(next.ok());
  return next.value();
}

Trajectory MarkovChain::Simulate(std::size_t horizon, Rng* rng) const {
  assert(horizon >= 1 && rng != nullptr);
  Trajectory traj;
  traj.reserve(horizon);
  auto first = rng->Discrete(initial_);
  assert(first.ok());
  traj.push_back(first.value());
  for (std::size_t t = 1; t < horizon; ++t) {
    traj.push_back(SampleNext(traj.back(), rng));
  }
  return traj;
}

std::vector<double> MarkovChain::MarginalAt(std::size_t t) const {
  assert(t >= 1);
  std::vector<double> dist = initial_;
  for (std::size_t step = 1; step < t; ++step) {
    dist = transition_.Propagate(dist);
  }
  return dist;
}

StatusOr<std::vector<double>> MarkovChain::StationaryDistribution(
    std::size_t max_iters, double tol) const {
  std::vector<double> dist(num_states(),
                           1.0 / static_cast<double>(num_states()));
  for (std::size_t it = 0; it < max_iters; ++it) {
    std::vector<double> next = transition_.Propagate(dist);
    if (L1Distance(next, dist) < tol) return next;
    dist = std::move(next);
  }
  return Status::FailedPrecondition(
      "StationaryDistribution: power iteration did not converge "
      "(chain may be periodic)");
}

bool MarkovChain::IsIrreducible() const {
  const std::size_t n = num_states();
  // Strong connectivity via forward+backward BFS from state 0.
  auto bfs = [&](bool forward) {
    std::vector<bool> seen(n, false);
    std::vector<std::size_t> stack = {0};
    seen[0] = true;
    while (!stack.empty()) {
      std::size_t u = stack.back();
      stack.pop_back();
      for (std::size_t v = 0; v < n; ++v) {
        const double p =
            forward ? transition_.At(u, v) : transition_.At(v, u);
        if (p > 0.0 && !seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
    for (bool s : seen) {
      if (!s) return false;
    }
    return true;
  };
  return bfs(/*forward=*/true) && bfs(/*forward=*/false);
}

}  // namespace tcdp
