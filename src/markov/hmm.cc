#include "markov/hmm.h"

#include <cassert>
#include <cmath>
#include <string>

#include "common/math_util.h"

namespace tcdp {

StatusOr<HiddenMarkovModel> HiddenMarkovModel::Create(
    std::vector<double> initial, StochasticMatrix transition,
    Matrix emission) {
  const std::size_t n = transition.size();
  if (n == 0) return Status::InvalidArgument("HMM: empty transition");
  if (initial.size() != n) {
    return Status::InvalidArgument("HMM: initial size != num states");
  }
  if (!IsProbabilityVector(initial, 1e-6)) {
    return Status::InvalidArgument("HMM: initial is not a distribution");
  }
  if (emission.rows() != n || emission.cols() == 0) {
    return Status::InvalidArgument("HMM: emission shape mismatch");
  }
  for (std::size_t r = 0; r < n; ++r) {
    if (!IsProbabilityVector(emission.Row(r), 1e-6)) {
      return Status::InvalidArgument(
          "HMM: emission row " + std::to_string(r) +
          " is not a distribution");
    }
  }
  NormalizeInPlace(&initial);
  return HiddenMarkovModel(std::move(initial), std::move(transition),
                           std::move(emission));
}

HiddenMarkovModel HiddenMarkovModel::Random(std::size_t num_states,
                                            std::size_t num_observations,
                                            Rng* rng) {
  assert(num_states > 0 && num_observations > 0 && rng != nullptr);
  std::vector<double> initial(num_states);
  for (double& p : initial) p = rng->Uniform() + 1e-6;
  NormalizeInPlace(&initial);
  StochasticMatrix a = StochasticMatrix::Random(num_states, rng);
  Matrix b(num_states, num_observations);
  for (std::size_t r = 0; r < num_states; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < num_observations; ++c) {
      const double v = rng->Uniform() + 1e-6;
      b.At(r, c) = v;
      sum += v;
    }
    for (std::size_t c = 0; c < num_observations; ++c) b.At(r, c) /= sum;
  }
  auto model = Create(std::move(initial), std::move(a), std::move(b));
  assert(model.ok());
  return std::move(model).value();
}

StatusOr<double> HiddenMarkovModel::ForwardBackward(
    const ObservationSequence& obs, Matrix* alpha, Matrix* beta,
    std::vector<double>* scale) const {
  const std::size_t n = num_states();
  const std::size_t t_len = obs.size();
  if (t_len == 0) {
    return Status::InvalidArgument("HMM: empty observation sequence");
  }
  for (std::size_t o : obs) {
    if (o >= num_observations()) {
      return Status::InvalidArgument("HMM: observation symbol out of range");
    }
  }
  *alpha = Matrix(t_len, n, 0.0);
  *beta = Matrix(t_len, n, 0.0);
  scale->assign(t_len, 0.0);

  // Scaled forward pass.
  double ll = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    alpha->At(0, i) = initial_[i] * emission_.At(i, obs[0]);
  }
  for (std::size_t t = 0; t < t_len; ++t) {
    if (t > 0) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          acc += alpha->At(t - 1, i) * transition_.At(i, j);
        }
        alpha->At(t, j) = acc * emission_.At(j, obs[t]);
      }
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm += alpha->At(t, i);
    if (norm <= 0.0) {
      return Status::FailedPrecondition(
          "HMM: observation sequence has probability zero under the model");
    }
    (*scale)[t] = norm;
    ll += std::log(norm);
    for (std::size_t i = 0; i < n; ++i) alpha->At(t, i) /= norm;
  }

  // Scaled backward pass (same per-step scales).
  for (std::size_t i = 0; i < n; ++i) beta->At(t_len - 1, i) = 1.0;
  for (std::size_t t = t_len - 1; t-- > 0;) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        acc += transition_.At(i, j) * emission_.At(j, obs[t + 1]) *
               beta->At(t + 1, j);
      }
      beta->At(t, i) = acc / (*scale)[t + 1];
    }
  }
  return ll;
}

StatusOr<double> HiddenMarkovModel::LogLikelihood(
    const ObservationSequence& obs) const {
  Matrix alpha, beta;
  std::vector<double> scale;
  return ForwardBackward(obs, &alpha, &beta, &scale);
}

void HiddenMarkovModel::Sample(std::size_t horizon, Rng* rng,
                               Trajectory* hidden,
                               ObservationSequence* observed) const {
  assert(horizon >= 1 && rng != nullptr && hidden != nullptr &&
         observed != nullptr);
  hidden->clear();
  observed->clear();
  auto first = rng->Discrete(initial_);
  assert(first.ok());
  std::size_t state = first.value();
  for (std::size_t t = 0; t < horizon; ++t) {
    if (t > 0) {
      auto next = rng->Discrete(transition_.Row(state));
      assert(next.ok());
      state = next.value();
    }
    hidden->push_back(state);
    auto obs = rng->Discrete(emission_.Row(state));
    assert(obs.ok());
    observed->push_back(obs.value());
  }
}

StatusOr<Trajectory> HiddenMarkovModel::Viterbi(
    const ObservationSequence& obs) const {
  const std::size_t n = num_states();
  const std::size_t t_len = obs.size();
  if (t_len == 0) {
    return Status::InvalidArgument("Viterbi: empty observation sequence");
  }
  for (std::size_t o : obs) {
    if (o >= num_observations()) {
      return Status::InvalidArgument("Viterbi: symbol out of range");
    }
  }
  Matrix delta(t_len, n, -kInf);
  std::vector<std::vector<std::size_t>> parent(
      t_len, std::vector<std::size_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    delta.At(0, i) = SafeLog(initial_[i]) + SafeLog(emission_.At(i, obs[0]));
  }
  for (std::size_t t = 1; t < t_len; ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      double best = -kInf;
      std::size_t arg = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double cand = delta.At(t - 1, i) + SafeLog(transition_.At(i, j));
        if (cand > best) {
          best = cand;
          arg = i;
        }
      }
      delta.At(t, j) = best + SafeLog(emission_.At(j, obs[t]));
      parent[t][j] = arg;
    }
  }
  double best = -kInf;
  std::size_t arg = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (delta.At(t_len - 1, i) > best) {
      best = delta.At(t_len - 1, i);
      arg = i;
    }
  }
  if (!std::isfinite(best)) {
    return Status::FailedPrecondition(
        "Viterbi: sequence has probability zero under the model");
  }
  Trajectory path(t_len);
  path[t_len - 1] = arg;
  for (std::size_t t = t_len - 1; t-- > 0;) {
    path[t] = parent[t + 1][path[t + 1]];
  }
  return path;
}

StatusOr<HmmFitResult> HiddenMarkovModel::BaumWelch(
    const std::vector<ObservationSequence>& sequences, std::size_t max_iters,
    double tol) const {
  if (sequences.empty()) {
    return Status::InvalidArgument("BaumWelch: no sequences");
  }
  const std::size_t n = num_states();
  const std::size_t m = num_observations();
  HiddenMarkovModel current = *this;
  HmmFitResult result{current, {}, false};

  double prev_ll = -kInf;
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    // Accumulators (small pseudocount keeps rows normalizable).
    const double kPseudo = 1e-12;
    std::vector<double> pi_acc(n, kPseudo);
    Matrix a_acc(n, n, kPseudo);
    Matrix b_acc(n, m, kPseudo);
    std::vector<double> gamma_state(n, kPseudo);  // sum over t<T-1 of gamma
    double total_ll = 0.0;

    for (const auto& obs : sequences) {
      Matrix alpha, beta;
      std::vector<double> scale;
      TCDP_ASSIGN_OR_RETURN(
          double ll, current.ForwardBackward(obs, &alpha, &beta, &scale));
      total_ll += ll;
      const std::size_t t_len = obs.size();
      // gamma_t(i) = alpha_t(i) * beta_t(i) (scaled variants already
      // normalized so that sum_i gamma_t(i) = 1).
      for (std::size_t t = 0; t < t_len; ++t) {
        for (std::size_t i = 0; i < n; ++i) {
          const double g = alpha.At(t, i) * beta.At(t, i);
          if (t == 0) pi_acc[i] += g;
          b_acc.At(i, obs[t]) += g;
          if (t + 1 < t_len) gamma_state[i] += g;
        }
      }
      // xi_t(i,j) = alpha_t(i) A(i,j) B(j,o_{t+1}) beta_{t+1}(j) / c_{t+1}
      for (std::size_t t = 0; t + 1 < t_len; ++t) {
        for (std::size_t i = 0; i < n; ++i) {
          const double a_ti = alpha.At(t, i);
          if (a_ti == 0.0) continue;
          for (std::size_t j = 0; j < n; ++j) {
            const double xi = a_ti * current.transition_.At(i, j) *
                              current.emission_.At(j, obs[t + 1]) *
                              beta.At(t + 1, j) / scale[t + 1];
            a_acc.At(i, j) += xi;
          }
        }
      }
    }

    result.log_likelihoods.push_back(total_ll);
    // M-step: normalize accumulators.
    NormalizeInPlace(&pi_acc);
    Matrix a_new(n, n), b_new(n, m);
    for (std::size_t i = 0; i < n; ++i) {
      double a_row = 0.0;
      for (std::size_t j = 0; j < n; ++j) a_row += a_acc.At(i, j);
      for (std::size_t j = 0; j < n; ++j) a_new.At(i, j) = a_acc.At(i, j) / a_row;
      double b_row = 0.0;
      for (std::size_t k = 0; k < m; ++k) b_row += b_acc.At(i, k);
      for (std::size_t k = 0; k < m; ++k) b_new.At(i, k) = b_acc.At(i, k) / b_row;
    }
    TCDP_ASSIGN_OR_RETURN(auto a_sm, StochasticMatrix::Create(a_new));
    TCDP_ASSIGN_OR_RETURN(
        current, HiddenMarkovModel::Create(pi_acc, std::move(a_sm),
                                           std::move(b_new)));
    if (std::isfinite(prev_ll) && total_ll - prev_ll < tol) {
      result.converged = true;
      result.model = current;
      return result;
    }
    prev_ll = total_ll;
  }
  result.model = current;
  return result;
}

}  // namespace tcdp
