#include "markov/io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "linalg/matrix.h"

namespace tcdp {
namespace {

/// Splits a line on commas and whitespace, skipping empty fields.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char ch : line) {
    if (ch == ',' || ch == ' ' || ch == '\t' || ch == '\r') {
      if (!current.empty()) {
        fields.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) fields.push_back(current);
  return fields;
}

bool IsCommentOrBlank(const std::string& line) {
  for (char ch : line) {
    if (ch == '#') return true;
    if (ch != ' ' && ch != '\t' && ch != '\r') return false;
  }
  return true;
}

StatusOr<double> ParseDouble(const std::string& field, std::size_t line_no) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": cannot parse number '" + field + "'");
  }
  return value;
}

StatusOr<std::size_t> ParseIndex(const std::string& field,
                                 std::size_t line_no) {
  for (char ch : field) {
    if (ch < '0' || ch > '9') {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": cannot parse state index '" + field +
                                     "'");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": cannot parse state index '" + field +
                                   "'");
  }
  return static_cast<std::size_t>(value);
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot write file: " + path);
  }
  out << content;
  if (!out) {
    return Status::Internal("write failed for file: " + path);
  }
  return Status::OK();
}

}  // namespace

namespace {

StatusOr<Matrix> ParseMatrixRows(const std::string& text) {
  std::vector<std::vector<double>> rows;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::vector<double> row;
    for (const std::string& field : SplitFields(line)) {
      TCDP_ASSIGN_OR_RETURN(double v, ParseDouble(field, line_no));
      row.push_back(v);
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": ragged row (got " +
          std::to_string(row.size()) + " fields, expected " +
          std::to_string(rows.front().size()) + ")");
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("matrix text contains no data rows");
  }
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) m.SetRow(r, rows[r]);
  return m;
}

}  // namespace

StatusOr<StochasticMatrix> ParseStochasticMatrix(const std::string& text) {
  TCDP_ASSIGN_OR_RETURN(Matrix m, ParseMatrixRows(text));
  return StochasticMatrix::Create(std::move(m));
}

StatusOr<StochasticMatrix> ParseStochasticMatrixExact(
    const std::string& text) {
  TCDP_ASSIGN_OR_RETURN(Matrix m, ParseMatrixRows(text));
  return StochasticMatrix::CreateExact(std::move(m));
}

std::string SerializeStochasticMatrix(const StochasticMatrix& matrix,
                                      char separator) {
  std::ostringstream out;
  out.precision(17);
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      if (c > 0) out << separator;
      out << matrix.At(r, c);
    }
    out << '\n';
  }
  return out.str();
}

StatusOr<StochasticMatrix> LoadStochasticMatrix(const std::string& path) {
  TCDP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseStochasticMatrix(text);
}

Status SaveStochasticMatrix(const StochasticMatrix& matrix,
                            const std::string& path) {
  return WriteFile(path, SerializeStochasticMatrix(matrix));
}

StatusOr<std::vector<Trajectory>> ParseTrajectories(const std::string& text,
                                                    std::size_t num_states) {
  std::vector<Trajectory> trajectories;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t max_state = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    Trajectory traj;
    for (const std::string& field : SplitFields(line)) {
      TCDP_ASSIGN_OR_RETURN(std::size_t s, ParseIndex(field, line_no));
      if (num_states > 0 && s >= num_states) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": state " +
            std::to_string(s) + " outside domain of size " +
            std::to_string(num_states));
      }
      max_state = std::max(max_state, s);
      traj.push_back(s);
    }
    if (traj.empty()) continue;
    trajectories.push_back(std::move(traj));
  }
  if (trajectories.empty()) {
    return Status::InvalidArgument("trajectory text contains no data rows");
  }
  (void)max_state;
  return trajectories;
}

std::string SerializeTrajectories(const std::vector<Trajectory>& trajectories,
                                  char separator) {
  std::ostringstream out;
  for (const Trajectory& traj : trajectories) {
    for (std::size_t i = 0; i < traj.size(); ++i) {
      if (i > 0) out << separator;
      out << traj[i];
    }
    out << '\n';
  }
  return out.str();
}

StatusOr<std::vector<Trajectory>> LoadTrajectories(const std::string& path,
                                                   std::size_t num_states) {
  TCDP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseTrajectories(text, num_states);
}

Status SaveTrajectories(const std::vector<Trajectory>& trajectories,
                        const std::string& path) {
  return WriteFile(path, SerializeTrajectories(trajectories));
}

}  // namespace tcdp
