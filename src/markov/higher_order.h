#ifndef TCDP_MARKOV_HIGHER_ORDER_H_
#define TCDP_MARKOV_HIGHER_ORDER_H_

/// \file
/// k-th order Markov correlations (the paper's Section III-D outlook:
/// "more sophisticated temporal correlation model").
///
/// A k-th order chain over n values embeds into a first-order chain over
/// the n^k histories (l^{t-k+1}, ..., l^t). All of the paper's machinery
/// (Algorithm 1, Theorem 5, the allocators) then applies unchanged to the
/// embedded transition matrix — the embedding is the bridge that makes
/// the "primitives" claim of Section III-D concrete.
///
/// Caveat quantified in tests: the embedded adversary distinguishes
/// *histories*, which is strictly stronger than distinguishing single
/// values; the embedded TPL is therefore an upper bound on the k-th
/// order value-level leakage.

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "markov/markov_chain.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

/// \brief k-th order transition model: Pr(l^t | l^{t-k}, ..., l^{t-1}).
///
/// Stored as a (n^k x n) row-stochastic table: row = encoded history
/// (oldest value most significant), column = next value.
class HigherOrderChain {
 public:
  /// Validates the table shape (num_histories = n^k) and row
  /// stochasticity.
  static StatusOr<HigherOrderChain> Create(std::size_t num_values,
                                           std::size_t order,
                                           Matrix table);

  /// MLE from trajectories with optional add-k smoothing; unobserved
  /// histories fall back to the uniform row.
  static StatusOr<HigherOrderChain> Estimate(
      const std::vector<Trajectory>& trajectories, std::size_t num_values,
      std::size_t order, double additive_smoothing = 0.0);

  std::size_t num_values() const { return num_values_; }
  std::size_t order() const { return order_; }
  std::size_t num_histories() const { return table_.rows(); }
  const Matrix& table() const { return table_; }

  /// Encodes a history window (size = order, oldest first) to its row
  /// index. OutOfRange on bad values or window size.
  StatusOr<std::size_t> EncodeHistory(
      const std::vector<std::size_t>& history) const;

  /// Decodes a row index back to the history window (oldest first).
  std::vector<std::size_t> DecodeHistory(std::size_t index) const;

  /// Pr(next | history).
  StatusOr<double> TransitionProbability(
      const std::vector<std::size_t>& history, std::size_t next) const;

  /// \brief First-order embedding over the n^k histories: the state is
  /// the full window; a transition shifts the window and appends the new
  /// value. Feed the result to TemporalLossFunction / TplAccountant.
  StochasticMatrix EmbedAsFirstOrder() const;

  /// Samples a trajectory of length \p horizon (>= order) starting from
  /// a uniformly random initial window.
  Trajectory Simulate(std::size_t horizon, Rng* rng) const;

 private:
  HigherOrderChain(std::size_t num_values, std::size_t order, Matrix table)
      : num_values_(num_values), order_(order), table_(std::move(table)) {}

  std::size_t num_values_;
  std::size_t order_;
  Matrix table_;  // n^k x n
};

/// \brief n^k with overflow guard (InvalidArgument above \p limit,
/// default 1e6 states — the embedding is dense).
StatusOr<std::size_t> PowChecked(std::size_t base, std::size_t exp,
                                 std::size_t limit = 1000000);

}  // namespace tcdp

#endif  // TCDP_MARKOV_HIGHER_ORDER_H_
