#include "markov/smoothing.h"

#include <cassert>
#include <cmath>
#include <numeric>

#include "linalg/matrix.h"

namespace tcdp {

StatusOr<StochasticMatrix> LaplacianSmooth(const StochasticMatrix& matrix,
                                           double s) {
  if (!(s >= 0.0) || !std::isfinite(s)) {
    return Status::InvalidArgument(
        "LaplacianSmooth: s must be finite and >= 0, got " +
        std::to_string(s));
  }
  if (s == 0.0) return matrix;
  const std::size_t n = matrix.size();
  Matrix out(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    // Row sums to 1, so the smoothed denominator is 1 + n*s.
    const double denom = 1.0 + static_cast<double>(n) * s;
    for (std::size_t c = 0; c < n; ++c) {
      out.At(r, c) = (matrix.At(r, c) + s) / denom;
    }
  }
  return StochasticMatrix::Create(std::move(out));
}

StochasticMatrix StrongestCorrelationMatrix(std::size_t n) {
  assert(n > 0);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = (i + 1) % n;
  auto m = StochasticMatrix::Permutation(perm);
  assert(m.ok());
  return std::move(m).value();
}

StochasticMatrix RandomStrongestCorrelationMatrix(std::size_t n, Rng* rng) {
  assert(n > 0 && rng != nullptr);
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng->Shuffle(&perm);
  auto m = StochasticMatrix::Permutation(perm);
  assert(m.ok());
  return std::move(m).value();
}

StatusOr<StochasticMatrix> SmoothedCorrelationMatrix(std::size_t n,
                                                     double s) {
  return LaplacianSmooth(StrongestCorrelationMatrix(n), s);
}

double CorrelationDegree(const StochasticMatrix& matrix) {
  const std::size_t n = matrix.size();
  if (n <= 1) return 0.0;
  const double uniform = 1.0 / static_cast<double>(n);
  // Max possible total variation of a row vs uniform: 1 - 1/n.
  const double max_tv = 1.0 - uniform;
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double tv = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      tv += std::fabs(matrix.At(r, c) - uniform);
    }
    acc += 0.5 * tv;
  }
  return (acc / static_cast<double>(n)) / max_tv;
}

}  // namespace tcdp
