#include "release/timeseries.h"

#include <string>

namespace tcdp {

StatusOr<TimeSeriesDatabase> TimeSeriesDatabase::FromTrajectories(
    const std::vector<Trajectory>& trajectories, std::size_t domain_size) {
  if (trajectories.empty()) {
    return Status::InvalidArgument("FromTrajectories: no trajectories");
  }
  const std::size_t horizon = trajectories.front().size();
  if (horizon == 0) {
    return Status::InvalidArgument("FromTrajectories: empty trajectories");
  }
  for (const auto& traj : trajectories) {
    if (traj.size() != horizon) {
      return Status::InvalidArgument(
          "FromTrajectories: trajectories must share one horizon");
    }
  }
  TimeSeriesDatabase series(domain_size);
  for (std::size_t t = 0; t < horizon; ++t) {
    std::vector<std::size_t> values;
    values.reserve(trajectories.size());
    for (const auto& traj : trajectories) values.push_back(traj[t]);
    TCDP_ASSIGN_OR_RETURN(Database db,
                          Database::Create(std::move(values), domain_size));
    TCDP_RETURN_IF_ERROR(series.Append(std::move(db)));
  }
  return series;
}

Status TimeSeriesDatabase::Append(Database snapshot) {
  if (snapshot.domain_size() != domain_size_) {
    return Status::InvalidArgument(
        "Append: snapshot domain size " +
        std::to_string(snapshot.domain_size()) + " != series domain size " +
        std::to_string(domain_size_));
  }
  if (!snapshots_.empty() &&
      snapshot.num_users() != snapshots_.front().num_users()) {
    return Status::InvalidArgument(
        "Append: snapshot user count changed mid-series");
  }
  snapshots_.push_back(std::move(snapshot));
  return Status::OK();
}

StatusOr<Database> TimeSeriesDatabase::At(std::size_t t) const {
  if (t < 1 || t > snapshots_.size()) {
    return Status::OutOfRange("At: time " + std::to_string(t) +
                              " outside [1," +
                              std::to_string(snapshots_.size()) + "]");
  }
  return snapshots_[t - 1];
}

}  // namespace tcdp
