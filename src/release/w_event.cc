#include "release/w_event.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "dp/laplace.h"

namespace tcdp {

Status ValidateWEventOptions(const WEventOptions& options) {
  if (options.window == 0) {
    return Status::InvalidArgument("WEvent: window must be >= 1");
  }
  if (!(options.epsilon > 0.0) || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument("WEvent: epsilon must be finite and > 0");
  }
  if (!(options.dissimilarity_fraction > 0.0) ||
      !(options.dissimilarity_fraction < 1.0)) {
    return Status::InvalidArgument(
        "WEvent: dissimilarity_fraction must lie in (0, 1)");
  }
  return Status::OK();
}

WEventMechanism::WEventMechanism(const char* name, WEventOptions options,
                                 std::unique_ptr<Query> query)
    : options_(options), query_(std::move(query)) {
  name_ = name;
  assert(query_ != nullptr);
}

double WEventMechanism::RecentPublicationSpend() const {
  double sum = 0.0;
  const std::size_t w = options_.window;
  const std::size_t start =
      publication_spend_.size() > w - 1 ? publication_spend_.size() - (w - 1)
                                        : 0;
  for (std::size_t i = start; i < publication_spend_.size(); ++i) {
    sum += publication_spend_[i];
  }
  return sum;
}

StatusOr<WEventRelease> WEventMechanism::Process(const Database& db,
                                                 Rng* rng) {
  assert(rng != nullptr);
  const double eps1 =
      options_.epsilon * options_.dissimilarity_fraction;  // dissimilarity
  const double dissim_step = eps1 / static_cast<double>(options_.window);
  const double sensitivity = query_->Sensitivity();

  WEventRelease release;
  release.time = publication_spend_.size() + 1;
  release.true_values = query_->Evaluate(db);
  const std::size_t dim = release.true_values.size();
  if (dim == 0) {
    return Status::InvalidArgument("WEvent: query produced no values");
  }

  const double offer = OfferPublicationBudget();
  bool publish;
  if (last_published_.empty()) {
    publish = true;  // nothing to re-publish yet
  } else if (offer <= 0.0) {
    publish = false;  // nullified / exhausted: forced re-publication
  } else {
    // Noisy dissimilarity test: mean L1 change vs the last publication,
    // perturbed with the per-step dissimilarity budget. Publish only if
    // the (estimated) change exceeds the publication noise level.
    double dis = 0.0;
    for (std::size_t b = 0; b < dim; ++b) {
      dis += std::fabs(release.true_values[b] - last_published_[b]);
    }
    dis /= static_cast<double>(dim);
    const double dis_sensitivity = sensitivity / static_cast<double>(dim);
    const double noisy_dis =
        dis + rng->Laplace(dis_sensitivity / dissim_step);
    const double publication_noise = sensitivity / offer;
    publish = noisy_dis > publication_noise;
  }

  if (publish && offer > 0.0) {
    TCDP_ASSIGN_OR_RETURN(LaplaceMechanism mech,
                          LaplaceMechanism::Create(offer, sensitivity));
    release.released_values = mech.PerturbVector(release.true_values, rng);
    release.published = true;
    release.publication_epsilon = offer;
    last_published_ = release.released_values;
    publication_spend_.push_back(offer);
    ++num_publications_;
    OnDecision(/*published=*/true, offer);
  } else {
    release.released_values = last_published_;
    release.published = false;
    release.publication_epsilon = 0.0;
    publication_spend_.push_back(0.0);
    OnDecision(/*published=*/false, 0.0);
  }
  return release;
}

double WEventMechanism::MaxWindowSpend() const {
  const std::size_t w = options_.window;
  const double eps1 = options_.epsilon * options_.dissimilarity_fraction;
  const double dissim_step = eps1 / static_cast<double>(w);
  double best = 0.0;
  double window_pub = 0.0;
  for (std::size_t i = 0; i < publication_spend_.size(); ++i) {
    window_pub += publication_spend_[i];
    if (i >= w) window_pub -= publication_spend_[i - w];
    const std::size_t steps_in_window = std::min(i + 1, w);
    best = std::max(best,
                    window_pub + dissim_step *
                                     static_cast<double>(steps_in_window));
  }
  return best;
}

// --- Budget Distribution -------------------------------------------------

StatusOr<std::unique_ptr<BudgetDistributionMechanism>>
BudgetDistributionMechanism::Create(WEventOptions options,
                                    std::unique_ptr<Query> query) {
  TCDP_RETURN_IF_ERROR(ValidateWEventOptions(options));
  if (query == nullptr) {
    return Status::InvalidArgument("BudgetDistribution: null query");
  }
  return std::unique_ptr<BudgetDistributionMechanism>(
      new BudgetDistributionMechanism(options, std::move(query)));
}

double BudgetDistributionMechanism::OfferPublicationBudget() {
  const double eps2 =
      options_.epsilon * (1.0 - options_.dissimilarity_fraction);
  const double remaining = eps2 - RecentPublicationSpend();
  return remaining > 0.0 ? remaining / 2.0 : 0.0;
}

void BudgetDistributionMechanism::OnDecision(bool, double) {
  // Stateless beyond the spend history kept by the base class.
}

// --- Budget Absorption ---------------------------------------------------

StatusOr<std::unique_ptr<BudgetAbsorptionMechanism>>
BudgetAbsorptionMechanism::Create(WEventOptions options,
                                  std::unique_ptr<Query> query) {
  TCDP_RETURN_IF_ERROR(ValidateWEventOptions(options));
  if (query == nullptr) {
    return Status::InvalidArgument("BudgetAbsorption: null query");
  }
  return std::unique_ptr<BudgetAbsorptionMechanism>(
      new BudgetAbsorptionMechanism(options, std::move(query)));
}

double BudgetAbsorptionMechanism::OfferPublicationBudget() {
  if (nullified_remaining_ > 0) return 0.0;
  const double eps2 =
      options_.epsilon * (1.0 - options_.dissimilarity_fraction);
  const double unit = eps2 / static_cast<double>(options_.window);
  // The current step's pre-assigned budget becomes available; absorption
  // is capped at w steps so a single publication never exceeds eps2.
  absorbable_steps_ = std::min(absorbable_steps_ + 1, options_.window);
  return unit * static_cast<double>(absorbable_steps_);
}

void BudgetAbsorptionMechanism::OnDecision(bool published, double) {
  if (nullified_remaining_ > 0) {
    // This step was nullified; its budget is forfeited.
    --nullified_remaining_;
    return;
  }
  if (published) {
    // Nullify as many future steps as were absorbed beyond the current
    // one (Kellaris et al., Budget Absorption).
    nullified_remaining_ = absorbable_steps_ - 1;
    absorbable_steps_ = 0;
  }
  // Otherwise the accumulated absorbable budget carries to the next step.
}

}  // namespace tcdp
