#ifndef TCDP_RELEASE_RELEASE_ENGINE_H_
#define TCDP_RELEASE_RELEASE_ENGINE_H_

/// \file
/// Differentially private continuous release (paper Figure 1): at each
/// time point, evaluate a query on the snapshot and perturb it with the
/// Laplace mechanism under that time point's budget.

#include <cstddef>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dp/budget.h"
#include "dp/geometric.h"
#include "dp/laplace.h"
#include "dp/query.h"
#include "release/timeseries.h"

namespace tcdp {

/// \brief One private output r^t.
struct NoisyRelease {
  std::size_t time = 0;                ///< 1-based time point
  double epsilon = 0.0;                ///< budget spent on this release
  std::vector<double> true_values;     ///< Q(D^t)
  std::vector<double> noisy_values;    ///< M^t(D^t)
};

/// Which eps-DP noise distribution perturbs the query outputs.
enum class NoiseKind {
  kLaplace,    ///< continuous Laplace (paper Theorem 1)
  kGeometric,  ///< two-sided geometric: integral outputs for counts
};

/// \brief Drives per-time-point DP releases over a time-series database.
///
/// The engine owns the query, a budget ledger, and the noise source; each
/// call to Release spends from the ledger.
class ReleaseEngine {
 public:
  /// \p total_budget caps the ledger (infinity = uncapped).
  ReleaseEngine(std::unique_ptr<Query> query, Rng* rng,
                double total_budget =
                    std::numeric_limits<double>::infinity(),
                NoiseKind noise = NoiseKind::kLaplace);

  /// Releases Q(D) with budget \p epsilon. Fails with InvalidArgument for
  /// non-positive epsilon and ResourceExhausted when over budget.
  StatusOr<NoisyRelease> Release(const Database& db, double epsilon);

  /// Releases the whole series with per-time budgets \p epsilons
  /// (size must equal series.horizon()).
  StatusOr<std::vector<NoisyRelease>> ReleaseSeries(
      const TimeSeriesDatabase& series, const std::vector<double>& epsilons);

  /// Uniform-budget convenience.
  StatusOr<std::vector<NoisyRelease>> ReleaseSeriesUniform(
      const TimeSeriesDatabase& series, double epsilon_per_step);

  const BudgetLedger& ledger() const { return ledger_; }
  const Query& query() const { return *query_; }

 private:
  std::unique_ptr<Query> query_;
  Rng* rng_;
  BudgetLedger ledger_;
  NoiseKind noise_;
  std::size_t next_time_ = 1;
};

/// \name Utility metrics (Figure 8's axes).
/// @{

/// Mean absolute error between true and noisy values across releases.
double MeanAbsoluteError(const std::vector<NoisyRelease>& releases);

/// Analytical mean E|noise| across releases: mean_t(sensitivity/eps_t).
double ExpectedAbsNoise(const std::vector<double>& epsilons,
                        double sensitivity = 1.0);
/// @}

}  // namespace tcdp

#endif  // TCDP_RELEASE_RELEASE_ENGINE_H_
