#ifndef TCDP_RELEASE_W_EVENT_H_
#define TCDP_RELEASE_W_EVENT_H_

/// \file
/// w-event private streaming mechanisms — Kellaris et al., "Differentially
/// private event sequences over infinite streams" (PVLDB 2014), the
/// paper's reference [22] and the middle row of its Table II.
///
/// Both mechanisms guarantee eps-DP over every window of w consecutive
/// time points by splitting eps into a dissimilarity half (eps/2, spent
/// uniformly as eps/(2w) per step) and a publication half (eps/2, spent
/// adaptively):
///
///  * Budget Distribution (BD): a publication takes half of the
///    publication budget still unspent inside the current window.
///  * Budget Absorption (BA): the publication budget is pre-assigned
///    uniformly (eps/(2w) per step); a publication absorbs the budgets
///    of the preceding skipped steps, then nullifies an equal number of
///    following steps.
///
/// At each step the mechanism either publishes a fresh noisy histogram
/// or re-publishes the previous one when the (noisily estimated) change
/// is below the publication noise level.
///
/// The paper's point, reproduced in bench_wevent_tpl: these guarantees
/// are stated for independent data; under temporal correlations the
/// actual per-window leakage is Theorem 2's composition and exceeds
/// w-event's nominal eps.

#include <cstddef>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dp/database.h"
#include "dp/query.h"
#include "release/release_engine.h"

namespace tcdp {

/// Options shared by the w-event mechanisms.
struct WEventOptions {
  std::size_t window = 4;   ///< w
  double epsilon = 1.0;     ///< per-window budget
  /// Fraction of eps reserved for dissimilarity estimation (eps_1).
  double dissimilarity_fraction = 0.5;
};

/// \brief One streaming release step.
struct WEventRelease {
  std::size_t time = 0;
  bool published = false;           ///< fresh publication vs re-publication
  double publication_epsilon = 0.0; ///< 0 when re-publishing
  std::vector<double> true_values;
  std::vector<double> released_values;
};

/// \brief Common scaffolding for the two budget strategies.
class WEventMechanism {
 public:
  virtual ~WEventMechanism() = default;

  /// Validated construction parameters are checked by subclass factories.
  const WEventOptions& options() const { return options_; }
  const char* name() const { return name_; }

  /// Processes the next snapshot (time advances by one per call).
  StatusOr<WEventRelease> Process(const Database& db, Rng* rng);

  /// Total budget (dissimilarity + publication) spent in any window of w
  /// consecutive steps so far — must never exceed epsilon.
  double MaxWindowSpend() const;

  std::size_t num_steps() const { return publication_spend_.size(); }
  std::size_t num_publications() const { return num_publications_; }

 protected:
  WEventMechanism(const char* name, WEventOptions options,
                  std::unique_ptr<Query> query);

  /// Publication budget offered at this step (0 = must re-publish);
  /// called after the dissimilarity test passes.
  virtual double OfferPublicationBudget() = 0;
  /// Informs the strategy whether the offer was taken.
  virtual void OnDecision(bool published, double spent) = 0;

  /// Publication spends of the last (window-1) steps, for subclasses.
  double RecentPublicationSpend() const;

  WEventOptions options_;
  std::unique_ptr<Query> query_;
  std::vector<double> publication_spend_;  ///< per step, 0 if re-published
  std::vector<double> last_published_;
  std::size_t num_publications_ = 0;
  const char* name_ = "";
};

/// \brief Kellaris et al.'s Budget Distribution strategy.
class BudgetDistributionMechanism final : public WEventMechanism {
 public:
  /// Returns InvalidArgument for window = 0, epsilon <= 0 or a
  /// dissimilarity fraction outside (0, 1).
  static StatusOr<std::unique_ptr<BudgetDistributionMechanism>> Create(
      WEventOptions options, std::unique_ptr<Query> query);

 protected:
  double OfferPublicationBudget() override;
  void OnDecision(bool published, double spent) override;

 private:
  BudgetDistributionMechanism(WEventOptions options,
                              std::unique_ptr<Query> query)
      : WEventMechanism("budget-distribution", std::move(options),
                        std::move(query)) {}
};

/// \brief Kellaris et al.'s Budget Absorption strategy.
class BudgetAbsorptionMechanism final : public WEventMechanism {
 public:
  static StatusOr<std::unique_ptr<BudgetAbsorptionMechanism>> Create(
      WEventOptions options, std::unique_ptr<Query> query);

 protected:
  double OfferPublicationBudget() override;
  void OnDecision(bool published, double spent) override;

 private:
  BudgetAbsorptionMechanism(WEventOptions options,
                            std::unique_ptr<Query> query)
      : WEventMechanism("budget-absorption", std::move(options),
                        std::move(query)) {}

  std::size_t nullified_remaining_ = 0;
  std::size_t absorbable_steps_ = 1;  ///< including the current step
};

/// Shared parameter validation for the factories.
Status ValidateWEventOptions(const WEventOptions& options);

}  // namespace tcdp

#endif  // TCDP_RELEASE_W_EVENT_H_
