#include "release/release_engine.h"

#include <cassert>
#include <cmath>
#include <string>

namespace tcdp {

ReleaseEngine::ReleaseEngine(std::unique_ptr<Query> query, Rng* rng,
                             double total_budget, NoiseKind noise)
    : query_(std::move(query)),
      rng_(rng),
      ledger_(total_budget),
      noise_(noise) {
  assert(query_ != nullptr && rng_ != nullptr);
}

StatusOr<NoisyRelease> ReleaseEngine::Release(const Database& db,
                                              double epsilon) {
  NoisyRelease out;
  out.true_values = query_->Evaluate(db);
  if (noise_ == NoiseKind::kGeometric) {
    const double s = query_->Sensitivity();
    if (s != std::floor(s)) {
      return Status::FailedPrecondition(
          "ReleaseEngine: geometric noise requires integral sensitivity");
    }
    TCDP_ASSIGN_OR_RETURN(
        GeometricMechanism mech,
        GeometricMechanism::Create(epsilon, static_cast<int>(s)));
    TCDP_RETURN_IF_ERROR(
        ledger_.Spend(epsilon, "t=" + std::to_string(next_time_)));
    out.noisy_values = mech.PerturbVector(out.true_values, rng_);
  } else {
    TCDP_ASSIGN_OR_RETURN(
        LaplaceMechanism mech,
        LaplaceMechanism::Create(epsilon, query_->Sensitivity()));
    TCDP_RETURN_IF_ERROR(
        ledger_.Spend(epsilon, "t=" + std::to_string(next_time_)));
    out.noisy_values = mech.PerturbVector(out.true_values, rng_);
  }
  out.time = next_time_++;
  out.epsilon = epsilon;
  return out;
}

StatusOr<std::vector<NoisyRelease>> ReleaseEngine::ReleaseSeries(
    const TimeSeriesDatabase& series, const std::vector<double>& epsilons) {
  if (epsilons.size() != series.horizon()) {
    return Status::InvalidArgument(
        "ReleaseSeries: epsilons size " + std::to_string(epsilons.size()) +
        " != horizon " + std::to_string(series.horizon()));
  }
  std::vector<NoisyRelease> out;
  out.reserve(series.horizon());
  for (std::size_t t = 1; t <= series.horizon(); ++t) {
    TCDP_ASSIGN_OR_RETURN(Database db, series.At(t));
    TCDP_ASSIGN_OR_RETURN(NoisyRelease r, Release(db, epsilons[t - 1]));
    out.push_back(std::move(r));
  }
  return out;
}

StatusOr<std::vector<NoisyRelease>> ReleaseEngine::ReleaseSeriesUniform(
    const TimeSeriesDatabase& series, double epsilon_per_step) {
  return ReleaseSeries(
      series, std::vector<double>(series.horizon(), epsilon_per_step));
}

double MeanAbsoluteError(const std::vector<NoisyRelease>& releases) {
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& r : releases) {
    for (std::size_t i = 0; i < r.true_values.size(); ++i) {
      acc += std::fabs(r.noisy_values[i] - r.true_values[i]);
      ++count;
    }
  }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

double ExpectedAbsNoise(const std::vector<double>& epsilons,
                        double sensitivity) {
  if (epsilons.empty()) return 0.0;
  double acc = 0.0;
  for (double eps : epsilons) acc += sensitivity / eps;
  return acc / static_cast<double>(epsilons.size());
}

}  // namespace tcdp
