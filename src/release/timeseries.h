#ifndef TCDP_RELEASE_TIMESERIES_H_
#define TCDP_RELEASE_TIMESERIES_H_

/// \file
/// The continuous-observation data model (paper Section II-C): a trusted
/// server collects one snapshot database per time point, D^1..D^T.

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "dp/database.h"
#include "markov/markov_chain.h"

namespace tcdp {

/// \brief Ordered sequence of snapshot databases over a fixed user set
/// and value domain.
class TimeSeriesDatabase {
 public:
  /// Empty series over a domain of \p domain_size values.
  explicit TimeSeriesDatabase(std::size_t domain_size)
      : domain_size_(domain_size) {}

  /// Builds the series from per-user trajectories (all the same length T,
  /// all >= 1): snapshot t holds user i's t-th value. This is the
  /// Figure 1(a) layout transposed into columns.
  static StatusOr<TimeSeriesDatabase> FromTrajectories(
      const std::vector<Trajectory>& trajectories, std::size_t domain_size);

  std::size_t domain_size() const { return domain_size_; }
  std::size_t horizon() const { return snapshots_.size(); }
  std::size_t num_users() const {
    return snapshots_.empty() ? 0 : snapshots_.front().num_users();
  }

  /// Appends a snapshot. Returns InvalidArgument when the domain or user
  /// count disagrees with existing snapshots.
  Status Append(Database snapshot);

  /// Snapshot at 1-based time t (paper indexing). OutOfRange if t is not
  /// in [1, horizon()].
  StatusOr<Database> At(std::size_t t) const;

  const std::vector<Database>& snapshots() const { return snapshots_; }

 private:
  std::size_t domain_size_;
  std::vector<Database> snapshots_;
};

}  // namespace tcdp

#endif  // TCDP_RELEASE_TIMESERIES_H_
