#ifndef TCDP_WORKLOAD_GENERATORS_H_
#define TCDP_WORKLOAD_GENERATORS_H_

/// \file
/// Synthetic workload generators for the examples and the experiment
/// harness: a Figure-1-style road network, a clickstream model, and the
/// Section-VI experiment matrices.

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "markov/markov_chain.h"
#include "markov/stochastic_matrix.h"
#include "release/timeseries.h"

namespace tcdp {

/// \brief A small road network over `num_locations` places laid out on a
/// ring; vehicles mostly move to an adjacent place, sometimes stay.
///
/// `stay_prob` + 2 * `move_prob` + background noise = 1 per row. The
/// resulting chain is irreducible and aperiodic for n >= 3.
StatusOr<StochasticMatrix> RingRoadNetwork(std::size_t num_locations,
                                           double stay_prob = 0.3,
                                           double move_prob = 0.3);

/// \brief Clickstream model: pages have a "home" hub (page 0); from any
/// page users return home with `home_prob`, follow a forward link with
/// `link_prob`, or jump uniformly at random.
StatusOr<StochasticMatrix> ClickstreamModel(std::size_t num_pages,
                                            double home_prob = 0.3,
                                            double link_prob = 0.5);

/// \brief Simulates a population of independent users following \p chain
/// for \p horizon steps, packaged as a time-series database.
StatusOr<TimeSeriesDatabase> SimulatePopulation(const MarkovChain& chain,
                                                std::size_t num_users,
                                                std::size_t horizon,
                                                Rng* rng);

/// \brief Simulates per-user trajectories (same chain, independent
/// randomness).
std::vector<Trajectory> SimulateTrajectories(const MarkovChain& chain,
                                             std::size_t num_users,
                                             std::size_t horizon, Rng* rng);

/// \brief The Figure 1 hand-built scenario: 4 users, 5 locations, 3 time
/// points, plus the deterministic road-network correlation
/// Pr(l^t = loc5 | l^{t-1} = loc4) = 1 of Example 1.
struct Figure1Scenario {
  TimeSeriesDatabase series;
  StochasticMatrix forward_correlation;
  std::vector<std::string> location_names;
};
StatusOr<Figure1Scenario> MakeFigure1Scenario();

}  // namespace tcdp

#endif  // TCDP_WORKLOAD_GENERATORS_H_
