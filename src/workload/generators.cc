#include "workload/generators.h"

#include <cassert>
#include <string>

#include "linalg/matrix.h"

namespace tcdp {

StatusOr<StochasticMatrix> RingRoadNetwork(std::size_t num_locations,
                                           double stay_prob,
                                           double move_prob) {
  if (num_locations < 3) {
    return Status::InvalidArgument("RingRoadNetwork: need >= 3 locations");
  }
  if (stay_prob < 0.0 || move_prob < 0.0 ||
      stay_prob + 2.0 * move_prob > 1.0) {
    return Status::InvalidArgument(
        "RingRoadNetwork: require stay_prob, move_prob >= 0 and "
        "stay_prob + 2*move_prob <= 1");
  }
  const std::size_t n = num_locations;
  const double background =
      (1.0 - stay_prob - 2.0 * move_prob) / static_cast<double>(n);
  Matrix m(n, n, background);
  for (std::size_t i = 0; i < n; ++i) {
    m.At(i, i) += stay_prob;
    m.At(i, (i + 1) % n) += move_prob;
    m.At(i, (i + n - 1) % n) += move_prob;
  }
  return StochasticMatrix::Create(std::move(m));
}

StatusOr<StochasticMatrix> ClickstreamModel(std::size_t num_pages,
                                            double home_prob,
                                            double link_prob) {
  if (num_pages < 2) {
    return Status::InvalidArgument("ClickstreamModel: need >= 2 pages");
  }
  if (home_prob < 0.0 || link_prob < 0.0 || home_prob + link_prob > 1.0) {
    return Status::InvalidArgument(
        "ClickstreamModel: require home_prob, link_prob >= 0 and "
        "home_prob + link_prob <= 1");
  }
  const std::size_t n = num_pages;
  const double jump = (1.0 - home_prob - link_prob) / static_cast<double>(n);
  Matrix m(n, n, jump);
  for (std::size_t i = 0; i < n; ++i) {
    m.At(i, 0) += home_prob;               // return to the hub
    m.At(i, (i + 1) % n) += link_prob;     // follow the next link
  }
  return StochasticMatrix::Create(std::move(m));
}

std::vector<Trajectory> SimulateTrajectories(const MarkovChain& chain,
                                             std::size_t num_users,
                                             std::size_t horizon, Rng* rng) {
  assert(rng != nullptr && num_users > 0 && horizon > 0);
  std::vector<Trajectory> out;
  out.reserve(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    out.push_back(chain.Simulate(horizon, rng));
  }
  return out;
}

StatusOr<TimeSeriesDatabase> SimulatePopulation(const MarkovChain& chain,
                                                std::size_t num_users,
                                                std::size_t horizon,
                                                Rng* rng) {
  if (num_users == 0 || horizon == 0) {
    return Status::InvalidArgument(
        "SimulatePopulation: users and horizon must be positive");
  }
  return TimeSeriesDatabase::FromTrajectories(
      SimulateTrajectories(chain, num_users, horizon, rng),
      chain.num_states());
}

StatusOr<Figure1Scenario> MakeFigure1Scenario() {
  // Figure 1(a): rows = users u1..u4, columns = t = 1..3, values are
  // 0-based location indices (loc1 = 0, ..., loc5 = 4).
  const std::vector<Trajectory> user_rows = {
      {2, 0, 0},  // u1: loc3 loc1 loc1
      {1, 0, 0},  // u2: loc2 loc1 loc1
      {1, 3, 4},  // u3: loc2 loc4 loc5
      {3, 4, 2},  // u4: loc4 loc5 loc3
  };
  TCDP_ASSIGN_OR_RETURN(
      TimeSeriesDatabase series,
      TimeSeriesDatabase::FromTrajectories(user_rows, /*domain_size=*/5));

  // Example 1's road-network pattern: whoever is at loc4 moves to loc5
  // with probability 1; elsewhere movement is lightly structured.
  const StochasticMatrix forward = StochasticMatrix::FromRows({
      {0.6, 0.1, 0.1, 0.1, 0.1},   // loc1
      {0.4, 0.2, 0.1, 0.2, 0.1},   // loc2
      {0.3, 0.1, 0.3, 0.2, 0.1},   // loc3
      {0.0, 0.0, 0.0, 0.0, 1.0},   // loc4 -> loc5 always
      {0.2, 0.1, 0.4, 0.2, 0.1},   // loc5
  });
  Figure1Scenario scenario{std::move(series), forward,
                           {"loc1", "loc2", "loc3", "loc4", "loc5"}};
  return scenario;
}

}  // namespace tcdp
