// Clickstream monitoring: continuous release of page-visit counts (the
// web-analytics workload from the paper's introduction), with
// *personalized* temporal privacy accounting (Section III-D).
//
// Users differ in how predictable their browsing is; the population-level
// alpha-DP_T guarantee is driven by the most predictable user, while less
// correlated users enjoy strictly smaller leakage under the same noise.
//
// Run: ./build/examples/clickstream_monitor

#include <cstdio>
#include <memory>

#include "common/table.h"
#include "core/budget_allocation.h"
#include "core/tpl_accountant.h"
#include "markov/smoothing.h"
#include "release/release_engine.h"
#include "workload/generators.h"

namespace {

int Fail(const tcdp::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace tcdp;
  const std::size_t num_pages = 6;
  const std::size_t horizon = 20;
  const double alpha = 1.5;

  std::printf("Clickstream monitor: %zu pages, T=%zu, population "
              "alpha=%.1f\n\n",
              num_pages, horizon, alpha);

  // Three user profiles with different browsing predictability, modeled
  // by Laplacian-smoothing the clickstream graph at different strengths.
  auto base = ClickstreamModel(num_pages, /*home_prob=*/0.35,
                               /*link_prob=*/0.45);
  if (!base.ok()) return Fail(base.status());

  struct Profile {
    const char* name;
    double smoothing;  // larger = less predictable
  };
  const Profile profiles[] = {
      {"habitual reader", 0.0},
      {"average visitor", 0.3},
      {"erratic browser", 3.0},
  };

  PopulationAccountant population;
  std::vector<TemporalCorrelations> correlations;
  for (const Profile& p : profiles) {
    auto smoothed = LaplacianSmooth(*base, p.smoothing);
    if (!smoothed.ok()) return Fail(smoothed.status());
    auto both = TemporalCorrelations::Both(*smoothed, *smoothed);
    if (!both.ok()) return Fail(both.status());
    correlations.push_back(*both);
    population.AddUser(p.name, *both);
  }

  // Population-level schedule: every user's allocator must be satisfied,
  // so take the per-time minimum (Algorithms 2/3, Line 11).
  std::vector<std::vector<double>> schedules;
  for (const auto& corr : correlations) {
    auto alloc = BudgetAllocator::Create(corr, alpha);
    if (!alloc.ok()) return Fail(alloc.status());
    auto sched = alloc->QuantifiedSchedule(horizon);
    if (!sched.ok()) return Fail(sched.status());
    schedules.push_back(*sched);
  }
  auto schedule = MinSchedule(schedules);
  if (!schedule.ok()) return Fail(schedule.status());

  for (double eps : *schedule) {
    Status s = population.RecordRelease(eps);
    if (!s.ok()) return Fail(s);
  }

  std::printf("Released %zu private count vectors with budgets "
              "eps_1=%.4f, eps_mid=%.4f, eps_T=%.4f\n\n",
              horizon, schedule->front(), (*schedule)[horizon / 2],
              schedule->back());

  Table table({"user profile", "correlation degree", "max BPL", "max FPL",
               "max TPL", "guarantee"});
  for (std::size_t u = 0; u < population.num_users(); ++u) {
    const TplAccountant& acc = population.user(u);
    double max_bpl = 0.0, max_fpl = 0.0;
    for (double v : acc.BplSeries()) max_bpl = std::max(max_bpl, v);
    for (double v : acc.FplSeries()) max_fpl = std::max(max_fpl, v);
    table.AddRow();
    table.AddCell(population.user_name(u));
    table.AddNumber(
        CorrelationDegree(correlations[u].backward()), 3);
    table.AddNumber(max_bpl, 4);
    table.AddNumber(max_fpl, 4);
    table.AddNumber(acc.MaxTpl(), 4);
    table.AddCell(acc.MaxTpl() <= alpha + 1e-9 ? "within alpha"
                                               : "VIOLATED");
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
  std::printf("Population alpha (max over users) = %.4f <= %.1f\n\n",
              population.OverallAlpha(), alpha);

  // Demonstrate the actual private stream on simulated browsing.
  Rng rng(7);
  auto chain = MarkovChain::WithUniformInitial(*base);
  auto series = SimulatePopulation(chain, /*num_users=*/300, horizon, &rng);
  if (!series.ok()) return Fail(series.status());
  ReleaseEngine engine(std::make_unique<HistogramQuery>(), &rng);
  auto releases = engine.ReleaseSeries(*series, *schedule);
  if (!releases.ok()) return Fail(releases.status());
  std::printf("Sample release at t=1 (true vs noisy, first 4 pages):\n");
  for (std::size_t p = 0; p < 4; ++p) {
    std::printf("  page%zu: %5.0f  ->  %8.2f\n", p + 1,
                (*releases)[0].true_values[p],
                (*releases)[0].noisy_values[p]);
  }
  std::printf("\nEmpirical mean absolute error across the stream: %.2f\n",
              MeanAbsoluteError(*releases));
  return 0;
}
