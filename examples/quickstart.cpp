// Quickstart: the paper's Figure 1 / Example 1 scenario end to end.
//
// A trusted server releases private location counts at each time point
// with the Laplace mechanism. An adversary knowing the road network
// (temporal correlations) makes the effective leakage exceed the per-step
// epsilon; tcdp quantifies that leakage and re-allocates budgets so the
// temporal guarantee holds.
//
// Run: ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "common/table.h"
#include "core/dpt_mechanism.h"
#include "core/tpl_accountant.h"
#include "markov/reversal.h"
#include "workload/generators.h"

namespace {

int Fail(const tcdp::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace tcdp;

  // ---------------------------------------------------------------- 1 --
  std::printf("== 1. The Figure 1 scenario: 4 users, 5 locations, T=3 ==\n\n");
  auto scenario = MakeFigure1Scenario();
  if (!scenario.ok()) return Fail(scenario.status());

  Table counts({"t", "loc1", "loc2", "loc3", "loc4", "loc5"});
  for (std::size_t t = 1; t <= scenario->series.horizon(); ++t) {
    auto db = scenario->series.At(t);
    if (!db.ok()) return Fail(db.status());
    counts.AddRow();
    counts.AddInt(static_cast<long long>(t));
    for (double c : db->Histogram()) counts.AddNumber(c, 0);
  }
  std::printf("True counts (Figure 1(c)):\n%s\n",
              counts.ToAlignedString().c_str());

  // ---------------------------------------------------------------- 2 --
  std::printf("== 2. Naive eps-DP release and its temporal leakage ==\n\n");
  const double eps = 0.5;

  // The adversary derives the backward correlation from the road network
  // (forward correlation) by Bayesian inference (Section III-A).
  std::vector<double> uniform_prior(5, 0.2);
  auto backward =
      ReverseWithPrior(scenario->forward_correlation, uniform_prior);
  if (!backward.ok()) return Fail(backward.status());
  auto correlations =
      TemporalCorrelations::Both(*backward, scenario->forward_correlation);
  if (!correlations.ok()) return Fail(correlations.status());

  TplAccountant accountant(*correlations);
  for (std::size_t t = 0; t < scenario->series.horizon(); ++t) {
    Status s = accountant.RecordRelease(eps);
    if (!s.ok()) return Fail(s);
  }
  Table leakage({"t", "epsilon", "BPL", "FPL", "TPL"});
  for (std::size_t t = 1; t <= accountant.horizon(); ++t) {
    leakage.AddRow();
    leakage.AddInt(static_cast<long long>(t));
    leakage.AddNumber(eps, 3);
    leakage.AddNumber(*accountant.Bpl(t), 4);
    leakage.AddNumber(*accountant.Fpl(t), 4);
    leakage.AddNumber(*accountant.Tpl(t), 4);
  }
  std::printf(
      "Each release promises %.2f-DP, but against adversary_T the actual\n"
      "temporal privacy leakage (TPL) is larger at every time point:\n\n%s\n",
      eps, leakage.ToAlignedString().c_str());

  // ---------------------------------------------------------------- 3 --
  std::printf("== 3. Converting the mechanism to alpha-DP_T ==\n\n");
  const double alpha = 0.5;  // the guarantee we actually want
  auto mech =
      DptMechanism::Create(*correlations, alpha, DptStrategy::kQuantified);
  if (!mech.ok()) return Fail(mech.status());

  Rng rng(2017);
  auto result = mech->ReleaseSeries(scenario->series,
                                    std::make_unique<HistogramQuery>(), &rng);
  if (!result.ok()) return Fail(result.status());

  Table fixed({"t", "epsilon_t", "TPL_t", "noisy loc1..loc5"});
  for (std::size_t t = 1; t <= result->releases.size(); ++t) {
    const auto& r = result->releases[t - 1];
    fixed.AddRow();
    fixed.AddInt(static_cast<long long>(t));
    fixed.AddNumber(r.epsilon, 4);
    fixed.AddNumber(result->tpl_series[t - 1], 4);
    std::string noisy;
    for (double v : r.noisy_values) {
      if (!noisy.empty()) noisy += " ";
      noisy += FormatNumber(v, 1);
    }
    fixed.AddCell(noisy);
  }
  std::printf(
      "Algorithm 3 (quantification) re-allocates the budget so the audited\n"
      "TPL equals alpha = %.2f at every time point:\n\n%s\n",
      alpha, fixed.ToAlignedString().c_str());
  std::printf("max TPL = %.6f  (contract: <= %.2f)\n",
              result->max_tpl, alpha);
  std::printf("expected |Laplace noise| per count = %.3f\n\n",
              result->expected_abs_noise);

  std::printf("Quickstart finished: the naive release leaked up to %.3f;\n"
              "the converted mechanism is bounded at %.2f by construction.\n",
              accountant.MaxTpl(), alpha);
  return 0;
}
