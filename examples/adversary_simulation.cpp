// Operational adversary demo: runs the exact Bayesian attack of
// core/adversary_sim against real noisy releases and compares the
// realized log-likelihood-ratio leakage with the analytic BPL bound from
// Algorithm 1 — making "temporal privacy leakage" concrete.
//
// The analytic bound is a supremum over outputs; Monte-Carlo trials must
// stay below it, and under strong correlations the worst trial gets
// close.
//
// Run: ./build/examples/adversary_simulation

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "core/adversary_sim.h"
#include "core/tpl_accountant.h"
#include "markov/smoothing.h"

namespace {

int Fail(const tcdp::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace tcdp;
  const double eps = 0.5;          // per-step DP budget
  const std::size_t horizon = 12;  // releases observed by the adversary
  const int kTrials = 4000;

  // Full-histogram releases under the value-change neighboring relation
  // need the strict L1 sensitivity 2 to actually be eps-DP (each value
  // change moves one user across two bins).
  const double kSensitivity = 2.0;
  const double scale = kSensitivity / eps;

  struct Config {
    const char* name;
    StochasticMatrix backward;
  };
  const Config configs[] = {
      {"strong (sticky states)",
       StochasticMatrix::FromRows({{0.95, 0.05}, {0.10, 0.90}})},
      {"moderate", StochasticMatrix::FromRows({{0.75, 0.25}, {0.30, 0.70}})},
      {"none (uniform)", StochasticMatrix::Uniform(2)},
  };

  std::printf("Bayesian adversary vs analytic BPL bound\n");
  std::printf("eps=%.2f per release, %zu releases, %d Monte-Carlo trials\n\n",
              eps, horizon, kTrials);

  for (const Config& config : configs) {
    TplAccountant accountant(
        TemporalCorrelations::BackwardOnly(config.backward));
    Status s = accountant.RecordUniformReleases(eps, horizon);
    if (!s.ok()) return Fail(s);

    // Target user sits in state 0 the whole time among 20 others.
    const std::vector<double> others = {12.0, 8.0};
    Rng rng(1234);
    std::vector<double> worst(horizon, 0.0);
    std::vector<double> mean(horizon, 0.0);
    for (int trial = 0; trial < kTrials; ++trial) {
      BayesianAdversary adversary(config.backward);
      for (std::size_t t = 0; t < horizon; ++t) {
        const std::vector<double> noisy = {
            others[0] + 1.0 + rng.Laplace(scale),
            others[1] + rng.Laplace(scale)};
        auto densities =
            HistogramLogDensities(noisy, others, eps, kSensitivity);
        if (!densities.ok()) return Fail(densities.status());
        s = adversary.Observe(*densities);
        if (!s.ok()) return Fail(s);
        const double realized = adversary.RealizedLeakage();
        worst[t] = std::max(worst[t], realized);
        mean[t] += realized / kTrials;
      }
    }

    std::printf("-- correlation: %s --\n", config.name);
    Table table({"t", "analytic BPL", "worst realized", "mean realized",
                 "bound holds"});
    for (std::size_t t = 1; t <= horizon; ++t) {
      const double bound = *accountant.Bpl(t);
      table.AddRow();
      table.AddInt(static_cast<long long>(t));
      table.AddNumber(bound, 4);
      table.AddNumber(worst[t - 1], 4);
      table.AddNumber(mean[t - 1], 4);
      table.AddCell(worst[t - 1] <= bound + 1e-9 ? "yes" : "NO");
    }
    std::printf("%s\n", table.ToAlignedString().c_str());
  }

  std::printf(
      "Interpretation: with no correlation the leakage stays near the\n"
      "single-release level; with sticky states the adversary compounds\n"
      "evidence across time exactly as BPL predicts, and the analytic\n"
      "bound is never exceeded.\n");
  return 0;
}
