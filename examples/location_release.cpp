// Location-data pipeline: the workload the paper's introduction motivates
// (real-time traffic monitoring).
//
// 1. Simulate a population of vehicles on a ring road network.
// 2. The adversary learns forward/backward correlations from historical
//    trajectories by maximum-likelihood estimation (Section III-A).
// 3. Release per-location counts continuously under alpha-DP_T using both
//    allocation strategies (Algorithms 2 and 3) and compare leakage and
//    utility against the naive eps-DP release and the group-DP strawman.
//
// Run: ./build/examples/location_release [num_locations] [horizon]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/table.h"
#include "core/dpt_mechanism.h"
#include "core/tpl_accountant.h"
#include "markov/estimation.h"
#include "release/release_engine.h"
#include "workload/generators.h"

namespace {

int Fail(const tcdp::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcdp;
  const std::size_t num_locations =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const std::size_t horizon =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 24;
  const std::size_t num_users = 500;
  const double alpha = 1.0;

  std::printf("Location release: %zu locations, %zu users, T=%zu, "
              "alpha=%.1f\n\n",
              num_locations, num_users, horizon, alpha);

  // 1. Ground-truth mobility model and the private data stream.
  auto road = RingRoadNetwork(num_locations, /*stay_prob=*/0.45,
                              /*move_prob=*/0.22);
  if (!road.ok()) return Fail(road.status());
  auto chain = MarkovChain::WithUniformInitial(*road);
  Rng rng(42);
  auto series = SimulatePopulation(chain, num_users, horizon, &rng);
  if (!series.ok()) return Fail(series.status());

  // 2. Adversary knowledge: MLE on public historical trajectories.
  auto history = SimulateTrajectories(chain, /*num_users=*/2000,
                                      /*horizon=*/200, &rng);
  auto forward = EstimateForwardTransition(history, num_locations);
  auto backward = EstimateBackwardTransition(history, num_locations);
  if (!forward.ok()) return Fail(forward.status());
  if (!backward.ok()) return Fail(backward.status());
  std::printf("Adversary's MLE forward correlation vs ground truth: "
              "max |diff| = %.4f\n\n",
              forward->matrix().MaxAbsDiff(road->matrix()));

  auto correlations = TemporalCorrelations::Both(*backward, *forward);
  if (!correlations.ok()) return Fail(correlations.status());

  // 3. Release under each strategy and audit.
  struct Row {
    const char* name;
    DptStrategy strategy;
  };
  const Row rows[] = {
      {"Algorithm 2 (upper bound)", DptStrategy::kUpperBound},
      {"Algorithm 3 (quantified)", DptStrategy::kQuantified},
      {"group-DP alpha/T strawman", DptStrategy::kGroupDpBaseline},
  };

  Table table({"strategy", "eps_1", "eps_mid", "eps_T", "max TPL",
               "E|noise|", "empirical MAE"});
  for (const Row& row : rows) {
    auto mech = DptMechanism::Create(*correlations, alpha, row.strategy);
    if (!mech.ok()) return Fail(mech.status());
    auto result = mech->ReleaseSeries(
        *series, std::make_unique<HistogramQuery>(), &rng);
    if (!result.ok()) return Fail(result.status());
    table.AddRow();
    table.AddCell(row.name);
    table.AddNumber(result->epsilons.front(), 4);
    table.AddNumber(result->epsilons[horizon / 2], 4);
    table.AddNumber(result->epsilons.back(), 4);
    table.AddNumber(result->max_tpl, 4);
    table.AddNumber(result->expected_abs_noise, 2);
    table.AddNumber(MeanAbsoluteError(result->releases), 2);
  }

  // Naive baseline: spend alpha at every step (classical per-step DP).
  {
    TplAccountant acc(*correlations);
    for (std::size_t t = 0; t < horizon; ++t) {
      Status s = acc.RecordRelease(alpha);
      if (!s.ok()) return Fail(s);
    }
    table.AddRow();
    table.AddCell("naive eps=alpha each step");
    table.AddNumber(alpha, 4);
    table.AddNumber(alpha, 4);
    table.AddNumber(alpha, 4);
    table.AddNumber(acc.MaxTpl(), 4);
    table.AddNumber(1.0 / alpha, 2);
    table.AddCell("-");
  }

  std::printf("%s\n", table.ToAlignedString().c_str());
  std::printf(
      "Reading the table: both paper algorithms keep max TPL <= alpha;\n"
      "Algorithm 3 hits alpha exactly and adds the least noise for this\n"
      "finite horizon. The naive release violates the target, and the\n"
      "group-DP strawman over-perturbs by ignoring correlation strength.\n");
  return 0;
}
