// Personalized temporal privacy (paper Section III-D + reference [21]):
// every user picks their own alpha_i; the planner derives per-user budget
// schedules from their own correlations and releases through the PDP
// Sample mechanism, so cautious users are not over-protected into
// uselessness and liberal users are not under-protected.
//
// Run: ./build/examples/personalized_release

#include <cstdio>

#include "common/table.h"
#include "core/pdp_dpt.h"
#include "markov/smoothing.h"
#include "workload/generators.h"

namespace {

int Fail(const tcdp::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace tcdp;
  const std::size_t horizon = 16;

  // Five users, mixed predictability and mixed privacy preferences.
  struct UserConfig {
    const char* name;
    double smoothing;  // correlation strength (smaller = stronger)
    double alpha;      // personal TPL target
  };
  const UserConfig configs[] = {
      {"paranoid+predictable", 0.05, 0.4},
      {"paranoid+erratic", 2.00, 0.4},
      {"default", 0.50, 1.0},
      {"liberal+predictable", 0.05, 2.0},
      {"liberal+erratic", 2.00, 2.0},
  };

  std::vector<PdpUserSpec> specs;
  for (const auto& c : configs) {
    auto m = SmoothedCorrelationMatrix(4, c.smoothing);
    if (!m.ok()) return Fail(m.status());
    auto corr = TemporalCorrelations::Both(*m, *m);
    if (!corr.ok()) return Fail(corr.status());
    specs.push_back({c.name, *corr, c.alpha, DptStrategy::kQuantified});
  }
  auto planner = PersonalizedDptPlanner::Create(specs);
  if (!planner.ok()) return Fail(planner.status());

  // Everyone walks the same world; privacy needs differ.
  auto road = RingRoadNetwork(4, 0.6, 0.15);
  if (!road.ok()) return Fail(road.status());
  Rng rng(808);
  auto series = SimulatePopulation(MarkovChain::WithUniformInitial(*road),
                                   /*num_users=*/5, horizon, &rng);
  if (!series.ok()) return Fail(series.status());

  HistogramQuery query;
  auto result = planner->ReleaseSeries(*series, query, &rng);
  if (!result.ok()) return Fail(result.status());

  std::printf("Personalized alpha-DP_T release: %zu users, T=%zu\n\n",
              planner->num_users(), horizon);
  Table table({"user", "alpha target", "eps_1", "eps_mid", "audited max TPL",
               "mean inclusion prob"});
  for (std::size_t u = 0; u < planner->num_users(); ++u) {
    // Mean sampling probability across the stream: how often this user's
    // record actually entered the released statistics.
    double mean_inclusion = 0.0;
    for (std::size_t t = 0; t < horizon; ++t) {
      const double eps_u = result->per_user_epsilons[u][t];
      const double thr = result->thresholds[t];
      mean_inclusion +=
          eps_u >= thr ? 1.0 : std::expm1(eps_u) / std::expm1(thr);
    }
    mean_inclusion /= static_cast<double>(horizon);

    table.AddRow();
    table.AddCell(planner->user(u).name);
    table.AddNumber(planner->user(u).alpha, 2);
    table.AddNumber(result->per_user_epsilons[u][0], 4);
    table.AddNumber(result->per_user_epsilons[u][horizon / 2], 4);
    table.AddNumber(result->per_user_max_tpl[u], 4);
    table.AddNumber(mean_inclusion, 3);
  }
  std::printf("%s\n", table.ToAlignedString().c_str());

  std::printf(
      "Reading: each user's audited TPL equals their own alpha (the\n"
      "quantified allocator is exact), predictable users get smaller\n"
      "per-step budgets for the same alpha, and the Sample mechanism\n"
      "includes cautious users less often instead of drowning everyone\n"
      "in the strictest user's noise.\n");
  return 0;
}
