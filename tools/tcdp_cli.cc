// Entry point of the `tcdp` command-line tool; the logic lives in
// tools/cli.{h,cc} so tests can drive it in-process.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  tcdp::Status status = tcdp::cli::Run(args, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "tcdp: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
