#include "tools/cli.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <optional>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "bench/compare.h"
#include "bench/harness.h"
#include "bench/report.h"
#include "common/random.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/budget_allocation.h"
#include "core/supremum.h"
#include "core/tpl_accountant.h"
#include "kernels/kernels.h"
#include "markov/estimation.h"
#include "markov/higher_order.h"
#include "markov/io.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/diff.h"
#include "obs/dumper.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/process_metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "replication/follower.h"
#include "replication/log_stream.h"
#include "replication/router.h"
#include "server/sharded_service.h"
#include "service/fleet_engine.h"
#include "workload/generators.h"

namespace tcdp {
namespace cli {
namespace {

using Flags = std::map<std::string, std::string>;

StatusOr<Flags> ParseFlags(const std::vector<std::string>& args,
                           std::size_t start) {
  Flags flags;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected a --flag, got '" + arg + "'");
    }
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument("flag '" + arg + "' is missing a value");
    }
    flags[arg.substr(2)] = args[++i];
  }
  return flags;
}

StatusOr<double> FlagAsDouble(const Flags& flags, const std::string& name) {
  auto it = flags.find(name);
  if (it == flags.end()) {
    return Status::InvalidArgument("missing required flag --" + name);
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("flag --" + name +
                                   ": cannot parse number '" + it->second +
                                   "'");
  }
  return v;
}

StatusOr<std::size_t> FlagAsSize(const Flags& flags, const std::string& name,
                                 std::optional<std::size_t> fallback = {}) {
  auto it = flags.find(name);
  if (it == flags.end()) {
    if (fallback.has_value()) return *fallback;
    return Status::InvalidArgument("missing required flag --" + name);
  }
  TCDP_ASSIGN_OR_RETURN(double v, FlagAsDouble(flags, name));
  if (v < 0 || v != static_cast<double>(static_cast<std::size_t>(v))) {
    return Status::InvalidArgument("flag --" + name +
                                   " must be a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

/// Loads the correlation pair from --matrix (both directions) or the
/// explicit --backward / --forward flags.
StatusOr<TemporalCorrelations> LoadCorrelations(const Flags& flags) {
  const bool has_matrix = flags.count("matrix") > 0;
  const bool has_backward = flags.count("backward") > 0;
  const bool has_forward = flags.count("forward") > 0;
  if (has_matrix && (has_backward || has_forward)) {
    return Status::InvalidArgument(
        "--matrix is exclusive with --backward/--forward");
  }
  if (has_matrix) {
    TCDP_ASSIGN_OR_RETURN(auto m,
                          LoadStochasticMatrix(flags.at("matrix")));
    return TemporalCorrelations::Both(m, m);
  }
  if (has_backward && has_forward) {
    TCDP_ASSIGN_OR_RETURN(auto b,
                          LoadStochasticMatrix(flags.at("backward")));
    TCDP_ASSIGN_OR_RETURN(auto f,
                          LoadStochasticMatrix(flags.at("forward")));
    return TemporalCorrelations::Both(std::move(b), std::move(f));
  }
  if (has_backward) {
    TCDP_ASSIGN_OR_RETURN(auto b,
                          LoadStochasticMatrix(flags.at("backward")));
    return TemporalCorrelations::BackwardOnly(std::move(b));
  }
  if (has_forward) {
    TCDP_ASSIGN_OR_RETURN(auto f,
                          LoadStochasticMatrix(flags.at("forward")));
    return TemporalCorrelations::ForwardOnly(std::move(f));
  }
  return Status::InvalidArgument(
      "provide --matrix, or --backward and/or --forward");
}

StatusOr<std::vector<double>> ParseScheduleFlag(const std::string& text) {
  std::vector<double> schedule;
  std::string field;
  auto flush = [&]() -> Status {
    if (field.empty()) return Status::OK();
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("--schedule: bad number '" + field +
                                     "'");
    }
    schedule.push_back(v);
    field.clear();
    return Status::OK();
  };
  for (char ch : text) {
    if (ch == ',' || ch == ' ') {
      TCDP_RETURN_IF_ERROR(flush());
    } else {
      field.push_back(ch);
    }
  }
  TCDP_RETURN_IF_ERROR(flush());
  if (schedule.empty()) {
    return Status::InvalidArgument("--schedule: no values");
  }
  return schedule;
}

Status CmdQuantify(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(auto corr, LoadCorrelations(flags));
  std::vector<double> schedule;
  if (flags.count("schedule") > 0) {
    TCDP_ASSIGN_OR_RETURN(schedule, ParseScheduleFlag(flags.at("schedule")));
  } else {
    TCDP_ASSIGN_OR_RETURN(double eps, FlagAsDouble(flags, "epsilon"));
    TCDP_ASSIGN_OR_RETURN(std::size_t horizon,
                          FlagAsSize(flags, "horizon"));
    if (horizon == 0) {
      return Status::InvalidArgument("--horizon must be >= 1");
    }
    schedule.assign(horizon, eps);
  }
  TplAccountant acc(corr);
  for (double eps : schedule) {
    TCDP_RETURN_IF_ERROR(acc.RecordRelease(eps));
  }
  Table table({"t", "epsilon", "BPL", "FPL", "TPL"});
  for (std::size_t t = 1; t <= acc.horizon(); ++t) {
    table.AddRow();
    table.AddInt(static_cast<long long>(t));
    table.AddNumber(schedule[t - 1], 6);
    TCDP_ASSIGN_OR_RETURN(double bpl, acc.Bpl(t));
    TCDP_ASSIGN_OR_RETURN(double fpl, acc.Fpl(t));
    TCDP_ASSIGN_OR_RETURN(double tpl, acc.Tpl(t));
    table.AddNumber(bpl, 6);
    table.AddNumber(fpl, 6);
    table.AddNumber(tpl, 6);
  }
  out << table.ToAlignedString();
  out << "max TPL (event-level alpha): " << FormatNumber(acc.MaxTpl(), 6)
      << "\nuser-level TPL (Corollary 1): "
      << FormatNumber(acc.UserLevelTpl(), 6) << "\n";
  return Status::OK();
}

Status CmdSupremum(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(auto corr, LoadCorrelations(flags));
  TCDP_ASSIGN_OR_RETURN(double eps, FlagAsDouble(flags, "epsilon"));
  auto report = [&](const char* label,
                    const StochasticMatrix& m) -> Status {
    TemporalLossFunction loss(m);
    TCDP_ASSIGN_OR_RETURN(auto sup, ComputeSupremum(loss, eps));
    out << label << ": ";
    if (sup.exists) {
      out << "supremum = " << FormatNumber(sup.value, 6)
          << "  (maximizing pair q=" << FormatNumber(sup.q_sum, 4)
          << ", d=" << FormatNumber(sup.d_sum, 4) << ")\n";
    } else {
      out << "supremum does not exist (leakage grows without bound)\n";
    }
    return Status::OK();
  };
  if (corr.has_backward()) {
    TCDP_RETURN_IF_ERROR(report("BPL", corr.backward()));
  }
  if (corr.has_forward()) {
    TCDP_RETURN_IF_ERROR(report("FPL", corr.forward()));
  }
  return Status::OK();
}

Status CmdAllocate(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(auto corr, LoadCorrelations(flags));
  TCDP_ASSIGN_OR_RETURN(double alpha, FlagAsDouble(flags, "alpha"));
  TCDP_ASSIGN_OR_RETURN(std::size_t horizon, FlagAsSize(flags, "horizon"));
  std::string strategy = "quantified";
  if (flags.count("strategy") > 0) strategy = flags.at("strategy");

  TCDP_ASSIGN_OR_RETURN(auto alloc, BudgetAllocator::Create(corr, alpha));
  std::vector<double> schedule;
  if (strategy == "quantified") {
    TCDP_ASSIGN_OR_RETURN(schedule, alloc.QuantifiedSchedule(horizon));
  } else if (strategy == "upper-bound") {
    schedule = alloc.UpperBoundSchedule(horizon);
  } else if (strategy == "group") {
    schedule = GroupDpSchedule(alpha, horizon);
  } else {
    return Status::InvalidArgument(
        "--strategy must be quantified, upper-bound or group");
  }

  out << "strategy: " << strategy
      << "\nbalanced split: alpha_b=" << FormatNumber(alloc.budget().alpha_b, 6)
      << " alpha_f=" << FormatNumber(alloc.budget().alpha_f, 6)
      << " eps*=" << FormatNumber(alloc.budget().eps_steady, 6) << "\n";

  TplAccountant acc(corr);
  Table table({"t", "epsilon_t", "TPL_t"});
  for (double eps : schedule) {
    TCDP_RETURN_IF_ERROR(acc.RecordRelease(eps));
  }
  for (std::size_t t = 1; t <= horizon; ++t) {
    table.AddRow();
    table.AddInt(static_cast<long long>(t));
    table.AddNumber(schedule[t - 1], 6);
    TCDP_ASSIGN_OR_RETURN(double tpl, acc.Tpl(t));
    table.AddNumber(tpl, 6);
  }
  out << table.ToAlignedString();
  out << "audited max TPL: " << FormatNumber(acc.MaxTpl(), 6)
      << " (target alpha " << FormatNumber(alpha, 6) << ")\n";
  return Status::OK();
}

Status CmdEstimate(const Flags& flags, std::ostream& out) {
  auto it = flags.find("trajectories");
  if (it == flags.end()) {
    return Status::InvalidArgument("missing required flag --trajectories");
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t states,
                        FlagAsSize(flags, "states", std::size_t{0}));
  TCDP_ASSIGN_OR_RETURN(auto trajectories,
                        LoadTrajectories(it->second, states));
  if (states == 0) {
    for (const auto& traj : trajectories) {
      for (std::size_t s : traj) states = std::max(states, s + 1);
    }
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t order,
                        FlagAsSize(flags, "order", std::size_t{1}));
  EstimationOptions options;
  if (flags.count("smoothing") > 0) {
    TCDP_ASSIGN_OR_RETURN(options.additive_smoothing,
                          FlagAsDouble(flags, "smoothing"));
  }

  StochasticMatrix forward;
  if (order == 1) {
    TCDP_ASSIGN_OR_RETURN(
        forward, EstimateForwardTransition(trajectories, states, options));
  } else {
    TCDP_ASSIGN_OR_RETURN(
        auto chain, HigherOrderChain::Estimate(trajectories, states, order,
                                               options.additive_smoothing));
    forward = chain.EmbedAsFirstOrder();
    out << "# order-" << order << " model embedded over "
        << forward.size() << " histories\n";
  }
  if (flags.count("out") > 0) {
    TCDP_RETURN_IF_ERROR(SaveStochasticMatrix(forward, flags.at("out")));
    out << "forward matrix written to " << flags.at("out") << "\n";
  } else {
    out << SerializeStochasticMatrix(forward);
  }
  if (flags.count("backward-out") > 0) {
    TCDP_ASSIGN_OR_RETURN(
        auto backward,
        EstimateBackwardTransition(trajectories, states, options));
    TCDP_RETURN_IF_ERROR(
        SaveStochasticMatrix(backward, flags.at("backward-out")));
    out << "backward matrix written to " << flags.at("backward-out") << "\n";
  }
  return Status::OK();
}

Status CmdFleet(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(std::size_t users,
                        FlagAsSize(flags, "users", std::size_t{1000}));
  TCDP_ASSIGN_OR_RETURN(std::size_t horizon,
                        FlagAsSize(flags, "horizon", std::size_t{20}));
  TCDP_ASSIGN_OR_RETURN(std::size_t pages,
                        FlagAsSize(flags, "pages", std::size_t{16}));
  TCDP_ASSIGN_OR_RETURN(std::size_t groups,
                        FlagAsSize(flags, "groups", std::size_t{4}));
  TCDP_ASSIGN_OR_RETURN(std::size_t threads,
                        FlagAsSize(flags, "threads", std::size_t{0}));
  TCDP_ASSIGN_OR_RETURN(std::size_t seed,
                        FlagAsSize(flags, "seed", std::size_t{42}));
  double epsilon = 0.1;
  if (flags.count("epsilon") > 0) {
    TCDP_ASSIGN_OR_RETURN(epsilon, FlagAsDouble(flags, "epsilon"));
  }
  double sparsity = 0.0;
  if (flags.count("sparsity") > 0) {
    TCDP_ASSIGN_OR_RETURN(sparsity, FlagAsDouble(flags, "sparsity"));
    if (!(sparsity >= 0.0 && sparsity < 1.0)) {
      return Status::InvalidArgument("--sparsity must be in [0, 1)");
    }
  }
  if (users == 0 || horizon == 0 || groups == 0) {
    return Status::InvalidArgument(
        "--users, --horizon and --groups must be >= 1");
  }
  bool use_cache = true;
  if (flags.count("cache") > 0) {
    const std::string& v = flags.at("cache");
    if (v == "off") {
      use_cache = false;
    } else if (v != "on") {
      return Status::InvalidArgument("--cache must be on or off");
    }
  }
  const bool json = flags.count("json") > 0;
  if (json && flags.at("json") != "-") {
    return Status::InvalidArgument("--json only supports '-' (stdout)");
  }

  // Synthetic multi-user clickstream fleet: `groups` browsing profiles
  // (increasingly home-page-bound), users assigned round-robin.
  std::vector<TemporalCorrelations> profiles;
  for (std::size_t g = 0; g < groups; ++g) {
    // Sweep home_prob over [0.15, 0.45); with link_prob = 0.5 the row
    // budget home_prob + link_prob stays within 1.
    const double home_prob =
        0.15 + 0.3 * static_cast<double>(g) / static_cast<double>(groups);
    TCDP_ASSIGN_OR_RETURN(auto matrix, ClickstreamModel(pages, home_prob));
    TCDP_ASSIGN_OR_RETURN(auto corr,
                          TemporalCorrelations::Both(matrix, matrix));
    profiles.push_back(std::move(corr));
  }

  FleetEngineOptions options;
  options.num_threads = threads;
  options.share_loss_cache = use_cache;
  FleetEngine engine(options);
  for (std::size_t u = 0; u < users; ++u) {
    engine.AddUser("user-" + std::to_string(u), profiles[u % groups]);
  }
  if (sparsity == 0.0) {
    TCDP_RETURN_IF_ERROR(
        engine.RecordReleases(std::vector<double>(horizon, epsilon)));
  } else {
    // Heterogeneous schedule: each user participates in each release
    // with probability 1 - sparsity (seeded, reproducible).
    Rng rng(static_cast<std::uint64_t>(seed));
    std::vector<std::size_t> participants;
    for (std::size_t t = 0; t < horizon; ++t) {
      participants.clear();
      for (std::size_t u = 0; u < users; ++u) {
        if (rng.Uniform() >= sparsity) participants.push_back(u);
      }
      TCDP_RETURN_IF_ERROR(engine.RecordRelease(epsilon, participants));
    }
  }

  // One parallel fleet sweep yields both aggregates.
  const auto alphas = engine.PersonalizedAlphas();
  double min_alpha = alphas.front();
  double max_alpha = alphas.front();
  for (double a : alphas) {
    min_alpha = std::min(min_alpha, a);
    max_alpha = std::max(max_alpha, a);
  }

  const auto stats = engine.stats();
  const auto cache = engine.cache_stats();
  if (json) {
    // Machine-readable single-object schema, mirrored by the fleet CLI
    // smoke test (the bench harness emits the unified BENCH.json).
    out.precision(17);
    out << "{\n"
        << "  \"users\": " << users << ",\n"
        << "  \"horizon\": " << horizon << ",\n"
        << "  \"groups\": " << groups << ",\n"
        << "  \"cohorts\": " << engine.num_cohorts() << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"sparsity\": " << sparsity << ",\n"
        << "  \"epsilon\": " << epsilon << ",\n"
        << "  \"cache\": " << (use_cache ? "true" : "false") << ",\n"
        << "  \"user_releases\": " << stats.user_releases << ",\n"
        << "  \"record_seconds\": " << stats.record_seconds << ",\n"
        << "  \"user_releases_per_sec\": " << stats.UserReleasesPerSecond()
        << ",\n"
        << "  \"overall_alpha\": " << max_alpha << ",\n"
        << "  \"min_personalized_alpha\": " << min_alpha << ",\n"
        << "  \"cache_hits\": " << cache.hits << ",\n"
        << "  \"cache_misses\": " << cache.misses << ",\n"
        << "  \"distinct_matrices\": " << cache.distinct_matrices << "\n"
        << "}\n";
    return Status::OK();
  }
  Table table({"metric", "value"});
  auto add = [&table](const std::string& name, const std::string& value) {
    table.AddRow();
    table.AddCell(name);
    table.AddCell(value);
  };
  add("users", std::to_string(users));
  add("horizon", std::to_string(horizon));
  add("correlation groups", std::to_string(groups));
  add("cohorts", std::to_string(engine.num_cohorts()));
  add("sparsity", FormatNumber(sparsity, 2));
  add("user-steps driven (incl. skips)", std::to_string(stats.user_releases));
  add("record wall time (s)", FormatNumber(stats.record_seconds, 4));
  add("releases/sec", FormatNumber(stats.UserReleasesPerSecond(), 0));
  add("overall alpha (max TPL)", FormatNumber(max_alpha, 6));
  add("min personalized alpha", FormatNumber(min_alpha, 6));
  if (use_cache) {
    add("loss cache hits", std::to_string(cache.hits));
    add("loss cache misses", std::to_string(cache.misses));
    add("loss cache hit rate", FormatNumber(cache.HitRate(), 4));
    add("distinct matrices", std::to_string(cache.distinct_matrices));
  } else {
    add("loss cache", "off");
  }
  out << table.ToAlignedString();
  return Status::OK();
}

/// Minimal JSON string escaping for values we interpolate (user names,
/// paths): quotes, backslashes, and control characters.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

/// Splits a comma-separated field list (no empty entries).
std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char ch : text) {
    if (ch == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

struct ServeOutcome {
  std::uint64_t script_lines = 0;
  double elapsed_seconds = 0.0;
  std::vector<server::UserReport> queries;
};

/// Drives one scripted request stream into \p backend — either the
/// in-process ShardedReleaseService or a NetClient; both expose the
/// same verbs, and sharing one parser is what keeps the two replay
/// paths' grammar identical (the ISSUE 4 bitwise-comparison contract).
/// Grammar (one command per line, '#' comments):
///   join <name> <pages> <home_prob>
///   release <eps> all | release <eps> <name[,name...]>
///   flush | snapshot | compact | query <name>
template <typename Backend>
Status RunScript(std::istream& script, Backend* backend,
                 ServeOutcome* outcome) {
  std::string line;
  std::size_t line_no = 0;
  WallTimer timer;
  while (std::getline(script, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string command;
    if (!(fields >> command) || command[0] == '#') continue;
    ++outcome->script_lines;
    auto syntax_error = [&](const std::string& why) {
      return Status::InvalidArgument("script line " +
                                     std::to_string(line_no) + ": " + why);
    };
    if (command == "join") {
      std::string name;
      std::size_t pages = 0;
      double home_prob = 0.0;
      if (!(fields >> name >> pages >> home_prob)) {
        return syntax_error("expected 'join <name> <pages> <home_prob>'");
      }
      TCDP_ASSIGN_OR_RETURN(auto matrix, ClickstreamModel(pages, home_prob));
      TCDP_ASSIGN_OR_RETURN(auto corr,
                            TemporalCorrelations::Both(matrix, matrix));
      TCDP_RETURN_IF_ERROR(backend->Join(name, std::move(corr)));
    } else if (command == "release") {
      double eps = 0.0;
      std::string who;
      if (!(fields >> eps >> who)) {
        return syntax_error("expected 'release <eps> all|<names>'");
      }
      if (who == "all") {
        TCDP_RETURN_IF_ERROR(backend->ReleaseAll(eps));
      } else {
        for (const std::string& name : SplitCommas(who)) {
          TCDP_RETURN_IF_ERROR(backend->Release(name, eps));
        }
      }
    } else if (command == "flush") {
      TCDP_RETURN_IF_ERROR(backend->Flush());
    } else if (command == "snapshot") {
      TCDP_RETURN_IF_ERROR(backend->Snapshot());
    } else if (command == "compact") {
      TCDP_RETURN_IF_ERROR(backend->Compact());
    } else if (command == "query") {
      std::string name;
      if (!(fields >> name)) return syntax_error("expected 'query <name>'");
      TCDP_ASSIGN_OR_RETURN(auto report, backend->Query(name));
      outcome->queries.push_back(std::move(report));
    } else {
      return syntax_error("unknown command '" + command + "'");
    }
  }
  TCDP_RETURN_IF_ERROR(backend->Flush());
  outcome->elapsed_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

void PrintServiceJson(server::ShardedReleaseService* service,
                      const ServeOutcome& outcome, double overall_alpha,
                      double min_alpha, const net::NetServerStats* net,
                      const replication::LogStreamStats* repl,
                      std::ostream& out) {
  const auto& stats = service->stats();
  const std::uint64_t requests =
      stats.join_requests + stats.release_requests;
  out.precision(17);
  out << "{\n"
      << "  \"shards\": " << service->num_shards() << ",\n"
      << "  \"users\": " << service->num_users() << ",\n"
      << "  \"horizon\": " << service->horizon() << ",\n"
      << "  \"join_requests\": " << stats.join_requests << ",\n"
      << "  \"release_requests\": " << stats.release_requests << ",\n"
      << "  \"ticks\": " << stats.ticks << ",\n"
      << "  \"global_releases\": " << stats.global_releases << ",\n"
      << "  \"elapsed_seconds\": " << outcome.elapsed_seconds << ",\n"
      << "  \"requests_per_sec\": "
      << (outcome.elapsed_seconds > 0.0
              ? static_cast<double>(requests) / outcome.elapsed_seconds
              : 0.0)
      << ",\n"
      << "  \"overall_alpha\": " << overall_alpha << ",\n"
      << "  \"min_personalized_alpha\": " << min_alpha << ",\n"
      << "  \"cache\": {\"hits\": " << stats.cache_hits
      << ", \"misses\": " << stats.cache_misses
      << ", \"entries\": " << stats.cache_entries
      << ", \"distinct_matrices\": " << stats.cache_distinct_matrices
      << "},\n"
      << "  \"shard_stats\": [";
  for (std::size_t s = 0; s < service->num_shards(); ++s) {
    const server::ShardStats shard = service->shard_stats(s);
    out << (s == 0 ? "\n" : ",\n") << "    {\"shard\": " << s
        << ", \"users\": " << shard.users
        << ", \"horizon\": " << shard.horizon
        << ", \"wal_records\": " << shard.wal_records
        << ", \"wal_physical_records\": " << shard.wal_physical_records
        << ", \"wal_bytes\": " << shard.wal_bytes
        << ", \"snapshots\": " << shard.snapshots_written
        << ", \"compactions\": " << shard.compactions
        << ", \"replayed_records\": " << shard.replayed_records
        << ", \"restored_from_snapshot\": "
        << (shard.restored_from_snapshot ? "true" : "false")
        << ", \"queue_depth\": " << shard.queue_depth
        << ", \"queue_depth_hwm\": " << shard.queue_depth_hwm
        << ", \"enqueue_blocks\": " << shard.enqueue_blocks << "}";
  }
  out << "\n  ],";
  if (net != nullptr) {
    out << "\n  \"net\": {\"connections_accepted\": "
        << net->connections_accepted
        << ", \"accept_failures\": " << net->accept_failures
        << ", \"connections_dropped\": " << net->connections_dropped
        << ", \"requests\": " << net->requests
        << ", \"responses\": " << net->responses
        << ", \"bytes_in\": " << net->bytes_in
        << ", \"bytes_out\": " << net->bytes_out
        << ", \"backpressure_pauses\": " << net->backpressure_pauses
        << "},";
  }
  if (repl != nullptr) {
    out << "\n  \"replication\": {\"role\": \"primary\""
        << ", \"followers\": " << repl->followers
        << ", \"primary_records\": " << repl->primary_records
        << ", \"subscribes\": " << repl->subscribes
        << ", \"batches_sent\": " << repl->batches_sent
        << ", \"records_sent\": " << repl->records_sent
        << ", \"bytes_sent\": " << repl->bytes_sent
        << ", \"acks_received\": " << repl->acks_received
        << ", \"divergences\": " << repl->divergences
        << ", \"min_acked_release_horizon\": "
        << repl->min_acked_release_horizon
        << ", \"max_lag_records\": " << repl->max_lag_records << "},";
  }
  out << "\n  \"queries\": [";
  for (std::size_t q = 0; q < outcome.queries.size(); ++q) {
    const server::UserReport& report = outcome.queries[q];
    out << (q == 0 ? "\n" : ",\n") << "    {\"name\": \""
        << JsonEscape(report.name) << "\", \"shard\": " << report.shard
        << ", \"horizon\": " << report.horizon
        << ", \"max_tpl\": " << report.max_tpl
        << ", \"user_level_tpl\": " << report.user_level_tpl << "}";
  }
  out << "\n  ]\n}\n";
}

Status CmdServe(const Flags& flags, std::ostream& out) {
  const bool listen = flags.count("listen") > 0;
  const auto script_it = flags.find("script");
  if (script_it == flags.end() && !listen) {
    return Status::InvalidArgument(
        "missing required flag --script (or --listen)");
  }
  server::ShardedServiceOptions options;
  TCDP_ASSIGN_OR_RETURN(options.num_shards,
                        FlagAsSize(flags, "shards", std::size_t{2}));
  TCDP_ASSIGN_OR_RETURN(options.batch_window,
                        FlagAsSize(flags, "batch-window", std::size_t{16}));
  TCDP_ASSIGN_OR_RETURN(options.snapshot_every,
                        FlagAsSize(flags, "snapshot-every", std::size_t{0}));
  TCDP_ASSIGN_OR_RETURN(options.sync_every,
                        FlagAsSize(flags, "sync-every", std::size_t{0}));
  TCDP_ASSIGN_OR_RETURN(
      options.threads_per_shard,
      FlagAsSize(flags, "threads-per-shard", std::size_t{1}));
  if (flags.count("kernels") > 0) {
    TCDP_ASSIGN_OR_RETURN(options.kernel_mode,
                          kernels::ParseKernelMode(flags.at("kernels")));
  }
  if (options.num_shards == 0 || options.batch_window == 0) {
    return Status::InvalidArgument(
        "--shards and --batch-window must be >= 1");
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t auto_compact,
                        FlagAsSize(flags, "auto-compact", std::size_t{0}));
  options.compaction.after_snapshot = auto_compact != 0;
  TCDP_ASSIGN_OR_RETURN(options.compaction.max_wal_bytes,
                        FlagAsSize(flags, "compact-bytes", std::size_t{0}));
  TCDP_ASSIGN_OR_RETURN(
      options.compaction.max_wal_records,
      FlagAsSize(flags, "compact-records", std::size_t{0}));
  std::string log_dir;
  if (flags.count("log-dir") > 0) log_dir = flags.at("log-dir");
  if (log_dir.empty() &&
      (options.compaction.after_snapshot ||
       options.compaction.max_wal_bytes > 0 ||
       options.compaction.max_wal_records > 0)) {
    return Status::InvalidArgument(
        "--auto-compact/--compact-bytes/--compact-records require "
        "--log-dir (compaction needs a durable WAL)");
  }
  const bool json = flags.count("json") > 0;
  if (json && flags.at("json") != "-") {
    return Status::InvalidArgument("--json only supports '-' (stdout)");
  }
  const bool repl_listen = flags.count("repl-listen") > 0;
  if (repl_listen && (log_dir.empty() || !listen)) {
    return Status::InvalidArgument(
        "--repl-listen requires --log-dir (the WAL is the stream) and "
        "--listen (a primary serves clients and followers together)");
  }

  // Observability knobs. --no-metrics 1 turns the registry's write
  // path off process-wide (the bench A/B switch); --trace-out arms the
  // span ring, dumped on kTraceDump requests and at exit.
  TCDP_ASSIGN_OR_RETURN(std::size_t no_metrics,
                        FlagAsSize(flags, "no-metrics", std::size_t{0}));
  obs::SetMetricsEnabled(no_metrics == 0);
  std::string metrics_json_path;
  std::string metrics_prom_path;
  if (flags.count("metrics-json") > 0) {
    metrics_json_path = flags.at("metrics-json");
  }
  if (flags.count("metrics-prom") > 0) {
    metrics_prom_path = flags.at("metrics-prom");
  }
  TCDP_ASSIGN_OR_RETURN(
      std::size_t metrics_interval_ms,
      FlagAsSize(flags, "metrics-interval-ms", std::size_t{1000}));
  std::string trace_out;
  if (flags.count("trace-out") > 0) trace_out = flags.at("trace-out");
  TCDP_ASSIGN_OR_RETURN(std::size_t trace_capacity,
                        FlagAsSize(flags, "trace-capacity",
                                   std::size_t{8192}));
  if (!trace_out.empty()) {
    obs::DefaultTrace().Start(trace_capacity);
  }
  auto dump_trace = [&trace_out]() -> StatusOr<std::string> {
    if (trace_out.empty()) {
      return Status::FailedPrecondition(
          "server has no trace output configured (start it with "
          "--trace-out)");
    }
    TCDP_RETURN_IF_ERROR(
        obs::WriteFileAtomic(trace_out, obs::DefaultTrace().DumpJson()));
    return trace_out;
  };

  // Active diagnostics: the watchdog scans every heartbeat (shard
  // workers, net I/O loop, metrics dumper) and, with --diag-dir set,
  // stalls and crashes leave a flight-recorder bundle behind.
  TCDP_ASSIGN_OR_RETURN(
      std::size_t watchdog_interval_ms,
      FlagAsSize(flags, "watchdog-interval-ms", std::size_t{1000}));
  TCDP_ASSIGN_OR_RETURN(std::size_t stall_ticks,
                        FlagAsSize(flags, "stall-ticks", std::size_t{3}));
  std::string diag_dir;
  if (flags.count("diag-dir") > 0) diag_dir = flags.at("diag-dir");
  TCDP_ASSIGN_OR_RETURN(std::size_t diag_keep,
                        FlagAsSize(flags, "diag-keep", std::size_t{8}));

  TCDP_ASSIGN_OR_RETURN(auto service,
                        server::ShardedReleaseService::Create(log_dir,
                                                              options));

  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!diag_dir.empty()) {
    obs::FlightRecorderOptions recorder_options;
    recorder_options.dir = diag_dir;
    recorder_options.keep = diag_keep;
    recorder_options.state_text = [raw = service.get()] {
      return raw->DiagnosticStateText();
    };
    recorder = std::make_unique<obs::FlightRecorder>(recorder_options);
    TCDP_RETURN_IF_ERROR(recorder->InstallCrashHandler());
  }
  obs::WatchdogOptions watchdog_options;
  watchdog_options.interval_ms = watchdog_interval_ms;
  watchdog_options.stall_ticks = stall_ticks;
  watchdog_options.flight_recorder = recorder.get();
  obs::Watchdog watchdog(watchdog_options);
  if (watchdog_interval_ms > 0) {
    TCDP_RETURN_IF_ERROR(watchdog.Start());
  }

  ServeOutcome outcome;
  if (script_it != flags.end()) {
    std::ifstream script(script_it->second);
    if (!script) {
      return Status::NotFound("cannot open script " + script_it->second);
    }
    TCDP_RETURN_IF_ERROR(RunScript(script, service.get(), &outcome));
  }
  // Create/Recover and the preload are done: the server is ready.
  watchdog.SetReady(true);

  net::NetServerStats net_stats;
  replication::LogStreamStats repl_stats;
  bool served = false;
  bool repl_served = false;
  if (listen) {
    TCDP_ASSIGN_OR_RETURN(std::size_t port, FlagAsSize(flags, "listen"));
    if (port > 65535) {
      return Status::InvalidArgument("--listen must be a port (0-65535)");
    }
    net::NetServerOptions net_options;
    net_options.port = static_cast<std::uint16_t>(port);
    if (flags.count("host") > 0) net_options.host = flags.at("host");
    if (!trace_out.empty()) net_options.on_trace_dump = dump_trace;
    net_options.watchdog = &watchdog;
#if defined(__unix__) || defined(__APPLE__)
    if (!log_dir.empty()) {
      // Extra liveness probe: the WAL directory must stay writable, or
      // every durable request is doomed even if the threads look fine.
      net_options.health_probe = [log_dir]() -> Status {
        if (::access(log_dir.c_str(), W_OK) != 0) {
          return Status::Internal("WAL directory not writable: " + log_dir);
        }
        return Status::OK();
      };
    }
#endif
    TCDP_ASSIGN_OR_RETURN(auto net_server,
                          net::NetServer::Listen(service.get(),
                                                 net_options));
    if (flags.count("port-file") > 0) {
      // Written (and closed) before Serve blocks: pollers treat the
      // file's presence as "the port is bound".
      std::ofstream port_file(flags.at("port-file"));
      port_file << net_server->port() << "\n";
      if (!port_file) {
        return Status::Internal("cannot write " + flags.at("port-file"));
      }
    }
    // A primary tails its own shard WALs and streams them to
    // subscribed followers on a second port (docs/REPLICATION.md). The
    // stream server is a pure file reader, so it rides alongside the
    // service without touching the request path.
    std::unique_ptr<replication::LogStreamServer> repl_server;
    std::thread repl_thread;
    Status repl_status;
    if (repl_listen) {
      TCDP_ASSIGN_OR_RETURN(std::size_t repl_port,
                            FlagAsSize(flags, "repl-listen"));
      if (repl_port > 65535) {
        return Status::InvalidArgument(
            "--repl-listen must be a port (0-65535)");
      }
      replication::LogStreamOptions repl_options;
      repl_options.log_dir = log_dir;
      repl_options.host = net_options.host;
      repl_options.port = static_cast<std::uint16_t>(repl_port);
      TCDP_ASSIGN_OR_RETURN(
          repl_server, replication::LogStreamServer::Listen(repl_options));
      if (flags.count("repl-port-file") > 0) {
        std::ofstream repl_port_file(flags.at("repl-port-file"));
        repl_port_file << repl_server->port() << "\n";
        if (!repl_port_file) {
          return Status::Internal("cannot write " +
                                  flags.at("repl-port-file"));
        }
      }
      if (!json) {
        out << "replication stream on " << net_options.host << ":"
            << repl_server->port() << "\n";
      }
      repl_thread = std::thread(
          [&repl_server, &repl_status] { repl_status = repl_server->Serve(); });
    }
    if (!json) {
      out << "listening on " << net_options.host << ":"
          << net_server->port() << "\n";
      out.flush();
    }
    WallTimer timer;
    Status serve_status;
    {
      obs::MetricsDumper dumper(metrics_json_path, metrics_prom_path,
                                metrics_interval_ms);
      serve_status = net_server->Serve();
    }
    if (repl_server != nullptr) {
      // Graceful drain: flush whatever the last client batch left in
      // the micro-batch queues, then give connected followers a
      // bounded window to pull and ack it before the stream closes.
      if (serve_status.ok()) {
        const Status flushed = service->Flush();
        if (!flushed.ok()) serve_status = flushed;
        std::uint64_t on_disk = 0;
        for (std::size_t s = 0; s < service->num_shards(); ++s) {
          on_disk += service->shard_stats(s).wal_physical_records;
        }
        for (int i = 0; serve_status.ok() && i < 100; ++i) {
          const replication::LogStreamStats drain = repl_server->stats();
          const bool tailer_caught_up = drain.primary_records >= on_disk;
          if (tailer_caught_up &&
              (drain.followers == 0 || drain.max_lag_records == 0)) {
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      // Snapshot before Stop: Stop drops the connections, and the
      // final refresh would report an empty follower set.
      repl_stats = repl_server->stats();
      repl_server->Stop();
      if (repl_thread.joinable()) repl_thread.join();
      repl_served = true;
    }
    TCDP_RETURN_IF_ERROR(serve_status);
    TCDP_RETURN_IF_ERROR(repl_status);
    outcome.elapsed_seconds += timer.ElapsedSeconds();
    net_stats = net_server->stats();
    served = true;
    TCDP_RETURN_IF_ERROR(service->Flush());
  }
  // Final publication so a script-only run (no --listen) still leaves
  // dumps behind, and a served run's files cover the whole lifetime.
  if (!metrics_json_path.empty() || !metrics_prom_path.empty()) {
    TCDP_RETURN_IF_ERROR(
        obs::DumpMetricsFiles(metrics_json_path, metrics_prom_path));
  }
  if (!trace_out.empty()) {
    TCDP_RETURN_IF_ERROR(dump_trace().status());
  }
  TCDP_ASSIGN_OR_RETURN(auto alphas, service->PersonalizedAlphas());
  double overall = 0.0;
  double min_alpha = alphas.empty() ? 0.0 : alphas.front().second;
  for (const auto& [name, alpha] : alphas) {
    (void)name;
    overall = std::max(overall, alpha);
    min_alpha = std::min(min_alpha, alpha);
  }
  if (json) {
    PrintServiceJson(service.get(), outcome, overall, min_alpha,
                     served ? &net_stats : nullptr,
                     repl_served ? &repl_stats : nullptr, out);
  } else {
    Table table({"metric", "value"});
    auto add = [&table](const std::string& name, const std::string& value) {
      table.AddRow();
      table.AddCell(name);
      table.AddCell(value);
    };
    const auto& stats = service->stats();
    add("shards", std::to_string(service->num_shards()));
    if (served) {
      add("connections accepted",
          std::to_string(net_stats.connections_accepted));
      add("net requests", std::to_string(net_stats.requests));
      add("net bytes in/out", std::to_string(net_stats.bytes_in) + "/" +
                                  std::to_string(net_stats.bytes_out));
      add("backpressure pauses",
          std::to_string(net_stats.backpressure_pauses));
      add("connections dropped (protocol)",
          std::to_string(net_stats.connections_dropped));
    }
    if (repl_served) {
      add("replication role", "primary");
      add("followers", std::to_string(repl_stats.followers));
      add("repl records streamed",
          std::to_string(repl_stats.records_sent) + "/" +
              std::to_string(repl_stats.primary_records));
      add("repl acked release horizon",
          std::to_string(repl_stats.min_acked_release_horizon));
      add("repl max follower lag",
          std::to_string(repl_stats.max_lag_records));
      add("repl divergences", std::to_string(repl_stats.divergences));
    }
    add("users", std::to_string(service->num_users()));
    add("requests",
        std::to_string(stats.join_requests + stats.release_requests));
    add("micro-batch ticks", std::to_string(stats.ticks));
    add("global releases", std::to_string(stats.global_releases));
    add("loss cache hits/misses", std::to_string(stats.cache_hits) + "/" +
                                      std::to_string(stats.cache_misses));
    add("loss cache entries", std::to_string(stats.cache_entries));
    add("horizon", std::to_string(service->horizon()));
    add("overall alpha (max TPL)", FormatNumber(overall, 6));
    add("min personalized alpha", FormatNumber(min_alpha, 6));
    add("elapsed (s)", FormatNumber(outcome.elapsed_seconds, 4));
    if (!log_dir.empty()) {
      std::uint64_t wal_bytes = 0;
      std::uint64_t snapshots = 0;
      for (std::size_t s = 0; s < service->num_shards(); ++s) {
        wal_bytes += service->shard_stats(s).wal_bytes;
        snapshots += service->shard_stats(s).snapshots_written;
      }
      add("log dir", log_dir);
      add("WAL bytes (all shards)", std::to_string(wal_bytes));
      add("snapshots written", std::to_string(snapshots));
    }
    out << table.ToAlignedString();
    for (const server::UserReport& report : outcome.queries) {
      out << "query " << report.name << ": horizon " << report.horizon
          << "  max TPL " << FormatNumber(report.max_tpl, 6)
          << "  user-level " << FormatNumber(report.user_level_tpl, 6)
          << "\n";
    }
  }
  return service->Close();
}

Status CmdClient(const Flags& flags, std::ostream& out) {
  const auto script_it = flags.find("script");
  if (script_it == flags.end()) {
    return Status::InvalidArgument("missing required flag --script");
  }
  std::ifstream script(script_it->second);
  if (!script) {
    return Status::NotFound("cannot open script " + script_it->second);
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t port, FlagAsSize(flags, "port"));
  if (port == 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in 1-65535");
  }
  std::string host = "127.0.0.1";
  if (flags.count("host") > 0) host = flags.at("host");
  net::NetClientOptions client_options;
  TCDP_ASSIGN_OR_RETURN(client_options.pipeline_depth,
                        FlagAsSize(flags, "pipeline", std::size_t{8}));
  TCDP_ASSIGN_OR_RETURN(std::size_t shutdown,
                        FlagAsSize(flags, "shutdown", std::size_t{0}));
  const bool json = flags.count("json") > 0;
  if (json && flags.at("json") != "-") {
    return Status::InvalidArgument("--json only supports '-' (stdout)");
  }

  TCDP_ASSIGN_OR_RETURN(
      auto client,
      net::NetClient::Connect(host, static_cast<std::uint16_t>(port),
                              client_options));
  ServeOutcome outcome;
  TCDP_RETURN_IF_ERROR(RunScript(script, client.get(), &outcome));
  TCDP_ASSIGN_OR_RETURN(auto stats, client->Stats());
  if (shutdown != 0) {
    TCDP_RETURN_IF_ERROR(client->Shutdown());
  }
  const std::uint64_t requests = client->requests_sent();
  const double rps = outcome.elapsed_seconds > 0.0
                         ? static_cast<double>(requests) /
                               outcome.elapsed_seconds
                         : 0.0;
  if (json) {
    out.precision(17);
    out << "{\n"
        << "  \"host\": \"" << JsonEscape(host) << "\",\n"
        << "  \"port\": " << port << ",\n"
        << "  \"pipeline\": " << client_options.pipeline_depth << ",\n"
        << "  \"script_lines\": " << outcome.script_lines << ",\n"
        << "  \"elapsed_seconds\": " << outcome.elapsed_seconds << ",\n"
        << "  \"requests_sent\": " << requests << ",\n"
        << "  \"responses_received\": " << client->responses_received()
        << ",\n"
        << "  \"requests_per_sec\": " << rps << ",\n"
        << "  \"server_stats\": {\"shards\": " << stats.num_shards
        << ", \"users\": " << stats.num_users
        << ", \"horizon\": " << stats.horizon
        << ", \"join_requests\": " << stats.join_requests
        << ", \"release_requests\": " << stats.release_requests
        << ", \"ticks\": " << stats.ticks
        << ", \"global_releases\": " << stats.global_releases
        << ", \"shard_stats\": [";
    for (std::size_t s = 0; s < stats.shards.size(); ++s) {
      const net::WireShardStats& shard = stats.shards[s];
      out << (s == 0 ? "\n" : ",\n") << "    {\"shard\": " << s
          << ", \"users\": " << shard.users
          << ", \"horizon\": " << shard.horizon
          << ", \"wal_records\": " << shard.wal_records
          << ", \"wal_bytes\": " << shard.wal_bytes
          << ", \"snapshots\": " << shard.snapshots_written
          << ", \"queue_depth\": " << shard.queue_depth
          << ", \"enqueue_blocks\": " << shard.enqueue_blocks << "}";
    }
    out << "\n  ]},\n  \"queries\": [";
    for (std::size_t q = 0; q < outcome.queries.size(); ++q) {
      const server::UserReport& report = outcome.queries[q];
      out << (q == 0 ? "\n" : ",\n") << "    {\"name\": \""
          << JsonEscape(report.name) << "\", \"shard\": " << report.shard
          << ", \"horizon\": " << report.horizon
          << ", \"max_tpl\": " << report.max_tpl
          << ", \"user_level_tpl\": " << report.user_level_tpl << "}";
    }
    out << "\n  ]\n}\n";
  } else {
    Table table({"metric", "value"});
    auto add = [&table](const std::string& name, const std::string& value) {
      table.AddRow();
      table.AddCell(name);
      table.AddCell(value);
    };
    add("server", host + ":" + std::to_string(port));
    add("pipeline depth", std::to_string(client_options.pipeline_depth));
    add("script lines", std::to_string(outcome.script_lines));
    add("requests sent", std::to_string(requests));
    add("elapsed (s)", FormatNumber(outcome.elapsed_seconds, 4));
    add("requests/sec", FormatNumber(rps, 0));
    add("server shards", std::to_string(stats.num_shards));
    add("server users", std::to_string(stats.num_users));
    add("server horizon", std::to_string(stats.horizon));
    out << table.ToAlignedString();
    for (const server::UserReport& report : outcome.queries) {
      out << "query " << report.name << ": horizon " << report.horizon
          << "  max TPL " << FormatNumber(report.max_tpl, 6)
          << "  user-level " << FormatNumber(report.user_level_tpl, 6)
          << "\n";
    }
  }
  return client->Close();
}

/// One rates table out of a snapshot diff: counters that moved (with
/// per-second rate) and histograms that saw samples (count rate plus
/// p50/p99 of the *interval's* distribution). Shared by
/// `tcdp stats --watch` and `tcdp top`.
void PrintRateTables(const obs::MetricsDelta& delta, std::ostream& out) {
  const double seconds =
      delta.interval_seconds > 0.0 ? delta.interval_seconds : 1.0;
  Table rates({"counter", "delta", "per-sec"});
  for (const auto& [name, value] : delta.counters) {
    if (value == 0) continue;
    rates.AddRowCells(
        {name, std::to_string(value),
         FormatNumber(static_cast<double>(value) / seconds, 1)});
  }
  out << rates.ToAlignedString();
  Table latency({"histogram", "count/s", "p50", "p99"});
  for (const auto& [name, snapshot] : delta.histograms) {
    if (snapshot.count() == 0) continue;
    latency.AddRowCells(
        {name,
         FormatNumber(static_cast<double>(snapshot.count()) / seconds, 1),
         FormatNumber(snapshot.Quantile(0.5), 6),
         FormatNumber(snapshot.Quantile(0.99), 6)});
  }
  if (latency.num_rows() > 0) out << latency.ToAlignedString();
}

/// `tcdp stats`: one-shot observability scrape of a live server over
/// the wire — the typed kMetrics snapshot (counters, gauges, latency
/// histograms) plus the kStats service counters. --json emits the
/// exact MetricsJson schema (same as `serve --metrics-json` dumps), so
/// scripts/check_metrics_schema.py validates either source. --watch N
/// re-scrapes every N seconds and prints per-interval rates instead of
/// cumulative totals (--count M stops after M rate tables).
Status CmdStats(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(std::size_t port, FlagAsSize(flags, "port"));
  if (port == 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in 1-65535");
  }
  std::string host = "127.0.0.1";
  if (flags.count("host") > 0) host = flags.at("host");
  const bool json = flags.count("json") > 0;
  if (json && flags.at("json") != "-") {
    return Status::InvalidArgument("--json only supports '-' (stdout)");
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t trace_dump,
                        FlagAsSize(flags, "trace-dump", std::size_t{0}));
  TCDP_ASSIGN_OR_RETURN(std::size_t watch_seconds,
                        FlagAsSize(flags, "watch", std::size_t{0}));
  TCDP_ASSIGN_OR_RETURN(std::size_t watch_count,
                        FlagAsSize(flags, "count", std::size_t{3}));
  if (watch_seconds > 0 && json) {
    return Status::InvalidArgument("--watch and --json are exclusive");
  }

  TCDP_ASSIGN_OR_RETURN(
      auto client,
      net::NetClient::Connect(host, static_cast<std::uint16_t>(port)));
  TCDP_ASSIGN_OR_RETURN(obs::MetricsSnapshot metrics, client->Metrics());
  if (trace_dump != 0) {
    TCDP_ASSIGN_OR_RETURN(std::string trace_path, client->TraceDump());
    if (!json) out << "trace dumped to " << trace_path << "\n";
  }
  if (watch_seconds > 0) {
    obs::MetricsSnapshot prev = std::move(metrics);
    for (std::size_t i = 0; i < watch_count; ++i) {
      std::this_thread::sleep_for(std::chrono::seconds(watch_seconds));
      TCDP_ASSIGN_OR_RETURN(obs::MetricsSnapshot cur, client->Metrics());
      const obs::MetricsDelta delta = obs::DiffMetricsSnapshots(
          prev, cur, static_cast<double>(watch_seconds));
      out << "--- interval " << (i + 1) << "/" << watch_count << " ("
          << watch_seconds << "s)\n";
      PrintRateTables(delta, out);
      out.flush();
      prev = std::move(cur);
    }
    return client->Close();
  }
  if (json) {
    out << obs::MetricsJson(metrics);
    return client->Close();
  }
  TCDP_ASSIGN_OR_RETURN(auto stats, client->Stats());
  Table table({"metric", "value"});
  auto add = [&table](const std::string& name, const std::string& value) {
    table.AddRow();
    table.AddCell(name);
    table.AddCell(value);
  };
  add("server", host + ":" + std::to_string(port));
  add("shards", std::to_string(stats.num_shards));
  add("users", std::to_string(stats.num_users));
  add("horizon", std::to_string(stats.horizon));
  add("join requests", std::to_string(stats.join_requests));
  add("release requests", std::to_string(stats.release_requests));
  add("ticks", std::to_string(stats.ticks));
  add("global releases", std::to_string(stats.global_releases));
  for (const auto& [name, value] : metrics.counters) {
    add(name, std::to_string(value));
  }
  for (const auto& [name, value] : metrics.gauges) {
    add(name, std::to_string(value));
  }
  out << table.ToAlignedString();

  Table latency({"histogram", "count", "p50", "p90", "p99", "max"});
  for (const auto& [name, snapshot] : metrics.histograms) {
    latency.AddRow();
    latency.AddCell(name);
    latency.AddCell(std::to_string(snapshot.count()));
    latency.AddCell(FormatNumber(snapshot.Quantile(0.5), 6));
    latency.AddCell(FormatNumber(snapshot.Quantile(0.9), 6));
    latency.AddCell(FormatNumber(snapshot.Quantile(0.99), 6));
    latency.AddCell(FormatNumber(snapshot.max_observed, 6));
  }
  out << latency.ToAlignedString();
  return client->Close();
}

/// `tcdp health`: the kHealth/kReady probe as a CLI verb. Prints the
/// watchdog's verdict and exits nonzero when the probed bit is false,
/// so scripts/CI can gate on the exit code alone.
Status CmdHealth(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(std::size_t port, FlagAsSize(flags, "port"));
  if (port == 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in 1-65535");
  }
  std::string host = "127.0.0.1";
  if (flags.count("host") > 0) host = flags.at("host");
  const bool json = flags.count("json") > 0;
  if (json && flags.at("json") != "-") {
    return Status::InvalidArgument("--json only supports '-' (stdout)");
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t probe_ready,
                        FlagAsSize(flags, "ready", std::size_t{0}));

  TCDP_ASSIGN_OR_RETURN(
      auto client,
      net::NetClient::Connect(host, static_cast<std::uint16_t>(port)));
  TCDP_ASSIGN_OR_RETURN(net::WireHealthReport report,
                        probe_ready != 0 ? client->Ready()
                                         : client->Health());
  if (json) {
    out << "{\n"
        << "  \"healthy\": " << (report.healthy ? "true" : "false") << ",\n"
        << "  \"ready\": " << (report.ready ? "true" : "false") << ",\n"
        << "  \"scans\": " << report.scans << ",\n"
        << "  \"reason\": \"" << JsonEscape(report.reason) << "\",\n"
        << "  \"components\": [";
    for (std::size_t c = 0; c < report.components.size(); ++c) {
      const net::WireComponentHealth& comp = report.components[c];
      out << (c == 0 ? "\n" : ",\n") << "    {\"name\": \""
          << JsonEscape(comp.name) << "\", \"kind\": \""
          << obs::HeartbeatKindName(
                 static_cast<obs::HeartbeatKind>(comp.kind))
          << "\", \"stalled\": " << (comp.stalled ? "true" : "false")
          << ", \"progress\": " << comp.progress
          << ", \"pending\": " << comp.pending
          << ", \"age_ns\": " << comp.age_ns << ", \"detail\": \""
          << JsonEscape(comp.detail) << "\"}";
    }
    out << "\n  ]\n}\n";
  } else {
    out << (report.healthy ? "healthy" : "UNHEALTHY") << " / "
        << (report.ready ? "ready" : "NOT READY");
    if (!report.reason.empty()) out << " — " << report.reason;
    out << " (" << report.scans << " watchdog scans)\n";
    Table table({"component", "kind", "state", "progress", "pending",
                 "age (ms)"});
    for (const net::WireComponentHealth& comp : report.components) {
      table.AddRowCells(
          {comp.name,
           obs::HeartbeatKindName(static_cast<obs::HeartbeatKind>(comp.kind)),
           comp.stalled ? "STALLED" : "ok", std::to_string(comp.progress),
           std::to_string(comp.pending),
           FormatNumber(static_cast<double>(comp.age_ns) / 1e6, 1)});
    }
    if (table.num_rows() > 0) out << table.ToAlignedString();
  }
  TCDP_RETURN_IF_ERROR(client->Close());
  const bool probed_bit = probe_ready != 0 ? report.ready : report.healthy;
  if (!probed_bit) {
    return Status::Internal(
        std::string(probe_ready != 0 ? "server not ready"
                                     : "server unhealthy") +
        (report.reason.empty() ? "" : ": " + report.reason));
  }
  return Status::OK();
}

/// One `tcdp top` frame: rates diffed from the previous scrape.
struct TopFrame {
  obs::MetricsSnapshot metrics;
  net::WireServiceStats stats;
};

void PrintTopFrame(const std::string& server, const TopFrame& prev,
                   const TopFrame& cur, double interval_seconds,
                   std::ostream& out) {
  const obs::MetricsDelta delta =
      obs::DiffMetricsSnapshots(prev.metrics, cur.metrics, interval_seconds);
  // Request throughput comes from the per-type latency histograms (the
  // interval's count), WAL throughput and cache traffic from counter
  // deltas; everything degrades to 0 when the instrument is absent.
  std::uint64_t requests = 0;
  obs::HistogramSnapshot net_latency;
  bool have_latency = false;
  for (const auto& [name, snapshot] : delta.histograms) {
    if (name.rfind("tcdp_net_request_seconds", 0) != 0) continue;
    requests += snapshot.count();
    if (!have_latency) {
      net_latency = snapshot;
      have_latency = true;
    } else {
      net_latency.Merge(snapshot);
    }
  }
  const std::uint64_t wal_bytes =
      delta.CounterSum("tcdp_wal_appended_bytes_total");
  const std::uint64_t hits = delta.CounterSum("tcdp_loss_cache_hits_total");
  const std::uint64_t misses =
      delta.CounterSum("tcdp_loss_cache_misses_total");
  const double lookups = static_cast<double>(hits + misses);

  out << "tcdp top — " << server << "  users " << cur.stats.num_users
      << "  horizon " << cur.stats.horizon << "  interval "
      << FormatNumber(interval_seconds, 1) << "s\n";
  Table table({"rate", "value"});
  table.AddRowCells(
      {"requests/s",
       FormatNumber(static_cast<double>(requests) / interval_seconds, 1)});
  table.AddRowCells(
      {"WAL bytes/s",
       FormatNumber(static_cast<double>(wal_bytes) / interval_seconds, 1)});
  table.AddRowCells(
      {"cache hit ratio",
       lookups > 0 ? FormatNumber(static_cast<double>(hits) / lookups, 3)
                   : "-"});
  if (have_latency && net_latency.count() > 0) {
    table.AddRowCells(
        {"net p50 (s)", FormatNumber(net_latency.Quantile(0.5), 6)});
    table.AddRowCells(
        {"net p99 (s)", FormatNumber(net_latency.Quantile(0.99), 6)});
  }
  out << table.ToAlignedString();

  // Per-shard queue depth bars, scaled against the deepest shard (the
  // bar answers "who is backed up relative to whom").
  std::uint64_t max_depth = 1;
  for (const net::WireShardStats& shard : cur.stats.shards) {
    max_depth = std::max(max_depth, shard.queue_depth);
  }
  for (std::size_t s = 0; s < cur.stats.shards.size(); ++s) {
    const net::WireShardStats& shard = cur.stats.shards[s];
    const std::size_t width =
        static_cast<std::size_t>(shard.queue_depth * 20 / max_depth);
    out << "  shard " << s << " [" << std::string(width, '#')
        << std::string(20 - width, ' ') << "] depth "
        << shard.queue_depth << "\n";
  }

  // Replication lag bar (primaries only — the gauges exist once a
  // --repl-listen stream server has published them). Scaled against
  // the records the primary has, so a full bar means "follower has
  // seen nothing yet".
  auto gauge = [&cur](const std::string& name,
                      std::int64_t fallback) -> std::int64_t {
    for (const auto& entry : cur.metrics.gauges) {
      if (entry.first == name) return entry.second;
    }
    return fallback;
  };
  const std::int64_t followers = gauge("tcdp_repl_followers", -1);
  if (followers >= 0) {
    const std::int64_t lag = gauge("tcdp_repl_lag_records", 0);
    const std::int64_t acked = gauge("tcdp_repl_min_acked_horizon", 0);
    const std::int64_t streamed = gauge("tcdp_repl_primary_records", 0);
    std::uint64_t diverged = 0;
    for (const auto& entry : cur.metrics.counters) {
      if (entry.first == "tcdp_repl_divergences_total") {
        diverged = entry.second;
      }
    }
    const std::int64_t scale = std::max<std::int64_t>(
        std::int64_t{1}, std::max(streamed, lag));
    const std::size_t width = static_cast<std::size_t>(
        std::min<std::int64_t>(20, lag * 20 / scale));
    out << "  repl    [" << std::string(width, '#')
        << std::string(20 - width, ' ') << "] lag " << lag
        << " rec, " << followers << " follower"
        << (followers == 1 ? "" : "s") << ", acked horizon " << acked
        << (diverged != 0 ? "  DIVERGED" : "") << "\n";
  }
}

/// `tcdp top`: live terminal dashboard over kMetrics + kStats. On a
/// TTY it refreshes in place until interrupted (or --count frames);
/// piped/redirected it degrades to a single rate table so scripts and
/// tests get deterministic output.
Status CmdTop(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(std::size_t port, FlagAsSize(flags, "port"));
  if (port == 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in 1-65535");
  }
  std::string host = "127.0.0.1";
  if (flags.count("host") > 0) host = flags.at("host");
  TCDP_ASSIGN_OR_RETURN(
      std::size_t interval_ms,
      FlagAsSize(flags, "interval-ms", std::size_t{1000}));
  if (interval_ms == 0) {
    return Status::InvalidArgument("--interval-ms must be >= 1");
  }
  bool tty = false;
#if defined(__unix__) || defined(__APPLE__)
  tty = ::isatty(STDOUT_FILENO) != 0;
#endif
  TCDP_ASSIGN_OR_RETURN(
      std::size_t count,
      FlagAsSize(flags, "count", tty ? std::size_t{0} : std::size_t{1}));

  TCDP_ASSIGN_OR_RETURN(
      auto client,
      net::NetClient::Connect(host, static_cast<std::uint16_t>(port)));
  const std::string server = host + ":" + std::to_string(port);
  TopFrame prev;
  TCDP_ASSIGN_OR_RETURN(prev.metrics, client->Metrics());
  TCDP_ASSIGN_OR_RETURN(prev.stats, client->Stats());
  const double interval_seconds =
      static_cast<double>(interval_ms) / 1000.0;
  for (std::size_t frame = 0; count == 0 || frame < count; ++frame) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    TopFrame cur;
    TCDP_ASSIGN_OR_RETURN(cur.metrics, client->Metrics());
    TCDP_ASSIGN_OR_RETURN(cur.stats, client->Stats());
    if (tty) out << "\x1b[H\x1b[2J";  // home + clear: refresh in place
    PrintTopFrame(server, prev, cur, interval_seconds, out);
    out.flush();
    prev = std::move(cur);
  }
  return client->Close();
}

Status CmdReplay(const Flags& flags, std::ostream& out) {
  const auto dir_it = flags.find("log-dir");
  if (dir_it == flags.end()) {
    return Status::InvalidArgument("missing required flag --log-dir");
  }
  const bool verify = flags.count("verify") > 0;
  const bool json = flags.count("json") > 0;
  if (json && flags.at("json") != "-") {
    return Status::InvalidArgument("--json only supports '-' (stdout)");
  }
  WallTimer timer;
  TCDP_ASSIGN_OR_RETURN(auto service,
                        server::ShardedReleaseService::Recover(
                            dir_it->second));
  const double recover_seconds = timer.ElapsedSeconds();

  std::size_t verified_users = 0;
  std::size_t verify_failures = 0;
  TCDP_ASSIGN_OR_RETURN(auto alphas, service->PersonalizedAlphas());
  if (verify) {
    // Every user's exported accountant blob, replayed standalone, must
    // reproduce the recovered series bitwise — the serialization hooks
    // are the contract the snapshots are built on.
    for (const auto& [name, alpha] : alphas) {
      TCDP_ASSIGN_OR_RETURN(auto report, service->Query(name));
      TCDP_ASSIGN_OR_RETURN(std::string blob, service->ExportUser(name));
      auto reference = TplAccountant::Deserialize(blob);
      if (!reference.ok()) {
        ++verify_failures;
        continue;
      }
      const bool ok = reference->TplSeries() == report.tpl_series &&
                      reference->MaxTpl() == alpha;
      verified_users += ok ? 1 : 0;
      verify_failures += ok ? 0 : 1;
    }
  }
  double overall = 0.0;
  for (const auto& [name, alpha] : alphas) {
    (void)name;
    overall = std::max(overall, alpha);
  }
  if (json) {
    out.precision(17);
    out << "{\n"
        << "  \"log_dir\": \"" << JsonEscape(dir_it->second) << "\",\n"
        << "  \"shards\": " << service->num_shards() << ",\n"
        << "  \"users\": " << service->num_users() << ",\n"
        << "  \"horizon\": " << service->horizon() << ",\n"
        << "  \"recover_seconds\": " << recover_seconds << ",\n"
        << "  \"overall_alpha\": " << overall << ",\n"
        << "  \"verified\": " << (verify ? "true" : "false") << ",\n"
        << "  \"verified_users\": " << verified_users << ",\n"
        << "  \"verify_failures\": " << verify_failures << ",\n"
        << "  \"shard_stats\": [";
    for (std::size_t s = 0; s < service->num_shards(); ++s) {
      const server::ShardStats shard = service->shard_stats(s);
      out << (s == 0 ? "\n" : ",\n") << "    {\"shard\": " << s
          << ", \"users\": " << shard.users
          << ", \"horizon\": " << shard.horizon
          << ", \"replayed_records\": " << shard.replayed_records
          << ", \"restored_from_snapshot\": "
          << (shard.restored_from_snapshot ? "true" : "false") << "}";
    }
    out << "\n  ]\n}\n";
  } else {
    out << "recovered " << service->num_users() << " users across "
        << service->num_shards() << " shards at horizon "
        << service->horizon() << " in "
        << FormatNumber(recover_seconds, 4) << "s\n";
    for (std::size_t s = 0; s < service->num_shards(); ++s) {
      const server::ShardStats shard = service->shard_stats(s);
      out << "  shard " << s << ": " << shard.users << " users, "
          << shard.replayed_records << " WAL records replayed"
          << (shard.restored_from_snapshot ? " after snapshot restore"
                                           : "")
          << "\n";
    }
    out << "overall alpha (max TPL): " << FormatNumber(overall, 6) << "\n";
    if (verify) {
      out << "verification: " << verified_users << " users bitwise-equal, "
          << verify_failures << " failures\n";
    }
  }
  const Status closed = service->Close();
  if (verify && verify_failures > 0) {
    return Status::Internal(
        "replay verification failed for " +
        std::to_string(verify_failures) + " users");
  }
  return closed;
}

Status CmdCompact(const Flags& flags, std::ostream& out) {
  const auto dir_it = flags.find("log-dir");
  if (dir_it == flags.end()) {
    return Status::InvalidArgument("missing required flag --log-dir");
  }
  const bool json = flags.count("json") > 0;
  if (json && flags.at("json") != "-") {
    return Status::InvalidArgument("--json only supports '-' (stdout)");
  }
  TCDP_ASSIGN_OR_RETURN(auto service,
                        server::ShardedReleaseService::Recover(
                            dir_it->second));
  struct Footprint {
    std::uint64_t bytes = 0;
    std::uint64_t physical_records = 0;
    std::uint64_t logical_records = 0;
  };
  auto measure = [&] {
    std::vector<Footprint> shards;
    for (std::size_t s = 0; s < service->num_shards(); ++s) {
      const server::ShardStats stats = service->shard_stats(s);
      shards.push_back(Footprint{stats.wal_bytes,
                                 stats.wal_physical_records,
                                 stats.wal_records});
    }
    return shards;
  };
  const std::vector<Footprint> before = measure();
  WallTimer timer;
  TCDP_RETURN_IF_ERROR(service->Compact());
  const double compact_seconds = timer.ElapsedSeconds();
  const std::vector<Footprint> after = measure();
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
  for (const Footprint& f : before) bytes_before += f.bytes;
  for (const Footprint& f : after) bytes_after += f.bytes;
  if (json) {
    out.precision(17);
    out << "{\n"
        << "  \"log_dir\": \"" << JsonEscape(dir_it->second) << "\",\n"
        << "  \"shards\": " << service->num_shards() << ",\n"
        << "  \"users\": " << service->num_users() << ",\n"
        << "  \"horizon\": " << service->horizon() << ",\n"
        << "  \"compact_seconds\": " << compact_seconds << ",\n"
        << "  \"wal_bytes_before\": " << bytes_before << ",\n"
        << "  \"wal_bytes_after\": " << bytes_after << ",\n"
        << "  \"shard_stats\": [";
    for (std::size_t s = 0; s < service->num_shards(); ++s) {
      out << (s == 0 ? "\n" : ",\n") << "    {\"shard\": " << s
          << ", \"wal_bytes_before\": " << before[s].bytes
          << ", \"wal_bytes_after\": " << after[s].bytes
          << ", \"physical_records_before\": " << before[s].physical_records
          << ", \"physical_records_after\": " << after[s].physical_records
          << ", \"logical_records\": " << after[s].logical_records << "}";
    }
    out << "\n  ]\n}\n";
  } else {
    out << "compacted " << service->num_shards() << " shard WALs in "
        << FormatNumber(compact_seconds, 4) << "s: " << bytes_before
        << " -> " << bytes_after << " bytes\n";
    for (std::size_t s = 0; s < service->num_shards(); ++s) {
      out << "  shard " << s << ": " << before[s].bytes << " -> "
          << after[s].bytes << " bytes, " << before[s].physical_records
          << " -> " << after[s].physical_records
          << " records on disk (" << after[s].logical_records
          << " logical records preserved via the snapshot)\n";
    }
  }
  return service->Close();
}

/// `tcdp follow`: run a replica of a primary's WAL stream. The process
/// follows until the stream ends — with --reconnect 0 that means the
/// primary died (or Stop), and --promote 1 then turns the replica into
/// a serving primary through the crash-recovery path (the failover
/// drill in README.md). Exits nonzero on divergence.
Status CmdFollow(const Flags& flags, std::ostream& out) {
  replication::FollowerOptions options;
  TCDP_ASSIGN_OR_RETURN(std::size_t primary_port,
                        FlagAsSize(flags, "primary-port"));
  if (primary_port == 0 || primary_port > 65535) {
    return Status::InvalidArgument("--primary-port must be in 1-65535");
  }
  options.primary_port = static_cast<std::uint16_t>(primary_port);
  if (flags.count("primary-host") > 0) {
    options.primary_host = flags.at("primary-host");
  }
  const auto dir_it = flags.find("log-dir");
  if (dir_it == flags.end()) {
    return Status::InvalidArgument("missing required flag --log-dir");
  }
  options.log_dir = dir_it->second;
  TCDP_ASSIGN_OR_RETURN(std::size_t promote,
                        FlagAsSize(flags, "promote", std::size_t{0}));
  // A promoting follower wants the stream to *end* when the primary
  // dies; a standing replica wants to ride out restarts.
  TCDP_ASSIGN_OR_RETURN(
      std::size_t reconnect,
      FlagAsSize(flags, "reconnect",
                 promote != 0 ? std::size_t{0} : std::size_t{1}));
  options.reconnect = reconnect != 0;
  const bool json = flags.count("json") > 0;
  if (json && flags.at("json") != "-") {
    return Status::InvalidArgument("--json only supports '-' (stdout)");
  }

  const std::string primary = options.primary_host + ":" +
                              std::to_string(options.primary_port);
  TCDP_ASSIGN_OR_RETURN(auto follower,
                        replication::Follower::Open(std::move(options)));
  TCDP_RETURN_IF_ERROR(follower->Start());
  if (!json) {
    out << "following " << primary << " into " << dir_it->second << "\n";
    out.flush();
  }
  while (follower->status().running) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const replication::FollowerStatus status = follower->status();

  std::unique_ptr<server::ShardedReleaseService> promoted;
  double promote_seconds = 0.0;
  if (promote != 0 && !status.diverged) {
    WallTimer timer;
    TCDP_ASSIGN_OR_RETURN(promoted, follower->Promote());
    promote_seconds = timer.ElapsedSeconds();
  } else {
    follower->Stop();
  }

  if (json) {
    out.precision(17);
    out << "{\n"
        << "  \"diverged\": " << (status.diverged ? "true" : "false")
        << ",\n"
        << "  \"num_shards\": " << status.num_shards << ",\n"
        << "  \"release_horizon\": " << status.release_horizon << ",\n"
        << "  \"batches_applied\": " << status.batches_applied << ",\n"
        << "  \"records_applied\": " << status.records_applied << ",\n"
        << "  \"acks_sent\": " << status.acks_sent << ",\n"
        << "  \"reconnects\": " << status.reconnects << ",\n"
        << "  \"promoted\": " << (promoted != nullptr ? "true" : "false")
        << ",\n"
        << "  \"promote_seconds\": " << promote_seconds;
    if (promoted != nullptr) {
      out << ",\n  \"users\": " << promoted->num_users()
          << ",\n  \"horizon\": " << promoted->horizon();
    }
    out << "\n}\n";
  } else {
    Table table({"metric", "value"});
    auto add = [&table](const std::string& name, const std::string& value) {
      table.AddRow();
      table.AddCell(name);
      table.AddCell(value);
    };
    add("diverged", status.diverged ? "YES" : "no");
    add("shards", std::to_string(status.num_shards));
    add("records applied", std::to_string(status.records_applied));
    add("batches applied", std::to_string(status.batches_applied));
    add("acked release horizon", std::to_string(status.release_horizon));
    add("acks sent", std::to_string(status.acks_sent));
    add("reconnects", std::to_string(status.reconnects));
    if (promoted != nullptr) {
      add("promoted", "yes (" + FormatNumber(promote_seconds, 4) + "s)");
      add("users", std::to_string(promoted->num_users()));
      add("horizon", std::to_string(promoted->horizon()));
    }
    out << table.ToAlignedString();
  }

  // The drill's last act: the promoted replica starts serving clients.
  if (promoted != nullptr && flags.count("listen") > 0) {
    TCDP_ASSIGN_OR_RETURN(std::size_t port, FlagAsSize(flags, "listen"));
    if (port > 65535) {
      return Status::InvalidArgument("--listen must be a port (0-65535)");
    }
    net::NetServerOptions net_options;
    net_options.port = static_cast<std::uint16_t>(port);
    if (flags.count("host") > 0) net_options.host = flags.at("host");
    TCDP_ASSIGN_OR_RETURN(
        auto net_server, net::NetServer::Listen(promoted.get(), net_options));
    if (flags.count("port-file") > 0) {
      std::ofstream port_file(flags.at("port-file"));
      port_file << net_server->port() << "\n";
      if (!port_file) {
        return Status::Internal("cannot write " + flags.at("port-file"));
      }
    }
    if (!json) {
      out << "promoted primary listening on " << net_options.host << ":"
          << net_server->port() << "\n";
      out.flush();
    }
    TCDP_RETURN_IF_ERROR(net_server->Serve());
    TCDP_RETURN_IF_ERROR(promoted->Flush());
  }
  if (promoted != nullptr) {
    TCDP_RETURN_IF_ERROR(promoted->Close());
  }
  if (status.diverged) {
    return Status::FailedPrecondition(
        "replica diverged from the primary: " +
        status.last_error.message());
  }
  return Status::OK();
}

/// `tcdp route`: operate the user -> shard-server placement table.
/// Verbs are flags and run in a fixed order (add, remove, migrate,
/// clear, lookup, endpoints, distribution, serve); each journals
/// before it applies when --journal is set.
Status CmdRoute(const Flags& flags, std::ostream& out) {
  std::string journal;
  if (flags.count("journal") > 0) journal = flags.at("journal");
  TCDP_ASSIGN_OR_RETURN(
      std::size_t virtual_nodes,
      FlagAsSize(flags, "virtual-nodes", std::size_t{64}));
  TCDP_ASSIGN_OR_RETURN(auto table,
                        replication::RouterTable::Open(journal,
                                                       virtual_nodes));
  if (flags.count("add") > 0) {
    TCDP_RETURN_IF_ERROR(table->AddEndpoint(flags.at("add")));
    out << "added " << flags.at("add") << "\n";
  }
  if (flags.count("remove") > 0) {
    TCDP_RETURN_IF_ERROR(table->RemoveEndpoint(flags.at("remove")));
    out << "removed " << flags.at("remove") << "\n";
  }
  if (flags.count("migrate") > 0) {
    const auto to_it = flags.find("to");
    if (to_it == flags.end()) {
      return Status::InvalidArgument("--migrate requires --to ENDPOINT");
    }
    TCDP_RETURN_IF_ERROR(
        table->MigrateUser(flags.at("migrate"), to_it->second));
    out << "pinned " << flags.at("migrate") << " -> " << to_it->second
        << "\n";
  }
  if (flags.count("clear") > 0) {
    TCDP_RETURN_IF_ERROR(table->MigrateUser(flags.at("clear"), ""));
    out << "cleared pin for " << flags.at("clear") << "\n";
  }
  if (flags.count("lookup") > 0) {
    TCDP_ASSIGN_OR_RETURN(std::string endpoint,
                          table->Lookup(flags.at("lookup")));
    out << flags.at("lookup") << " -> " << endpoint << "\n";
  }
  if (flags.count("endpoints") > 0) {
    const replication::RouterTableStats stats = table->stats();
    out << stats.endpoints << " endpoints, " << stats.pins << " pins, "
        << stats.journal_records << " journal records\n";
    for (const std::string& endpoint : table->endpoints()) {
      out << "  " << endpoint << "\n";
    }
  }
  if (flags.count("distribution") > 0) {
    // Synthesize N users and count placements per endpoint: run it
    // before and after an --add to see that only ~1/N of them moved.
    TCDP_ASSIGN_OR_RETURN(std::size_t users,
                          FlagAsSize(flags, "distribution"));
    std::map<std::string, std::size_t> counts;
    for (std::size_t i = 0; i < users; ++i) {
      TCDP_ASSIGN_OR_RETURN(std::string endpoint,
                            table->Lookup("user-" + std::to_string(i)));
      ++counts[endpoint];
    }
    Table dist({"endpoint", "users", "fraction"});
    for (const auto& [endpoint, count] : counts) {
      dist.AddRowCells({endpoint, std::to_string(count),
                        FormatNumber(static_cast<double>(count) /
                                         static_cast<double>(users),
                                     3)});
    }
    out << dist.ToAlignedString();
  }
  if (flags.count("serve") > 0) {
    TCDP_ASSIGN_OR_RETURN(std::size_t port, FlagAsSize(flags, "serve"));
    if (port > 65535) {
      return Status::InvalidArgument("--serve must be a port (0-65535)");
    }
    replication::RouterServerOptions server_options;
    server_options.port = static_cast<std::uint16_t>(port);
    if (flags.count("host") > 0) server_options.host = flags.at("host");
    TCDP_ASSIGN_OR_RETURN(
        auto server,
        replication::RouterServer::Listen(table.get(), server_options));
    if (flags.count("port-file") > 0) {
      std::ofstream port_file(flags.at("port-file"));
      port_file << server->port() << "\n";
      if (!port_file) {
        return Status::Internal("cannot write " + flags.at("port-file"));
      }
    }
    out << "router listening on " << server_options.host << ":"
        << server->port() << "\n";
    out.flush();
    TCDP_RETURN_IF_ERROR(server->Serve());
  }
  return Status::OK();
}

// `tcdp bench` has boolean flags (--smoke, --list), so it parses its
// own arguments instead of going through ParseFlags (which requires
// every --flag to carry a value).
Status CmdBench(const std::vector<std::string>& args, std::ostream& out) {
  bench::RunOptions options;
  bool list = false;
  std::vector<std::string> suites;
  std::string compare_path;
  std::string json_path;
  double noise = 0.15;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> StatusOr<std::string> {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("flag '" + arg +
                                       "' is missing a value");
      }
      return args[++i];
    };
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--suite") {
      TCDP_ASSIGN_OR_RETURN(const std::string list_value, value());
      std::stringstream stream(list_value);
      std::string name;
      while (std::getline(stream, name, ',')) {
        if (!name.empty()) suites.push_back(name);
      }
    } else if (arg == "--compare") {
      TCDP_ASSIGN_OR_RETURN(compare_path, value());
    } else if (arg == "--json") {
      TCDP_ASSIGN_OR_RETURN(json_path, value());
    } else if (arg == "--reps") {
      TCDP_ASSIGN_OR_RETURN(const std::string reps, value());
      Flags one{{"reps", reps}};
      TCDP_ASSIGN_OR_RETURN(options.repetitions, FlagAsSize(one, "reps"));
    } else if (arg == "--noise") {
      TCDP_ASSIGN_OR_RETURN(const std::string frac, value());
      Flags one{{"noise", frac}};
      TCDP_ASSIGN_OR_RETURN(noise, FlagAsDouble(one, "noise"));
      if (noise < 0.0) {
        return Status::InvalidArgument("--noise must be >= 0");
      }
    } else if (arg == "--kernels") {
      TCDP_ASSIGN_OR_RETURN(const std::string mode, value());
      TCDP_ASSIGN_OR_RETURN(const TcdpKernelMode parsed,
                            kernels::ParseKernelMode(mode));
      kernels::SetKernelMode(parsed);
    } else {
      return Status::InvalidArgument(
          "unknown bench flag '" + arg +
          "'; usage: tcdp bench [--suite a,b] [--smoke] [--list] "
          "[--json out.json] [--compare baseline.json] [--reps N] "
          "[--noise F] [--kernels scalar|auto]");
    }
  }

  bench::Harness harness;
  bench::RegisterAllSuites(&harness);
  if (list) {
    Table table({"suite", "description"});
    for (const std::string& name : harness.SuiteNames()) {
      table.AddRowCells({name, harness.FindSpec(name)->description});
    }
    out << table.ToAlignedString();
    return Status::OK();
  }

  TCDP_ASSIGN_OR_RETURN(const bench::BenchReport report,
                        harness.Run(options, suites, out));
  if (!json_path.empty()) {
    const bench::Json json = bench::ReportToJson(report);
    TCDP_RETURN_IF_ERROR(bench::ValidateReportJson(json));
    std::ofstream file(json_path);
    file << json.Dump();
    if (!file) {
      return Status::Internal("cannot write '" + json_path + "'");
    }
    out << "wrote " << json_path << "\n";
  }

  Status result = Status::OK();
  if (!report.AllGatesPassed()) {
    result = Status::Internal("acceptance gate failure (see report above)");
  }
  if (!compare_path.empty()) {
    std::ifstream file(compare_path);
    if (!file) {
      return Status::NotFound("cannot read baseline '" + compare_path + "'");
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    TCDP_ASSIGN_OR_RETURN(const bench::Json parsed,
                          bench::Json::Parse(buffer.str()));
    TCDP_ASSIGN_OR_RETURN(const bench::BenchReport baseline,
                          bench::ReportFromJson(parsed));
    bench::CompareOptions compare_options;
    compare_options.default_noise_frac = noise;
    const bench::CompareResult diff =
        bench::CompareReports(report, baseline, compare_options);
    out << "\n=== baseline comparison (" << compare_path << ")\n"
        << diff.report;
    if (!diff.ok && result.ok()) {
      result = Status::Internal(
          "regression against baseline (see comparison above)");
    }
  }
  return result;
}

}  // namespace

std::string HelpText() {
  return
      "tcdp — temporal-correlation-aware differential privacy toolkit\n"
      "\n"
      "usage: tcdp <command> [--flag value]...\n"
      "\n"
      "commands:\n"
      "  quantify   BPL/FPL/TPL timeline of a release sequence\n"
      "             --matrix M.csv | --backward B.csv | --forward F.csv\n"
      "             --epsilon E --horizon T | --schedule \"e1,e2,...\"\n"
      "  supremum   Theorem 5 leakage supremum under a uniform budget\n"
      "             --matrix M.csv --epsilon E\n"
      "  allocate   alpha-DP_T budget schedule (Algorithms 2/3)\n"
      "             --matrix M.csv --alpha A --horizon T\n"
      "             [--strategy quantified|upper-bound|group]\n"
      "  estimate   correlation MLE from trajectories\n"
      "             --trajectories T.csv [--states n] [--order k]\n"
      "             [--smoothing s] [--out F.csv] [--backward-out B.csv]\n"
      "  fleet      multi-user clickstream replay through the cohort-\n"
      "             batched SoA accountant bank (shared loss cache +\n"
      "             thread pool)\n"
      "             [--users N] [--horizon T] [--epsilon E] [--pages n]\n"
      "             [--groups g] [--threads k] [--cache on|off]\n"
      "             [--sparsity s] [--seed r] [--json -]\n"
      "  serve      sharded release service driven by a scripted request\n"
      "             stream (join/release/flush/snapshot/compact/query\n"
      "             commands), micro-batched, durable when --log-dir is\n"
      "             given; --listen adds the binary wire protocol on a\n"
      "             TCP port (script becomes an optional preload)\n"
      "             --script S.txt [--log-dir D] [--shards N]\n"
      "             [--batch-window W] [--snapshot-every K]\n"
      "             [--sync-every Y] [--auto-compact 1]\n"
      "             [--compact-bytes B] [--compact-records R]\n"
      "             [--threads-per-shard K] [--kernels scalar|auto]\n"
      "             [--listen PORT] [--host H] [--port-file P] [--json -]\n"
      "             [--repl-listen PORT] [--repl-port-file P]\n"
      "             [--no-metrics 1] [--metrics-json F] [--metrics-prom F]\n"
      "             [--metrics-interval-ms MS] [--trace-out F]\n"
      "             [--trace-capacity N] [--watchdog-interval-ms MS]\n"
      "             [--stall-ticks N] [--diag-dir D] [--diag-keep K]\n"
      "  follow     run a replica: subscribe to a primary's --repl-listen\n"
      "             WAL stream, keep a byte-identical local log dir, ack\n"
      "             durable horizons; --promote 1 recovers the replica\n"
      "             into a serving primary when the stream ends (the\n"
      "             failover drill; see docs/REPLICATION.md)\n"
      "             --primary-port PORT --log-dir D [--primary-host H]\n"
      "             [--reconnect 0|1] [--promote 1] [--listen PORT]\n"
      "             [--port-file P] [--host H] [--json -]\n"
      "  route      user -> shard-server placement (consistent hashing +\n"
      "             journaled migration pins); flags are verbs\n"
      "             [--journal F] [--virtual-nodes N] [--add H:P]\n"
      "             [--remove H:P] [--migrate U --to H:P] [--clear U]\n"
      "             [--lookup U] [--endpoints 1] [--distribution N]\n"
      "             [--serve PORT] [--port-file P] [--host H]\n"
      "  client     replay a serve script against a remote server over\n"
      "             the wire protocol (pipelined; see docs/PROTOCOL.md)\n"
      "             --port PORT --script S.txt [--host H]\n"
      "             [--pipeline N] [--shutdown 1] [--json -]\n"
      "  stats      scrape a live server's metrics over the wire (tick\n"
      "             and WAL latency histograms, queue gauges, cache\n"
      "             counters); --trace-dump 1 also asks the server to\n"
      "             write its span ring to its --trace-out path;\n"
      "             --watch N re-scrapes every N seconds and prints\n"
      "             per-interval rates (--count M intervals)\n"
      "             --port PORT [--host H] [--json -] [--trace-dump 1]\n"
      "             [--watch N] [--count M]\n"
      "  health     probe a live server's kHealth/kReady endpoint (the\n"
      "             watchdog's verdict + per-component heartbeat ages);\n"
      "             exits nonzero when the probed bit is false\n"
      "             --port PORT [--host H] [--ready 1] [--json -]\n"
      "  top        live dashboard over kMetrics/kStats: request and WAL\n"
      "             throughput, cache hit ratio, net latency quantiles,\n"
      "             per-shard queue bars; refreshes on a TTY, single\n"
      "             rate table otherwise\n"
      "             --port PORT [--host H] [--interval-ms MS] [--count M]\n"
      "  replay     recover a service from its log dir; --verify 1\n"
      "             replays every user's exported accountant blob and\n"
      "             checks the recovered series bitwise\n"
      "             --log-dir D [--verify 1] [--json -]\n"
      "  compact    recover a service, then rewrite every shard WAL to\n"
      "             its snapshot anchor + suffix (crash-safe tmp+rename;\n"
      "             see docs/DURABILITY.md) and report the disk savings\n"
      "             --log-dir D [--json -]\n"
      "  bench      unified benchmark harness: run the registered suites\n"
      "             (fleet/shard/net throughput, fig3-fig8 + table2 paper\n"
      "             reproductions, wevent, ablation), evaluate their\n"
      "             acceptance gates, emit one BENCH.json and optionally\n"
      "             diff it against a committed baseline (exit nonzero on\n"
      "             any gate or regression failure; docs/BENCHMARKING.md)\n"
      "             [--suite a,b] [--smoke] [--list] [--json out.json]\n"
      "             [--compare baseline.json] [--reps N] [--noise F]\n"
      "             [--kernels scalar|auto]\n"
      "  help       this text\n"
      "\n"
      "file formats: matrices are one row per line (comma/space separated\n"
      "probabilities); trajectories are one user per line (state indices).\n"
      "Lines starting with '#' are comments.\n";
}

Status Run(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << HelpText();
    return Status::OK();
  }
  const std::string& command = args[0];
  if (command == "bench") return CmdBench(args, out);
  TCDP_ASSIGN_OR_RETURN(Flags flags, ParseFlags(args, 1));
  if (command == "quantify") return CmdQuantify(flags, out);
  if (command == "supremum") return CmdSupremum(flags, out);
  if (command == "allocate") return CmdAllocate(flags, out);
  if (command == "estimate") return CmdEstimate(flags, out);
  if (command == "fleet") return CmdFleet(flags, out);
  if (command == "serve") return CmdServe(flags, out);
  if (command == "follow") return CmdFollow(flags, out);
  if (command == "route") return CmdRoute(flags, out);
  if (command == "client") return CmdClient(flags, out);
  if (command == "stats") return CmdStats(flags, out);
  if (command == "health") return CmdHealth(flags, out);
  if (command == "top") return CmdTop(flags, out);
  if (command == "replay") return CmdReplay(flags, out);
  if (command == "compact") return CmdCompact(flags, out);
  return Status::InvalidArgument("unknown command '" + command +
                                 "'; see `tcdp help`");
}

}  // namespace cli
}  // namespace tcdp
