#include "tools/cli.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <optional>

#include "common/random.h"
#include "common/table.h"
#include "core/budget_allocation.h"
#include "core/supremum.h"
#include "core/tpl_accountant.h"
#include "markov/estimation.h"
#include "markov/higher_order.h"
#include "markov/io.h"
#include "service/fleet_engine.h"
#include "workload/generators.h"

namespace tcdp {
namespace cli {
namespace {

using Flags = std::map<std::string, std::string>;

StatusOr<Flags> ParseFlags(const std::vector<std::string>& args,
                           std::size_t start) {
  Flags flags;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected a --flag, got '" + arg + "'");
    }
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument("flag '" + arg + "' is missing a value");
    }
    flags[arg.substr(2)] = args[++i];
  }
  return flags;
}

StatusOr<double> FlagAsDouble(const Flags& flags, const std::string& name) {
  auto it = flags.find(name);
  if (it == flags.end()) {
    return Status::InvalidArgument("missing required flag --" + name);
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("flag --" + name +
                                   ": cannot parse number '" + it->second +
                                   "'");
  }
  return v;
}

StatusOr<std::size_t> FlagAsSize(const Flags& flags, const std::string& name,
                                 std::optional<std::size_t> fallback = {}) {
  auto it = flags.find(name);
  if (it == flags.end()) {
    if (fallback.has_value()) return *fallback;
    return Status::InvalidArgument("missing required flag --" + name);
  }
  TCDP_ASSIGN_OR_RETURN(double v, FlagAsDouble(flags, name));
  if (v < 0 || v != static_cast<double>(static_cast<std::size_t>(v))) {
    return Status::InvalidArgument("flag --" + name +
                                   " must be a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

/// Loads the correlation pair from --matrix (both directions) or the
/// explicit --backward / --forward flags.
StatusOr<TemporalCorrelations> LoadCorrelations(const Flags& flags) {
  const bool has_matrix = flags.count("matrix") > 0;
  const bool has_backward = flags.count("backward") > 0;
  const bool has_forward = flags.count("forward") > 0;
  if (has_matrix && (has_backward || has_forward)) {
    return Status::InvalidArgument(
        "--matrix is exclusive with --backward/--forward");
  }
  if (has_matrix) {
    TCDP_ASSIGN_OR_RETURN(auto m,
                          LoadStochasticMatrix(flags.at("matrix")));
    return TemporalCorrelations::Both(m, m);
  }
  if (has_backward && has_forward) {
    TCDP_ASSIGN_OR_RETURN(auto b,
                          LoadStochasticMatrix(flags.at("backward")));
    TCDP_ASSIGN_OR_RETURN(auto f,
                          LoadStochasticMatrix(flags.at("forward")));
    return TemporalCorrelations::Both(std::move(b), std::move(f));
  }
  if (has_backward) {
    TCDP_ASSIGN_OR_RETURN(auto b,
                          LoadStochasticMatrix(flags.at("backward")));
    return TemporalCorrelations::BackwardOnly(std::move(b));
  }
  if (has_forward) {
    TCDP_ASSIGN_OR_RETURN(auto f,
                          LoadStochasticMatrix(flags.at("forward")));
    return TemporalCorrelations::ForwardOnly(std::move(f));
  }
  return Status::InvalidArgument(
      "provide --matrix, or --backward and/or --forward");
}

StatusOr<std::vector<double>> ParseScheduleFlag(const std::string& text) {
  std::vector<double> schedule;
  std::string field;
  auto flush = [&]() -> Status {
    if (field.empty()) return Status::OK();
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("--schedule: bad number '" + field +
                                     "'");
    }
    schedule.push_back(v);
    field.clear();
    return Status::OK();
  };
  for (char ch : text) {
    if (ch == ',' || ch == ' ') {
      TCDP_RETURN_IF_ERROR(flush());
    } else {
      field.push_back(ch);
    }
  }
  TCDP_RETURN_IF_ERROR(flush());
  if (schedule.empty()) {
    return Status::InvalidArgument("--schedule: no values");
  }
  return schedule;
}

Status CmdQuantify(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(auto corr, LoadCorrelations(flags));
  std::vector<double> schedule;
  if (flags.count("schedule") > 0) {
    TCDP_ASSIGN_OR_RETURN(schedule, ParseScheduleFlag(flags.at("schedule")));
  } else {
    TCDP_ASSIGN_OR_RETURN(double eps, FlagAsDouble(flags, "epsilon"));
    TCDP_ASSIGN_OR_RETURN(std::size_t horizon,
                          FlagAsSize(flags, "horizon"));
    if (horizon == 0) {
      return Status::InvalidArgument("--horizon must be >= 1");
    }
    schedule.assign(horizon, eps);
  }
  TplAccountant acc(corr);
  for (double eps : schedule) {
    TCDP_RETURN_IF_ERROR(acc.RecordRelease(eps));
  }
  Table table({"t", "epsilon", "BPL", "FPL", "TPL"});
  for (std::size_t t = 1; t <= acc.horizon(); ++t) {
    table.AddRow();
    table.AddInt(static_cast<long long>(t));
    table.AddNumber(schedule[t - 1], 6);
    TCDP_ASSIGN_OR_RETURN(double bpl, acc.Bpl(t));
    TCDP_ASSIGN_OR_RETURN(double fpl, acc.Fpl(t));
    TCDP_ASSIGN_OR_RETURN(double tpl, acc.Tpl(t));
    table.AddNumber(bpl, 6);
    table.AddNumber(fpl, 6);
    table.AddNumber(tpl, 6);
  }
  out << table.ToAlignedString();
  out << "max TPL (event-level alpha): " << FormatNumber(acc.MaxTpl(), 6)
      << "\nuser-level TPL (Corollary 1): "
      << FormatNumber(acc.UserLevelTpl(), 6) << "\n";
  return Status::OK();
}

Status CmdSupremum(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(auto corr, LoadCorrelations(flags));
  TCDP_ASSIGN_OR_RETURN(double eps, FlagAsDouble(flags, "epsilon"));
  auto report = [&](const char* label,
                    const StochasticMatrix& m) -> Status {
    TemporalLossFunction loss(m);
    TCDP_ASSIGN_OR_RETURN(auto sup, ComputeSupremum(loss, eps));
    out << label << ": ";
    if (sup.exists) {
      out << "supremum = " << FormatNumber(sup.value, 6)
          << "  (maximizing pair q=" << FormatNumber(sup.q_sum, 4)
          << ", d=" << FormatNumber(sup.d_sum, 4) << ")\n";
    } else {
      out << "supremum does not exist (leakage grows without bound)\n";
    }
    return Status::OK();
  };
  if (corr.has_backward()) {
    TCDP_RETURN_IF_ERROR(report("BPL", corr.backward()));
  }
  if (corr.has_forward()) {
    TCDP_RETURN_IF_ERROR(report("FPL", corr.forward()));
  }
  return Status::OK();
}

Status CmdAllocate(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(auto corr, LoadCorrelations(flags));
  TCDP_ASSIGN_OR_RETURN(double alpha, FlagAsDouble(flags, "alpha"));
  TCDP_ASSIGN_OR_RETURN(std::size_t horizon, FlagAsSize(flags, "horizon"));
  std::string strategy = "quantified";
  if (flags.count("strategy") > 0) strategy = flags.at("strategy");

  TCDP_ASSIGN_OR_RETURN(auto alloc, BudgetAllocator::Create(corr, alpha));
  std::vector<double> schedule;
  if (strategy == "quantified") {
    TCDP_ASSIGN_OR_RETURN(schedule, alloc.QuantifiedSchedule(horizon));
  } else if (strategy == "upper-bound") {
    schedule = alloc.UpperBoundSchedule(horizon);
  } else if (strategy == "group") {
    schedule = GroupDpSchedule(alpha, horizon);
  } else {
    return Status::InvalidArgument(
        "--strategy must be quantified, upper-bound or group");
  }

  out << "strategy: " << strategy
      << "\nbalanced split: alpha_b=" << FormatNumber(alloc.budget().alpha_b, 6)
      << " alpha_f=" << FormatNumber(alloc.budget().alpha_f, 6)
      << " eps*=" << FormatNumber(alloc.budget().eps_steady, 6) << "\n";

  TplAccountant acc(corr);
  Table table({"t", "epsilon_t", "TPL_t"});
  for (double eps : schedule) {
    TCDP_RETURN_IF_ERROR(acc.RecordRelease(eps));
  }
  for (std::size_t t = 1; t <= horizon; ++t) {
    table.AddRow();
    table.AddInt(static_cast<long long>(t));
    table.AddNumber(schedule[t - 1], 6);
    TCDP_ASSIGN_OR_RETURN(double tpl, acc.Tpl(t));
    table.AddNumber(tpl, 6);
  }
  out << table.ToAlignedString();
  out << "audited max TPL: " << FormatNumber(acc.MaxTpl(), 6)
      << " (target alpha " << FormatNumber(alpha, 6) << ")\n";
  return Status::OK();
}

Status CmdEstimate(const Flags& flags, std::ostream& out) {
  auto it = flags.find("trajectories");
  if (it == flags.end()) {
    return Status::InvalidArgument("missing required flag --trajectories");
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t states,
                        FlagAsSize(flags, "states", std::size_t{0}));
  TCDP_ASSIGN_OR_RETURN(auto trajectories,
                        LoadTrajectories(it->second, states));
  if (states == 0) {
    for (const auto& traj : trajectories) {
      for (std::size_t s : traj) states = std::max(states, s + 1);
    }
  }
  TCDP_ASSIGN_OR_RETURN(std::size_t order,
                        FlagAsSize(flags, "order", std::size_t{1}));
  EstimationOptions options;
  if (flags.count("smoothing") > 0) {
    TCDP_ASSIGN_OR_RETURN(options.additive_smoothing,
                          FlagAsDouble(flags, "smoothing"));
  }

  StochasticMatrix forward;
  if (order == 1) {
    TCDP_ASSIGN_OR_RETURN(
        forward, EstimateForwardTransition(trajectories, states, options));
  } else {
    TCDP_ASSIGN_OR_RETURN(
        auto chain, HigherOrderChain::Estimate(trajectories, states, order,
                                               options.additive_smoothing));
    forward = chain.EmbedAsFirstOrder();
    out << "# order-" << order << " model embedded over "
        << forward.size() << " histories\n";
  }
  if (flags.count("out") > 0) {
    TCDP_RETURN_IF_ERROR(SaveStochasticMatrix(forward, flags.at("out")));
    out << "forward matrix written to " << flags.at("out") << "\n";
  } else {
    out << SerializeStochasticMatrix(forward);
  }
  if (flags.count("backward-out") > 0) {
    TCDP_ASSIGN_OR_RETURN(
        auto backward,
        EstimateBackwardTransition(trajectories, states, options));
    TCDP_RETURN_IF_ERROR(
        SaveStochasticMatrix(backward, flags.at("backward-out")));
    out << "backward matrix written to " << flags.at("backward-out") << "\n";
  }
  return Status::OK();
}

Status CmdFleet(const Flags& flags, std::ostream& out) {
  TCDP_ASSIGN_OR_RETURN(std::size_t users,
                        FlagAsSize(flags, "users", std::size_t{1000}));
  TCDP_ASSIGN_OR_RETURN(std::size_t horizon,
                        FlagAsSize(flags, "horizon", std::size_t{20}));
  TCDP_ASSIGN_OR_RETURN(std::size_t pages,
                        FlagAsSize(flags, "pages", std::size_t{16}));
  TCDP_ASSIGN_OR_RETURN(std::size_t groups,
                        FlagAsSize(flags, "groups", std::size_t{4}));
  TCDP_ASSIGN_OR_RETURN(std::size_t threads,
                        FlagAsSize(flags, "threads", std::size_t{0}));
  TCDP_ASSIGN_OR_RETURN(std::size_t seed,
                        FlagAsSize(flags, "seed", std::size_t{42}));
  double epsilon = 0.1;
  if (flags.count("epsilon") > 0) {
    TCDP_ASSIGN_OR_RETURN(epsilon, FlagAsDouble(flags, "epsilon"));
  }
  double sparsity = 0.0;
  if (flags.count("sparsity") > 0) {
    TCDP_ASSIGN_OR_RETURN(sparsity, FlagAsDouble(flags, "sparsity"));
    if (!(sparsity >= 0.0 && sparsity < 1.0)) {
      return Status::InvalidArgument("--sparsity must be in [0, 1)");
    }
  }
  if (users == 0 || horizon == 0 || groups == 0) {
    return Status::InvalidArgument(
        "--users, --horizon and --groups must be >= 1");
  }
  bool use_cache = true;
  if (flags.count("cache") > 0) {
    const std::string& v = flags.at("cache");
    if (v == "off") {
      use_cache = false;
    } else if (v != "on") {
      return Status::InvalidArgument("--cache must be on or off");
    }
  }
  const bool json = flags.count("json") > 0;
  if (json && flags.at("json") != "-") {
    return Status::InvalidArgument("--json only supports '-' (stdout)");
  }

  // Synthetic multi-user clickstream fleet: `groups` browsing profiles
  // (increasingly home-page-bound), users assigned round-robin.
  std::vector<TemporalCorrelations> profiles;
  for (std::size_t g = 0; g < groups; ++g) {
    // Sweep home_prob over [0.15, 0.45); with link_prob = 0.5 the row
    // budget home_prob + link_prob stays within 1.
    const double home_prob =
        0.15 + 0.3 * static_cast<double>(g) / static_cast<double>(groups);
    TCDP_ASSIGN_OR_RETURN(auto matrix, ClickstreamModel(pages, home_prob));
    TCDP_ASSIGN_OR_RETURN(auto corr,
                          TemporalCorrelations::Both(matrix, matrix));
    profiles.push_back(std::move(corr));
  }

  FleetEngineOptions options;
  options.num_threads = threads;
  options.share_loss_cache = use_cache;
  FleetEngine engine(options);
  for (std::size_t u = 0; u < users; ++u) {
    engine.AddUser("user-" + std::to_string(u), profiles[u % groups]);
  }
  if (sparsity == 0.0) {
    TCDP_RETURN_IF_ERROR(
        engine.RecordReleases(std::vector<double>(horizon, epsilon)));
  } else {
    // Heterogeneous schedule: each user participates in each release
    // with probability 1 - sparsity (seeded, reproducible).
    Rng rng(static_cast<std::uint64_t>(seed));
    std::vector<std::size_t> participants;
    for (std::size_t t = 0; t < horizon; ++t) {
      participants.clear();
      for (std::size_t u = 0; u < users; ++u) {
        if (rng.Uniform() >= sparsity) participants.push_back(u);
      }
      TCDP_RETURN_IF_ERROR(engine.RecordRelease(epsilon, participants));
    }
  }

  // One parallel fleet sweep yields both aggregates.
  const auto alphas = engine.PersonalizedAlphas();
  double min_alpha = alphas.front();
  double max_alpha = alphas.front();
  for (double a : alphas) {
    min_alpha = std::min(min_alpha, a);
    max_alpha = std::max(max_alpha, a);
  }

  const auto stats = engine.stats();
  const auto cache = engine.cache_stats();
  if (json) {
    // Machine-readable single-object schema, mirrored by the fleet CLI
    // smoke test and consumed alongside BENCH_fleet.json.
    out.precision(17);
    out << "{\n"
        << "  \"users\": " << users << ",\n"
        << "  \"horizon\": " << horizon << ",\n"
        << "  \"groups\": " << groups << ",\n"
        << "  \"cohorts\": " << engine.num_cohorts() << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"sparsity\": " << sparsity << ",\n"
        << "  \"epsilon\": " << epsilon << ",\n"
        << "  \"cache\": " << (use_cache ? "true" : "false") << ",\n"
        << "  \"user_releases\": " << stats.user_releases << ",\n"
        << "  \"record_seconds\": " << stats.record_seconds << ",\n"
        << "  \"user_releases_per_sec\": " << stats.UserReleasesPerSecond()
        << ",\n"
        << "  \"overall_alpha\": " << max_alpha << ",\n"
        << "  \"min_personalized_alpha\": " << min_alpha << ",\n"
        << "  \"cache_hits\": " << cache.hits << ",\n"
        << "  \"cache_misses\": " << cache.misses << ",\n"
        << "  \"distinct_matrices\": " << cache.distinct_matrices << "\n"
        << "}\n";
    return Status::OK();
  }
  Table table({"metric", "value"});
  auto add = [&table](const std::string& name, const std::string& value) {
    table.AddRow();
    table.AddCell(name);
    table.AddCell(value);
  };
  add("users", std::to_string(users));
  add("horizon", std::to_string(horizon));
  add("correlation groups", std::to_string(groups));
  add("cohorts", std::to_string(engine.num_cohorts()));
  add("sparsity", FormatNumber(sparsity, 2));
  add("user-steps driven (incl. skips)", std::to_string(stats.user_releases));
  add("record wall time (s)", FormatNumber(stats.record_seconds, 4));
  add("releases/sec", FormatNumber(stats.UserReleasesPerSecond(), 0));
  add("overall alpha (max TPL)", FormatNumber(max_alpha, 6));
  add("min personalized alpha", FormatNumber(min_alpha, 6));
  if (use_cache) {
    add("loss cache hits", std::to_string(cache.hits));
    add("loss cache misses", std::to_string(cache.misses));
    add("loss cache hit rate", FormatNumber(cache.HitRate(), 4));
    add("distinct matrices", std::to_string(cache.distinct_matrices));
  } else {
    add("loss cache", "off");
  }
  out << table.ToAlignedString();
  return Status::OK();
}

}  // namespace

std::string HelpText() {
  return
      "tcdp — temporal-correlation-aware differential privacy toolkit\n"
      "\n"
      "usage: tcdp <command> [--flag value]...\n"
      "\n"
      "commands:\n"
      "  quantify   BPL/FPL/TPL timeline of a release sequence\n"
      "             --matrix M.csv | --backward B.csv | --forward F.csv\n"
      "             --epsilon E --horizon T | --schedule \"e1,e2,...\"\n"
      "  supremum   Theorem 5 leakage supremum under a uniform budget\n"
      "             --matrix M.csv --epsilon E\n"
      "  allocate   alpha-DP_T budget schedule (Algorithms 2/3)\n"
      "             --matrix M.csv --alpha A --horizon T\n"
      "             [--strategy quantified|upper-bound|group]\n"
      "  estimate   correlation MLE from trajectories\n"
      "             --trajectories T.csv [--states n] [--order k]\n"
      "             [--smoothing s] [--out F.csv] [--backward-out B.csv]\n"
      "  fleet      multi-user clickstream replay through the cohort-\n"
      "             batched SoA accountant bank (shared loss cache +\n"
      "             thread pool)\n"
      "             [--users N] [--horizon T] [--epsilon E] [--pages n]\n"
      "             [--groups g] [--threads k] [--cache on|off]\n"
      "             [--sparsity s] [--seed r] [--json -]\n"
      "  help       this text\n"
      "\n"
      "file formats: matrices are one row per line (comma/space separated\n"
      "probabilities); trajectories are one user per line (state indices).\n"
      "Lines starting with '#' are comments.\n";
}

Status Run(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << HelpText();
    return Status::OK();
  }
  const std::string& command = args[0];
  TCDP_ASSIGN_OR_RETURN(Flags flags, ParseFlags(args, 1));
  if (command == "quantify") return CmdQuantify(flags, out);
  if (command == "supremum") return CmdSupremum(flags, out);
  if (command == "allocate") return CmdAllocate(flags, out);
  if (command == "estimate") return CmdEstimate(flags, out);
  if (command == "fleet") return CmdFleet(flags, out);
  return Status::InvalidArgument("unknown command '" + command +
                                 "'; see `tcdp help`");
}

}  // namespace cli
}  // namespace tcdp
