#ifndef TCDP_TOOLS_CLI_H_
#define TCDP_TOOLS_CLI_H_

/// \file
/// The `tcdp` command-line tool, as a library so tests can drive it
/// in-process. Subcommands:
///
///   quantify  --matrix M.csv --epsilon 0.1 --horizon 10
///             [--backward B.csv] [--forward F.csv] [--schedule "a,b,c"]
///       Print the BPL/FPL/TPL timeline of a release sequence.
///
///   supremum  --matrix M.csv --epsilon 0.1
///       Theorem 5: the leakage supremum under a uniform budget.
///
///   allocate  --matrix M.csv --alpha 1.0 --horizon 20
///             [--strategy quantified|upper-bound|group]
///       Algorithms 2/3: a budget schedule achieving alpha-DP_T,
///       with its audit.
///
///   estimate  --trajectories T.csv [--states n] [--order k]
///             [--smoothing s] [--out F.csv] [--backward-out B.csv]
///       MLE of forward/backward correlations from trajectories.
///
///   fleet     [--users N] [--horizon T] [--epsilon E] [--pages n]
///             [--groups g] [--threads k] [--cache on|off]
///       Replays a synthetic multi-user clickstream workload through the
///       batched release engine (shared loss cache + thread pool) and
///       prints throughput, leakage, and cache statistics.
///
///   serve     --script S.txt [--log-dir D] [--shards N]
///             [--batch-window W] [--snapshot-every K] [--sync-every Y]
///             [--auto-compact 1] [--compact-bytes B] [--compact-records R]
///             [--listen PORT] [--host H] [--port-file P]
///       Drives a scripted request stream (join/release/flush/snapshot/
///       compact/query) through the sharded release service; durable
///       when --log-dir is given. --auto-compact compacts WALs after
///       every snapshot; --compact-bytes/--compact-records bound the
///       per-shard on-disk WAL (docs/DURABILITY.md). With --listen the
///       service additionally accepts the binary wire protocol on a
///       TCP port (0 picks an ephemeral port, reported via --port-file)
///       until a client sends shutdown; --script becomes an optional
///       preload. --repl-listen PORT additionally streams the shard
///       WALs to subscribed followers (`tcdp follow`), making this
///       process a replication primary.
///
///   client    --port PORT --script S.txt [--host H] [--pipeline N]
///             [--shutdown 1]
///       Replays the serve script format against a remote server over
///       the wire protocol, pipelining requests N deep.
///
///   follow    --primary-port PORT --log-dir D [--primary-host H]
///             [--reconnect 0|1] [--promote 1] [--listen PORT]
///       Runs a replica: subscribes to a primary's --repl-listen WAL
///       stream, keeps a byte-identical local log directory, and acks
///       durable horizons. --promote 1 recovers the replica into a
///       serving primary when the stream ends (docs/REPLICATION.md).
///
///   route     [--journal F] [--add H:P] [--remove H:P]
///             [--migrate U --to H:P] [--clear U] [--lookup U]
///             [--endpoints 1] [--distribution N] [--serve PORT]
///       User -> shard-server placement: consistent hashing plus
///       journaled per-user migration pins; --serve answers lookups
///       over the wire protocol.
///
///   replay    --log-dir D [--verify 1]
///       Recovers a service from its write-ahead logs/snapshots and
///       reports what was restored; --verify re-derives every user's
///       series from an exported accountant blob and checks bitwise.
///
///   compact   --log-dir D
///       Recovers a service, rewrites every shard WAL to its snapshot
///       anchor plus the post-snapshot suffix (crash-safe tmp+rename),
///       and reports the before/after disk footprint.
///
///   bench     [--suite a,b] [--smoke] [--list] [--json out.json]
///             [--compare baseline.json] [--reps N] [--noise F]
///       The unified benchmark harness (src/bench/): runs the
///       registered suites, evaluates their acceptance gates, writes
///       one schema-stable BENCH.json, and optionally diffs it against
///       a committed baseline, failing on regressions beyond the
///       per-metric noise band. See docs/BENCHMARKING.md.
///
///   help
///
/// Matrix/trajectory file formats: see markov/io.h.

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcdp {
namespace cli {

/// Executes one invocation. \p args excludes the program name.
/// Human-oriented results go to \p out; errors come back as Status.
Status Run(const std::vector<std::string>& args, std::ostream& out);

/// The help text (also printed by `tcdp help`).
std::string HelpText();

}  // namespace cli
}  // namespace tcdp

#endif  // TCDP_TOOLS_CLI_H_
